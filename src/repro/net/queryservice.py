"""Server-side continuous queries: compiled plans, multiplexed fan-out.

The paper's model has every dashboard client pull raw signals and
derive locally, which multiplies ingest *and* derivation cost by the
number of viewers.  This module moves the PR 5 query engine to the
server: a client ships query text (plus bind-time parameters) in a
``QUERY`` frame, the server compiles it into a
:class:`~repro.query.compile.Plan` and attaches one
:class:`~repro.query.live.LiveQuery` tap at ingest, and N subscribers
of the same derived view share that single evaluation — only the
derived columns fan out, as ordinary NAME_DEF + SAMPLES frames.

The QUERY channel (JSON payloads, version-2 frames)::

    client → server
      {"op": "query",       "id": qid, "text": "...", "params": {...}}
      {"op": "subscribe",   "id": qid}
      {"op": "unsubscribe", "id": qid}

    server → client
      {"op": "compiled",     "id": qid, "outputs": [...], "sources": [...]}
      {"op": "subscribed",   "id": qid}
      {"op": "unsubscribed", "id": qid}
      {"op": "error",        "id": qid, "error": "..."}

Sharing is keyed on the **canonical compiled plan**
(:func:`~repro.query.compile.plan_key`): whitespace, comments,
intermediate naming and parameter spelling all vanish in compilation,
so two clients subscribing ``rate(pkts)`` and ``rate( pkts )  # same``
share one evaluation, while different bound parameter values compile to
different folded constants and evaluate separately.  Subscriptions are
refcounted: the last unsubscribe (or disconnect) detaches the
``LiveQuery`` from the manager — detach is immediate and without
replay, exactly like any tap removal.

A shared query that fails mid-stream quarantines itself (PR 9's
:class:`LiveQuery` semantics: auto-detach, error recorded); the
multiplexer then notifies every subscriber with an ``error`` reply and
drops the shared evaluation, counting it in :meth:`QueryMultiplexer.stats`.

Fan-out cost model: one derived batch is **encoded once per distinct
wire id** and the same immutable bytes are handed to every subscriber's
transmit queue, so the marginal cost of subscriber N is an enqueue and
a transport send of shared bytes — no per-subscriber encode, no
per-subscriber evaluation.  That is what makes 1k subscribers on one
view cost close to one (benchmark X12e pins the <2x target).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.cells import NULL, Counter
from repro.eventloop.sources import IOCondition
from repro.net.protocol import (
    ProtocolError,
    encode_binary_samples,
    encode_name_def,
    encode_query,
)
from repro.net.transport import TransportClosed
from repro.query import (
    LiveQuery,
    Plan,
    QueryError,
    bind_params,
    compile_query,
    plan_key,
)

try:  # the obs plane is optional; fan-out must work without it
    from repro.obs import trace as _trace
except ImportError:  # pragma: no cover - obs package absent
    _trace = None

__all__ = ["QueryMultiplexer", "SharedQuery"]

#: Query-plane ledger counters, cell-backed so ``register_metrics`` can
#: publish them; ``stats()`` reads the same cells.
_COUNTER_FIELDS = (
    "queries_compiled",
    "compile_errors",
    "quarantined",
    "samples_fanned",
    "encode_bytes_saved",
)


class _SessionTx:
    """Server→client transmit queue for one subscriber session.

    The server's receive path never writes; subscriptions make sessions
    full-duplex.  Sends are try-first: most transports (the in-memory
    pair always, sockets usually) take the whole buffer immediately, and
    only a partial write arms an OUT watch to drain the rest.  Queued
    entries are immutable ``bytes`` shared across subscribers — the
    queue holds references, never copies.

    Each session has its own server→client name interning (ids must be
    unique per connection across *all* its subscriptions), kept separate
    from the client→server table in ``ClientState.names``.
    """

    def __init__(self, loop, endpoint) -> None:
        self.loop = loop
        self.endpoint = endpoint
        self.name_ids: Dict[str, int] = {}
        self._queue: Deque[bytes] = deque()
        self._head_offset = 0
        self._watch_id: Optional[int] = None
        self.down = False
        self.bytes_sent = 0

    def intern(self, name: str) -> int:
        """Wire id for ``name``, queueing its NAME_DEF on first use."""
        name_id = self.name_ids.get(name)
        if name_id is None:
            name_id = len(self.name_ids)
            self.name_ids[name] = name_id
            self.send(encode_name_def(name_id, name))
        return name_id

    def send(self, data: bytes) -> None:
        if self.down:
            return
        if not self._queue:
            # Fast path (the fan-out hot loop lands here): nothing
            # queued, try the whole buffer in one transport call.
            try:
                sent = self.endpoint.send(data)
            except BlockingIOError:
                sent = 0  # kernel buffer full; fall through to the queue
            except (TransportClosed, OSError):
                self._mark_down()
                return
            self.bytes_sent += sent
            if sent == len(data):
                return
            self._head_offset = sent
            self._queue.append(data)
            self._ensure_watch()
            return
        self._queue.append(data)
        self._drain()

    def _drain(self) -> None:
        while self._queue:
            head = self._queue[0]
            try:
                if not self.endpoint.writable():
                    self._ensure_watch()
                    return
                sent = self.endpoint.send(
                    head[self._head_offset :] if self._head_offset else head
                )
            except (TransportClosed, OSError):
                self._mark_down()
                return
            self.bytes_sent += sent
            self._head_offset += sent
            if self._head_offset < len(head):
                self._ensure_watch()
                return
            self._queue.popleft()
            self._head_offset = 0
        self._remove_watch()

    def _ensure_watch(self) -> None:
        if self._watch_id is None and not self.down:
            self._watch_id = self.loop.io_add_watch(
                self.endpoint, IOCondition.OUT, self._on_writable
            )

    def _on_writable(self, channel, condition) -> bool:
        self._drain()
        return self._watch_id is not None

    def _remove_watch(self) -> None:
        if self._watch_id is not None:
            self.loop.remove(self._watch_id)
            self._watch_id = None

    def _mark_down(self) -> None:
        # The read path owns the disconnect; we just stop queueing.
        self.down = True
        self._queue.clear()
        self._head_offset = 0
        self._remove_watch()

    def close(self) -> None:
        self._remove_watch()
        self._queue.clear()
        self._head_offset = 0
        self.down = True


class _Session:
    """Per-client query bookkeeping: compiled plans and subscriptions."""

    def __init__(self, loop, endpoint) -> None:
        self.tx = _SessionTx(loop, endpoint)
        self.compiled: Dict[str, Plan] = {}  # qid → compiled plan
        self.subscribed: Dict[str, "SharedQuery"] = {}

    def reply(self, payload: Dict[str, Any]) -> None:
        self.tx.send(encode_query(payload))


class SharedQuery:
    """One live evaluation serving every subscriber of a derived view."""

    def __init__(self, key: Tuple, live: LiveQuery, fanned=NULL, bytes_saved=NULL) -> None:
        self.key = key
        self.live = live
        #: Subscribers as (session, qid) — one session may subscribe the
        #: same view under several qids (different dashboards, one
        #: connection); each gets its own ack/teardown lifecycle but the
        #: frames are shared per session-direction interning.
        self.subscribers: List[Tuple[_Session, str]] = []
        self.samples_fanned = 0
        # Multiplexer-level ledger cells (NULL when standalone): every
        # fanned sample and every encode skipped by frame sharing.
        self._fanned_cell = fanned
        self._saved_cell = bytes_saved
        # Unique transmit queues, derived from `subscribers`; rebuilt
        # lazily after membership changes so the fan-out hot loop walks
        # a flat list instead of re-deduplicating sessions every batch.
        self._targets: Optional[List[_SessionTx]] = None

    @property
    def refcount(self) -> int:
        return len(self.subscribers)

    def add_subscriber(self, session: "_Session", qid: str) -> None:
        self.subscribers.append((session, qid))
        self._targets = None

    def remove_subscriber(self, session: "_Session", qid: str) -> bool:
        try:
            self.subscribers.remove((session, qid))
        except ValueError:
            return False
        self._targets = None
        return True

    def clear_subscribers(self) -> None:
        self.subscribers.clear()
        self._targets = None

    def fan_out(self, name: str, times, values) -> None:
        """Ship one derived batch to every subscriber.

        Encoded once per distinct wire id: subscribers whose sessions
        interned ``name`` to the same id (the common case — derived
        names intern in emission order) share the exact frame bytes.
        """
        targets = self._targets
        if targets is None:
            seen = set()
            targets = []
            for session, _qid in self.subscribers:
                if id(session) not in seen:
                    seen.add(id(session))  # one copy per session
                    targets.append(session.tx)
            self._targets = targets
        if not targets:
            return
        if _trace is not None and _trace._tracer is not None:
            with _trace.span("fanout", signal=name, n=int(times.shape[0]), targets=len(targets)):
                self._fan_out(name, times, values, targets)
        else:
            self._fan_out(name, times, values, targets)

    def _fan_out(self, name: str, times, values, targets: List[_SessionTx]) -> None:
        frames_by_id: Dict[int, bytes] = {}
        for tx in targets:
            name_id = tx.name_ids.get(name)
            if name_id is None:
                name_id = tx.intern(name)
            frame = frames_by_id.get(name_id)
            if frame is None:
                frame = encode_binary_samples(name_id, times, values)
                frames_by_id[name_id] = frame
            else:
                # Encode-once dividend: this subscriber reuses an
                # already-encoded frame instead of paying its own encode.
                self._saved_cell.inc(len(frame))
            tx.send(frame)
        fanned = times.shape[0] * len(targets)
        self.samples_fanned += fanned
        self._fanned_cell.inc(fanned)


class QueryMultiplexer:
    """The server's continuous-query registry.

    Owns every compiled plan, shared evaluation and subscriber transmit
    queue for one :class:`~repro.net.server.ScopeServer`.  The server
    calls :meth:`handle` for each QUERY frame and :meth:`drop_session`
    when a client leaves; everything else is internal.
    """

    def __init__(self, loop, manager) -> None:
        self.loop = loop
        self.manager = manager
        self._shared: Dict[Tuple, SharedQuery] = {}
        self._sessions: Dict[int, _Session] = {}  # id(ClientState) → session
        # Ledger cells: cumulative across dropped views (a retired
        # SharedQuery's fanned samples stay counted), so stats() needs no
        # retired/active split.
        self._cells: Dict[str, Counter] = {k: Counter(k) for k in _COUNTER_FIELDS}

    @property
    def queries_compiled(self) -> int:
        return self._cells["queries_compiled"].value

    @property
    def compile_errors(self) -> int:
        return self._cells["compile_errors"].value

    @property
    def quarantined(self) -> int:
        return self._cells["quarantined"].value

    # -- session plumbing ----------------------------------------------
    def _session(self, state) -> _Session:
        session = self._sessions.get(id(state))
        if session is None:
            session = _Session(self.loop, state.endpoint)
            self._sessions[id(state)] = session
        return session

    def drop_session(self, state) -> None:
        """Unsubscribe everything a departing client held (no replay)."""
        session = self._sessions.pop(id(state), None)
        if session is None:
            return
        for qid, shared in list(session.subscribed.items()):
            self._unsubscribe(session, shared, qid)
        session.subscribed.clear()
        session.tx.close()

    # -- the QUERY channel ---------------------------------------------
    def handle(self, state, payload: Dict[str, Any]) -> None:
        """Dispatch one decoded QUERY payload from ``state``.

        Compile failures are *replies*, not protocol violations — a bad
        query must not kill a connection that also streams raw samples.
        A structurally malformed payload (missing op/id, wrong types)
        raises :class:`ProtocolError` and disconnects, like any other
        garbage on the wire.
        """
        op = payload.get("op")
        qid = payload.get("id")
        if not isinstance(op, str) or not isinstance(qid, (str, int)):
            raise ProtocolError(f"malformed QUERY payload: {payload!r}")
        qid = str(qid)
        session = self._session(state)
        if op == "query":
            self._op_query(session, qid, payload)
        elif op == "subscribe":
            self._op_subscribe(session, qid)
        elif op == "unsubscribe":
            self._op_unsubscribe(session, qid)
        else:
            raise ProtocolError(f"unknown QUERY op: {op!r}")

    def _op_query(self, session: _Session, qid: str, payload: Dict) -> None:
        text = payload.get("text")
        params = payload.get("params") or {}
        if not isinstance(text, str) or not isinstance(params, dict):
            raise ProtocolError(f"malformed query request: {payload!r}")
        try:
            plan = compile_query(bind_params(text, params))
        except QueryError as exc:
            self._cells["compile_errors"].inc()
            session.reply({"op": "error", "id": qid, "error": str(exc)})
            return
        session.compiled[qid] = plan
        self._cells["queries_compiled"].inc()
        session.reply(
            {
                "op": "compiled",
                "id": qid,
                "outputs": plan.output_names,
                "sources": plan.source_names,
            }
        )

    def _op_subscribe(self, session: _Session, qid: str) -> None:
        if qid in session.subscribed:
            session.reply({"op": "subscribed", "id": qid})  # idempotent
            return
        plan = session.compiled.get(qid)
        if plan is None:
            session.reply(
                {"op": "error", "id": qid, "error": f"unknown query id {qid!r}"}
            )
            return
        key = plan_key(plan)
        shared = self._shared.get(key)
        if shared is None:
            try:
                live = LiveQuery(plan, self.manager)
            except (QueryError, ValueError) as exc:
                session.reply({"op": "error", "id": qid, "error": str(exc)})
                return
            shared = SharedQuery(
                key,
                live,
                fanned=self._cells["samples_fanned"],
                bytes_saved=self._cells["encode_bytes_saved"],
            )
            live.on_output(shared.fan_out)
            live.on_quarantine(
                lambda _live, exc, s=shared: self._on_quarantine(s, exc)
            )
            self._shared[key] = shared
        shared.add_subscriber(session, qid)
        session.subscribed[qid] = shared
        session.reply({"op": "subscribed", "id": qid})

    def _op_unsubscribe(self, session: _Session, qid: str) -> None:
        shared = session.subscribed.pop(qid, None)
        if shared is not None:
            self._unsubscribe(session, shared, qid)
        session.reply({"op": "unsubscribed", "id": qid})

    def _unsubscribe(self, session: _Session, shared: SharedQuery, qid: str) -> None:
        if not shared.remove_subscriber(session, qid):
            return
        if not shared.subscribers:
            # Last subscriber gone: detach the evaluation immediately.
            # No replay on re-subscribe — a fresh LiveQuery starts from
            # the live stream, like any newly attached tap.
            shared.live.detach()
            self._shared.pop(shared.key, None)

    # -- failure surface -----------------------------------------------
    def _on_quarantine(self, shared: SharedQuery, exc: BaseException) -> None:
        """A shared evaluation died: tell every subscriber, drop it."""
        self._cells["quarantined"].inc()
        self._shared.pop(shared.key, None)
        for session, qid in shared.subscribers:
            session.subscribed.pop(qid, None)
            session.reply(
                {
                    "op": "error",
                    "id": qid,
                    "error": f"query quarantined: {exc}",
                }
            )
        shared.clear_subscribers()

    # -- introspection ---------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """The query-plane ledger (shared views, subscribers, failures).

        A view over the same cells :meth:`register_metrics` mounts —
        bridged accessors and published ``__obs.`` samples can never
        disagree.
        """
        return {
            "active_queries": len(self._shared),
            "subscribers": sum(s.refcount for s in self._shared.values()),
            "queries_compiled": self._cells["queries_compiled"].value,
            "compile_errors": self._cells["compile_errors"].value,
            "quarantined": self._cells["quarantined"].value,
            "samples_fanned": self._cells["samples_fanned"].value,
        }

    def register_metrics(self, registry, prefix: str = "queries.") -> None:
        """Mount the ledger cells plus live membership gauges."""
        for key in _COUNTER_FIELDS:
            registry.mount(prefix + key, self._cells[key])
        registry.gauge(f"{prefix}active", fn=lambda: float(len(self._shared)))
        registry.gauge(
            f"{prefix}subscribers",
            fn=lambda: float(sum(s.refcount for s in self._shared.values())),
        )

    def shared_queries(self) -> List[SharedQuery]:
        """Live shared evaluations (test/diagnostic surface)."""
        return list(self._shared.values())
