"""Sharded telemetry fan-in: partitioning the signal namespace.

One :class:`~repro.core.manager.ScopeManager` fans every sample out over
one set of scopes; at production fan-in scale (many clients, many
signals) that single registry becomes the ingest bottleneck.  A
:class:`ShardedScopeManager` splits the *signal namespace* across N
per-shard managers by a stable hash of the signal name, so:

* routing is O(1) and deterministic — the same name lands on the same
  shard on every run and every host (CRC32, not Python's salted
  ``hash``),
* shards can share one main loop (single-threaded, the paper's model)
  or each own a loop — the seam for running shards on separate cores or
  processes later,
* per-shard counters expose the backpressure story: a shard whose
  scopes fall behind shows up as late-drops *on that shard*, mirroring
  the paper's Section 4.4 rule (data arriving after its display slot is
  dropped immediately, and the drop is counted, not hidden).

The sharded manager satisfies the same manager protocol the
:class:`~repro.net.server.ScopeServer` consumes (``push_samples``,
``carries``, ``auto_create``, ``topology_version``), so a server can be
pointed at either interchangeably.

Placement contract: a signal lives on its home shard,
``shard_of(name)``.  ``scope_new`` places each scope on the shard of
the *scope's* name by default (override with ``shard=``); register a
signal on a scope whose shard matches the signal's home —
``signal_home`` tells you which that is — or simply let ``auto_create``
do it.  Pushes route to the home shard only; a scope on a foreign shard
never sees the signal, by design (that is what makes routing O(1)).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.manager import ScopeManager
from repro.core.scope import Scope, ScopeError
from repro.eventloop.loop import MainLoop

__all__ = ["ShardStats", "ShardedScopeManager", "shard_of"]


def shard_of(name: str, n_shards: int) -> int:
    """Stable shard index for a signal name (CRC32 mod N)."""
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive: {n_shards}")
    return zlib.crc32(name.encode("utf-8")) % n_shards


@dataclass
class ShardStats:
    """Per-shard ingest accounting (the backpressure counters)."""

    offered: int = 0
    accepted: int = 0
    dropped_late: int = 0


class ShardedScopeManager:
    """N per-shard :class:`ScopeManager`\\ s behind one routing facade.

    Parameters
    ----------
    shards:
        Number of partitions.  Fixed for the manager's lifetime — the
        hash ring does not resize (resharding live signal streams is a
        different problem).
    loop:
        Shared main loop for every shard (default: one fresh loop).
        Mutually exclusive with ``loops``.
    loops:
        One loop per shard, for deployments that drive shards
        independently.  Must have exactly ``shards`` entries.
    """

    def __init__(
        self,
        shards: int = 4,
        loop: Optional[MainLoop] = None,
        loops: Optional[List[MainLoop]] = None,
    ) -> None:
        if shards <= 0:
            raise ValueError(f"shards must be positive: {shards}")
        if loops is not None:
            if loop is not None:
                raise ValueError("pass either loop or loops, not both")
            if len(loops) != shards:
                raise ValueError(
                    f"loops must have one entry per shard: {len(loops)} vs {shards}"
                )
            self._managers = [ScopeManager(l) for l in loops]
        else:
            shared = loop if loop is not None else MainLoop()
            self._managers = [ScopeManager(shared) for _ in range(shards)]
        self._stats = [ShardStats() for _ in range(shards)]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._managers)

    @property
    def managers(self) -> List[ScopeManager]:
        """The per-shard managers, in shard order."""
        return list(self._managers)

    @property
    def loops(self) -> List[MainLoop]:
        """Distinct loops driving the shards, in first-use order."""
        seen: List[MainLoop] = []
        for manager in self._managers:
            if manager.loop not in seen:
                seen.append(manager.loop)
        return seen

    def shard_of(self, name: str) -> int:
        """Home shard index for a signal (or scope) name."""
        return shard_of(name, len(self._managers))

    def signal_home(self, name: str) -> ScopeManager:
        """The shard manager that owns signal ``name``."""
        return self._managers[self.shard_of(name)]

    # ------------------------------------------------------------------
    # Scope lifecycle (delegated to the owning shard)
    # ------------------------------------------------------------------
    def scope_new(
        self, name: str, shard: Optional[int] = None, **kwargs: object
    ) -> Scope:
        """Create a scope on ``shard`` (default: the name's home shard)."""
        index = self.shard_of(name) if shard is None else shard
        if not 0 <= index < len(self._managers):
            raise ValueError(f"shard index out of range: {index}")
        return self._managers[index].scope_new(name, **kwargs)

    def scope_remove(self, name: str) -> None:
        for manager in self._managers:
            if name in manager:
                manager.scope_remove(name)
                return
        raise ScopeError(f"unknown scope: {name!r}")

    def scope(self, name: str) -> Scope:
        for manager in self._managers:
            if name in manager:
                return manager.scope(name)
        raise ScopeError(f"unknown scope: {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(name in manager for manager in self._managers)

    def __len__(self) -> int:
        return sum(len(manager) for manager in self._managers)

    @property
    def scopes(self) -> List[Scope]:
        """Every scope across every shard, in shard order."""
        out: List[Scope] = []
        for manager in self._managers:
            out.extend(manager.scopes)
        return out

    # ------------------------------------------------------------------
    # Capture taps
    # ------------------------------------------------------------------
    def add_tap(self, tap) -> None:
        """Attach one push tap across every shard.

        A push routes to exactly one home shard, so the tap still sees
        each offered batch once; the capture interleaves all shards into
        one store.  Requires the shared-loop layout: with per-shard
        loops the shards' clocks advance independently, so one
        interleaved stream has no monotonic timeline — use
        :func:`repro.capture.capture_sharded` there (and for the
        scalable one-segment-stream-per-shard layout generally), which
        taps each per-shard manager with its own writer.
        """
        if len(self.loops) > 1:
            raise ValueError(
                "one tap across per-shard loops has no monotonic clock; "
                "use repro.capture.capture_sharded for one stream per shard"
            )
        for manager in self._managers:
            manager.add_tap(tap)

    def remove_tap(self, tap) -> None:
        for manager in self._managers:
            manager.remove_tap(tap)

    # ------------------------------------------------------------------
    # Manager protocol (what ScopeServer consumes)
    # ------------------------------------------------------------------
    @property
    def topology_version(self) -> int:
        """Changes whenever any shard's scope set changes."""
        return sum(manager.topology_version for manager in self._managers)

    def carries(self, name: str) -> bool:
        """True when the name's home shard carries the signal."""
        return self.signal_home(name).carries(name)

    def auto_create(self, name: str) -> bool:
        """Auto-register ``name`` on its home shard's first scope."""
        return self.signal_home(name).auto_create(name)

    def push_sample(self, name: str, time_ms: float, value: float) -> int:
        """Route one sample to its home shard; returns scopes accepting."""
        index = self.shard_of(name)
        accepted = self._managers[index].push_sample(name, time_ms, value)
        stats = self._stats[index]
        stats.offered += 1
        stats.accepted += 1 if accepted else 0
        stats.dropped_late += 0 if accepted else 1
        return accepted

    def push_samples(self, name: str, times, values) -> int:
        """Route one signal's columns to its home shard.

        Returns how many samples a scope accepted; the shortfall is
        counted as that shard's late drops — the slow-consumer signal
        (a shard whose display loop lags sees samples arrive past their
        slot and sheds them, per Section 4.4).
        """
        index = self.shard_of(name)
        accepted = self._managers[index].push_samples(name, times, values)
        stats = self._stats[index]
        offered = len(times)
        stats.offered += offered
        stats.accepted += accepted
        stats.dropped_late += offered - accepted
        return accepted

    # ------------------------------------------------------------------
    # Coordinated control + accounting
    # ------------------------------------------------------------------
    def start_all(self) -> None:
        for manager in self._managers:
            manager.start_all()

    def stop_all(self) -> None:
        for manager in self._managers:
            manager.stop_all()

    def run_for(self, duration_ms: float) -> None:
        """Drive every distinct shard loop for ``duration_ms``.

        With a shared loop this is one run; with per-shard loops each
        advances independently (virtual clocks stay deterministic, but
        cross-shard event order is unspecified — shards are partitions,
        not replicas).
        """
        for loop in self.loops:
            loop.run_for(duration_ms)

    def shard_stats(self) -> List[ShardStats]:
        """Per-shard ingest counters, in shard order (live references)."""
        return list(self._stats)

    def totals(self) -> Dict[str, int]:
        """Ingest counters summed across shards."""
        return {
            "offered": sum(s.offered for s in self._stats),
            "accepted": sum(s.accepted for s in self._stats),
            "dropped_late": sum(s.dropped_late for s in self._stats),
        }
