"""Sharded telemetry fan-in: partitioning the signal namespace.

One :class:`~repro.core.manager.ScopeManager` fans every sample out over
one set of scopes; at production fan-in scale (many clients, many
signals) that single registry becomes the ingest bottleneck.  A
:class:`ShardedScopeManager` splits the *signal namespace* across N
per-shard managers by a stable hash of the signal name, so:

* routing is O(1) and deterministic — the same name lands on the same
  shard on every run and every host (a keyed BLAKE2 ring, not Python's
  salted ``hash``),
* shards can share one main loop (single-threaded, the paper's model)
  or each own a loop — the seam for running shards on separate cores or
  processes later,
* per-shard counters expose the backpressure story: a shard whose
  scopes fall behind shows up as late-drops *on that shard*, mirroring
  the paper's Section 4.4 rule (data arriving after its display slot is
  dropped immediately, and the drop is counted, not hidden).

Consistent hashing
------------------

Placement runs on a :class:`HashRing`: each shard owns ``replicas``
pseudo-random points on a 64-bit circle and a name belongs to the shard
owning the first point clockwise of the name's hash.  Unlike
``hash mod N``, membership changes are *local*: adding or removing one
shard remaps only the keys that fall into the changed arcs — about
``1/N`` of the namespace — instead of reshuffling nearly everything.
That is what makes shard add/remove (:meth:`ShardedScopeManager.add_shard`
/ :meth:`~ShardedScopeManager.remove_shard`) and supervised failover
affordable on a live namespace.  Every membership change bumps
``topology_version``, which invalidates the manager's own routing cache
and every downstream carried-name cache (the server's auto-create path
keys on it).

The sharded manager satisfies the same manager protocol the
:class:`~repro.net.server.ScopeServer` consumes (``push_samples``,
``carries``, ``auto_create``, ``topology_version``), so a server can be
pointed at either interchangeably.

Placement contract: a signal lives on its home shard,
``shard_of(name)``.  ``scope_new`` places each scope on the shard of
the *scope's* name by default (override with ``shard=``); register a
signal on a scope whose shard matches the signal's home —
``signal_home`` tells you which that is — or simply let ``auto_create``
do it.  Pushes route to the home shard only; a scope on a foreign shard
never sees the signal, by design (that is what makes routing O(1)).
After a membership change, rebalancing migrates each *scope* to its
name's new home; a signal whose home moved away from its carrying scope
is re-registered on its new home by ``auto_create`` (or explicitly).
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.cells import Counter
from repro.core.manager import RESERVED_PREFIX, ScopeManager
from repro.core.scope import Scope, ScopeError
from repro.eventloop.loop import MainLoop

try:  # optional self-instrumentation plane (absence changes no bytes)
    from repro.obs import trace as _trace
except ImportError:  # pragma: no cover - obs package absent
    _trace = None

__all__ = [
    "HashRing",
    "ProcessShardedScopeManager",
    "ShardStats",
    "ShardedScopeManager",
    "shard_of",
]

#: Points per shard on the ring.  Enough that per-shard ownership stays
#: within ~±30% of 1/N (relative sd ≈ 1/sqrt(replicas) ≈ 8.8%), so a
#: single add/remove remaps well under 1.5/N of a random namespace.
DEFAULT_REPLICAS = 128


def _point(key: bytes) -> int:
    """Deterministic 64-bit ring coordinate (process/interpreter stable)."""
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")


class HashRing:
    """Consistent-hash ring mapping names to shard ids.

    Each shard id contributes ``replicas`` points at
    ``blake2b(b"shard:<id>#<r>")``; a name lands on the shard owning the
    first point at or clockwise past ``blake2b(name)``.  Lookup is one
    hash plus one binary search over a sorted point array.
    """

    def __init__(
        self, shard_ids: Iterable[int] = (), replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas <= 0:
            raise ValueError(f"replicas must be positive: {replicas}")
        self.replicas = int(replicas)
        self._ids: List[int] = sorted(set(int(i) for i in shard_ids))
        self._build()

    def _build(self) -> None:
        points = [
            (_point(b"shard:%d#%d" % (sid, r)), sid)
            for sid in self._ids
            for r in range(self.replicas)
        ]
        points.sort()
        self._points = np.array([p for p, _ in points], dtype=np.uint64)
        self._owners = np.array([o for _, o in points], dtype=np.int64)

    # -- membership -----------------------------------------------------
    @property
    def shard_ids(self) -> List[int]:
        return list(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, shard_id: int) -> bool:
        return shard_id in self._ids

    def add(self, shard_id: int) -> None:
        if shard_id in self._ids:
            raise ValueError(f"shard {shard_id} already on the ring")
        self._ids.append(int(shard_id))
        self._ids.sort()
        self._build()

    def remove(self, shard_id: int) -> None:
        try:
            self._ids.remove(int(shard_id))
        except ValueError:
            raise ValueError(f"shard {shard_id} is not on the ring") from None
        self._build()

    # -- lookup ---------------------------------------------------------
    def locate(self, name: str) -> int:
        """Home shard id for ``name``."""
        if not self._ids:
            raise ValueError("cannot route on an empty ring")
        h = _point(name.encode("utf-8"))
        index = int(np.searchsorted(self._points, np.uint64(h), side="left"))
        if index == len(self._points):
            index = 0  # wrap: past the last point lands on the first
        return int(self._owners[index])


@lru_cache(maxsize=64)
def _default_ring(n_shards: int) -> HashRing:
    return HashRing(range(n_shards))


def shard_of(name: str, n_shards: int) -> int:
    """Stable shard index for a signal name on a fresh N-shard ring."""
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive: {n_shards}")
    return _default_ring(n_shards).locate(name)


def _cell_property(field: str) -> property:
    """Attribute façade over a named :class:`Counter` cell."""

    def fget(self) -> int:
        return self._cells[field].value

    def fset(self, value: int) -> None:
        self._cells[field].value = value

    return property(fget, fset, doc=f"counter cell {field!r}")


class ShardStats:
    """Per-shard ingest accounting (the backpressure counters).

    ``tap_bytes`` and ``wal_bytes`` track the byte cost of the shard's
    durability plumbing: column bytes offered to capture taps and
    written ahead to the shard's WAL, respectively (16 bytes per sample
    — two float64 columns).  They ride the same ledger discipline as
    the sample counters: conserved across shard retirement/migration via
    :meth:`fold`.

    Each field is a façade over a :class:`~repro.core.cells.Counter`
    cell, so the same integers the public accessors expose can be
    mounted into a :class:`~repro.obs.metrics.MetricsRegistry`
    (:meth:`register_metrics`) and published as ``__obs.`` samples —
    one source of truth, zero double counting.  Field access semantics
    are dataclass-like: keyword construction, plain attribute
    read/increment/assign.
    """

    #: Integer counter fields, in declaration order.  ``query_quarantines``
    #: counts continuous queries attached on this shard that died
    #: mid-stream (operator failure, observer failure, manager push
    #: failure): a quarantined query detaches itself, and this counter
    #: is how the loss surfaces in shard/supervisor accounting instead
    #: of vanishing.
    COUNTER_FIELDS: Tuple[str, ...] = (
        "offered",
        "accepted",
        "dropped_late",
        "tap_bytes",
        "wal_bytes",
        "query_quarantines",
    )
    #: Non-counter fields (timestamps and the like): plain attributes,
    #: default ``None``, excluded from :meth:`as_dict`/:meth:`fold`.
    SCALAR_FIELDS: Tuple[str, ...] = ()

    def __init__(self, **fields) -> None:
        self._cells: Dict[str, Counter] = {
            name: Counter(name) for name in self.COUNTER_FIELDS
        }
        for name in self.SCALAR_FIELDS:
            setattr(self, name, None)
        for name, value in fields.items():
            if name not in self.COUNTER_FIELDS and name not in self.SCALAR_FIELDS:
                raise TypeError(
                    f"{type(self).__name__} has no field {name!r}"
                )
            setattr(self, name, value)

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        cls._install_cell_properties()

    @classmethod
    def _install_cell_properties(cls) -> None:
        for field in cls.COUNTER_FIELDS:
            if not isinstance(getattr(cls, field, None), property):
                setattr(cls, field, _cell_property(field))

    def cell(self, field: str) -> Counter:
        """The live counter cell behind ``field`` (for direct bridging)."""
        return self._cells[field]

    def register_metrics(self, registry, prefix: str) -> None:
        """Mount every counter cell into ``registry`` under ``prefix``.

        The mounted cells *are* the accounting cells — a publisher
        walking the registry sees exactly what :meth:`as_dict` reports.
        """
        for field in self.COUNTER_FIELDS:
            registry.mount(prefix + field, self._cells[field])

    def as_dict(self) -> Dict[str, int]:
        """Every integer counter, by field name.

        Generic over :attr:`COUNTER_FIELDS` so subclasses adding
        counters (:class:`~repro.net.supervisor.SupervisionStats`) are
        covered without overriding; non-counter fields (timestamps) are
        skipped.
        """
        return {name: self._cells[name].value for name in self.COUNTER_FIELDS}

    def fold(self, other: "ShardStats") -> None:
        """Fold another ledger's counters into this one (retirement).

        Iterates the *shared* counter fields generically, so a counter
        added to any stats class is conserved by every fold site — a
        hardcoded field list here silently dropped new counters from
        retired totals.
        """
        mine = self._cells
        for name, value in other.as_dict().items():
            cell = mine.get(name)
            if cell is not None:
                cell.value += value

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self.as_dict() == other.as_dict() and all(
            getattr(self, name) == getattr(other, name)
            for name in self.SCALAR_FIELDS
        )

    def __repr__(self) -> str:
        parts = [f"{name}={self._cells[name].value}" for name in self.COUNTER_FIELDS]
        parts.extend(f"{name}={getattr(self, name)!r}" for name in self.SCALAR_FIELDS)
        return f"{type(self).__name__}({', '.join(parts)})"


ShardStats._install_cell_properties()


class ShardedScopeManager:
    """N per-shard :class:`ScopeManager`\\ s behind one routing facade.

    Parameters
    ----------
    shards:
        Initial number of partitions (shard ids ``0..shards-1``).  The
        ring resizes live via :meth:`add_shard`/:meth:`remove_shard`.
    loop:
        Shared main loop for every shard (default: one fresh loop).
        Mutually exclusive with ``loops``.
    loops:
        One loop per shard, for deployments that drive shards
        independently.  Must have exactly ``shards`` entries.
        Membership changes that migrate scopes require the shared-loop
        layout.
    replicas:
        Ring points per shard (see :class:`HashRing`).
    """

    def __init__(
        self,
        shards: int = 4,
        loop: Optional[MainLoop] = None,
        loops: Optional[List[MainLoop]] = None,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if shards <= 0:
            raise ValueError(f"shards must be positive: {shards}")
        if loops is not None:
            if loop is not None:
                raise ValueError("pass either loop or loops, not both")
            if len(loops) != shards:
                raise ValueError(
                    f"loops must have one entry per shard: {len(loops)} vs {shards}"
                )
            self._managers = {i: ScopeManager(l) for i, l in enumerate(loops)}
            self._shared_loop: Optional[MainLoop] = None
        else:
            shared = loop if loop is not None else MainLoop()
            self._managers = {i: ScopeManager(shared) for i in range(shards)}
            self._shared_loop = shared
        self._ring = HashRing(self._managers.keys(), replicas=replicas)
        self._stats = {i: ShardStats() for i in self._managers}
        self._retired = ShardStats()  # counters of removed shards
        # name → shard id, invalidated wholesale on membership change.
        self._route_cache: Dict[str, int] = {}
        self._ring_version = 0
        self._next_id = shards
        # Taps attached through this facade (for tap_bytes accounting).
        self._tap_count = 0
        self._metrics_registry = None
        self._metrics_prefix = "shard"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._managers)

    @property
    def shard_ids(self) -> List[int]:
        """Live shard ids, ascending (contiguous until membership changes)."""
        return sorted(self._managers)

    @property
    def managers(self) -> List[ScopeManager]:
        """The per-shard managers, in shard-id order."""
        return [self._managers[i] for i in sorted(self._managers)]

    def manager_of(self, shard_id: int) -> ScopeManager:
        """The manager for an explicit shard id."""
        try:
            return self._managers[shard_id]
        except KeyError:
            raise ValueError(f"unknown shard id: {shard_id}") from None

    @property
    def loops(self) -> List[MainLoop]:
        """Distinct loops driving the shards, in first-use order."""
        seen: List[MainLoop] = []
        for shard_id in sorted(self._managers):
            loop = self._managers[shard_id].loop
            if loop not in seen:
                seen.append(loop)
        return seen

    def shard_of(self, name: str) -> int:
        """Home shard id for a signal (or scope) name."""
        shard_id = self._route_cache.get(name)
        if shard_id is None:
            shard_id = self._ring.locate(name)
            self._route_cache[name] = shard_id
        return shard_id

    def signal_home(self, name: str) -> ScopeManager:
        """The shard manager that owns signal ``name``."""
        return self._managers[self.shard_of(name)]

    # ------------------------------------------------------------------
    # Ring membership (rebalancing)
    # ------------------------------------------------------------------
    def _migrate_scopes(self) -> int:
        """Move every scope to its name's (possibly new) home shard.

        Shared-loop only — adoption across loops is structurally
        impossible (scope timers are bound to their loop).  Returns the
        number of scopes that moved.
        """
        moved = 0
        for shard_id in sorted(self._managers):
            manager = self._managers[shard_id]
            for scope in manager.scopes:
                home = self.shard_of(scope.name)
                if home != shard_id:
                    self._managers[home].adopt_scope(manager.release_scope(scope.name))
                    moved += 1
        return moved

    def _bump_ring(self) -> None:
        self._ring_version += 1
        self._route_cache.clear()

    def add_shard(self) -> int:
        """Add one shard; remap (and migrate) ~1/N of the namespace.

        Returns the new shard id.  The new shard's manager rides the
        shared loop; with per-shard loops, membership is frozen.
        """
        if self._shared_loop is None:
            raise ValueError("add_shard requires the shared-loop layout")
        shard_id = self._next_id
        self._next_id += 1
        self._managers[shard_id] = ScopeManager(self._shared_loop)
        self._stats[shard_id] = ShardStats()
        self._ring.add(shard_id)
        self._bump_ring()
        self._migrate_scopes()
        self._remount_metrics()
        return shard_id

    def remove_shard(self, shard_id: int) -> None:
        """Retire a shard; its ~1/N arc remaps to the survivors.

        The retired shard's scopes migrate to their names' new homes
        (shared-loop only) and its ingest counters fold into the
        retained totals, so :meth:`totals` keeps counting its traffic.
        """
        if shard_id not in self._managers:
            raise ValueError(f"unknown shard id: {shard_id}")
        if len(self._managers) == 1:
            raise ValueError("cannot remove the last shard")
        if self._shared_loop is None:
            raise ValueError("remove_shard requires the shared-loop layout")
        self._ring.remove(shard_id)
        self._bump_ring()
        retiring = self._managers[shard_id]
        for scope in retiring.scopes:
            home = self.shard_of(scope.name)
            self._managers[home].adopt_scope(retiring.release_scope(scope.name))
        del self._managers[shard_id]
        self._retired.fold(self._stats.pop(shard_id))
        self._migrate_scopes()
        self._remount_metrics()

    def replace_manager(self, shard_id: int, manager: ScopeManager) -> ScopeManager:
        """Swap in a fresh manager for ``shard_id`` (the failover seam).

        Ring membership and routing are untouched — the shard keeps its
        arc — but downstream carried-name caches must re-learn what the
        fresh manager carries, so the ring version (and therefore
        ``topology_version``) bumps.  Returns the manager it replaced.
        """
        old = self.manager_of(shard_id)
        self._managers[shard_id] = manager
        self._bump_ring()
        return old

    # ------------------------------------------------------------------
    # Scope lifecycle (delegated to the owning shard)
    # ------------------------------------------------------------------
    def scope_new(
        self, name: str, shard: Optional[int] = None, **kwargs: object
    ) -> Scope:
        """Create a scope on ``shard`` (default: the name's home shard)."""
        shard_id = self.shard_of(name) if shard is None else shard
        if shard_id not in self._managers:
            raise ValueError(f"shard id out of range: {shard_id}")
        return self._managers[shard_id].scope_new(name, **kwargs)

    def scope_remove(self, name: str) -> None:
        for manager in self._managers.values():
            if name in manager:
                manager.scope_remove(name)
                return
        raise ScopeError(f"unknown scope: {name!r}")

    def scope(self, name: str) -> Scope:
        for manager in self._managers.values():
            if name in manager:
                return manager.scope(name)
        raise ScopeError(f"unknown scope: {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(name in manager for manager in self._managers.values())

    def __len__(self) -> int:
        return sum(len(manager) for manager in self._managers.values())

    @property
    def scopes(self) -> List[Scope]:
        """Every scope across every shard, in shard-id order."""
        out: List[Scope] = []
        for shard_id in sorted(self._managers):
            out.extend(self._managers[shard_id].scopes)
        return out

    # ------------------------------------------------------------------
    # Capture taps
    # ------------------------------------------------------------------
    def add_tap(self, tap) -> None:
        """Attach one push tap across every shard.

        A push routes to exactly one home shard, so the tap still sees
        each offered batch once; the capture interleaves all shards into
        one store.  Requires the shared-loop layout: with per-shard
        loops the shards' clocks advance independently, so one
        interleaved stream has no monotonic timeline — use
        :func:`repro.capture.capture_sharded` there (and for the
        scalable one-segment-stream-per-shard layout generally), which
        taps each per-shard manager with its own writer.
        """
        if len(self.loops) > 1:
            raise ValueError(
                "one tap across per-shard loops has no monotonic clock; "
                "use repro.capture.capture_sharded for one stream per shard"
            )
        for manager in self._managers.values():
            manager.add_tap(tap)
        self._tap_count += 1

    def remove_tap(self, tap) -> None:
        for manager in self._managers.values():
            manager.remove_tap(tap)
        self._tap_count -= 1

    # ------------------------------------------------------------------
    # Continuous queries
    # ------------------------------------------------------------------
    def attach_query(
        self, query: str, params: Optional[Dict[str, float]] = None
    ):
        """Attach a continuous query as a facade-wide tap.

        The query taps every shard (pushes route to one home shard, so
        each offered batch is consumed once) and its derived outputs are
        pushed back through the facade, landing on *their* home shards —
        sources and outputs may therefore live on different shards.
        Bind-time ``$name`` parameters substitute before compilation.
        A mid-stream failure quarantines the query and is counted on the
        first source's home shard (``query_quarantines``).
        """
        from repro.query import LiveQuery, bind_params, compile_query

        plan = compile_query(bind_params(query, params))
        live = LiveQuery(plan, self)
        home = self.shard_of(sorted(plan.source_names)[0])

        def count_quarantine(_live, _exc, shard_id=home) -> None:
            stats = self._stats.get(shard_id)
            if stats is not None:
                stats.query_quarantines += 1

        live.on_quarantine(count_quarantine)
        return live

    # ------------------------------------------------------------------
    # Manager protocol (what ScopeServer consumes)
    # ------------------------------------------------------------------
    @property
    def topology_version(self) -> int:
        """Changes whenever any shard's scope set — or the ring — changes.

        Membership changes remap names across shards, so every cached
        name→carrier conclusion is stale even though no single manager's
        scope set changed; folding the ring version in makes downstream
        caches (the server's auto-create path, the routing cache) see
        one monotonic invalidation signal.
        """
        return self._ring_version * 1_000_003 + sum(
            manager.topology_version for manager in self._managers.values()
        )

    def carries(self, name: str) -> bool:
        """True when the name's home shard carries the signal."""
        return self.signal_home(name).carries(name)

    def auto_create(self, name: str) -> bool:
        """Auto-register ``name`` on its home shard's first scope."""
        return self.signal_home(name).auto_create(name)

    def push_sample(self, name: str, time_ms: float, value: float) -> int:
        """Route one sample to its home shard; returns scopes accepting."""
        shard_id = self.shard_of(name)
        accepted = self._managers[shard_id].push_sample(name, time_ms, value)
        stats = self._stats[shard_id]
        stats.offered += 1
        stats.accepted += 1 if accepted else 0
        stats.dropped_late += 0 if accepted else 1
        if self._tap_count:
            stats.tap_bytes += 16 * self._tap_count
        return accepted

    def push_samples(self, name: str, times, values) -> int:
        """Route one signal's columns to its home shard.

        Returns how many samples a scope accepted; the shortfall is
        counted as that shard's late drops — the slow-consumer signal
        (a shard whose display loop lags sees samples arrive past their
        slot and sheds them, per Section 4.4).

        Reserved ``__obs.`` names are rejected by the home manager;
        internal telemetry enters through :meth:`push_obs`.
        """
        if _trace is not None and _trace._tracer is not None:
            with _trace.span("route", signal=name, n=len(times)):
                return self._route(name, times, values, trusted=False)
        return self._route(name, times, values, trusted=False)

    def push_obs(self, name: str, times, values) -> int:
        """Trusted reserved-namespace entry: identical routing/accounting.

        This is what lets a :class:`~repro.obs.metrics.MetricsPublisher`
        sink straight into the sharded facade — ``__obs.`` samples ride
        the same ring, the same shard ledgers, the same taps.
        """
        return self._route(name, times, values, trusted=True)

    def _route(self, name: str, times, values, trusted: bool) -> int:
        shard_id = self.shard_of(name)
        manager = self._managers[shard_id]
        accepted = (manager.push_obs if trusted else manager.push_samples)(
            name, times, values
        )
        stats = self._stats[shard_id]
        offered = len(times)
        stats.offered += offered
        stats.accepted += accepted
        stats.dropped_late += offered - accepted
        if self._tap_count:
            stats.tap_bytes += 16 * offered * self._tap_count
        return accepted

    # ------------------------------------------------------------------
    # Coordinated control + accounting
    # ------------------------------------------------------------------
    def start_all(self) -> None:
        for manager in self._managers.values():
            manager.start_all()

    def stop_all(self) -> None:
        for manager in self._managers.values():
            manager.stop_all()

    def run_for(self, duration_ms: float) -> None:
        """Drive every distinct shard loop for ``duration_ms``.

        With a shared loop this is one run; with per-shard loops each
        advances independently (virtual clocks stay deterministic, but
        cross-shard event order is unspecified — shards are partitions,
        not replicas).
        """
        for loop in self.loops:
            loop.run_for(duration_ms)

    def register_metrics(self, registry, prefix: str = "shard") -> None:
        """Mount per-shard ledgers as ``<prefix><id>.<field>`` cells.

        ``__obs.shard0.dropped_late`` — the issue's canonical derived-
        query source — is exactly shard 0's live ``dropped_late`` cell
        published by a :class:`~repro.obs.metrics.MetricsPublisher`
        walking this registry.  Membership changes re-mount: the
        retired ledger is mounted under ``<prefix>retired.`` so folded
        history stays visible.
        """
        self._metrics_registry = registry
        self._metrics_prefix = prefix
        for shard_id in sorted(self._stats):
            self._stats[shard_id].register_metrics(registry, f"{prefix}{shard_id}.")
        # Underscore, not a dot or dash: the query lexer's NAME token
        # accepts [A-Za-z0-9_.] so the retired ledger stays queryable.
        self._retired.register_metrics(registry, f"{prefix}_retired.")

    def _remount_metrics(self) -> None:
        registry = getattr(self, "_metrics_registry", None)
        if registry is None:
            return
        prefix = self._metrics_prefix
        registry.unmount_prefix(prefix)
        self.register_metrics(registry, prefix)

    def shard_stats(self) -> List[ShardStats]:
        """Per-shard ingest counters, in shard-id order (live references)."""
        return [self._stats[i] for i in sorted(self._stats)]

    def stats_of(self, shard_id: int) -> ShardStats:
        """Ingest counters for an explicit shard id (live reference)."""
        try:
            return self._stats[shard_id]
        except KeyError:
            raise ValueError(f"unknown shard id: {shard_id}") from None

    def totals(self) -> Dict[str, int]:
        """Ingest counters summed across shards (including retired ones)."""
        out = self._retired.as_dict()
        for stats in self._stats.values():
            for key, value in stats.as_dict().items():
                out[key] = out.get(key, 0) + value
        return out


class ProcessShardedScopeManager:
    """N shards, each a real worker **process** behind the same ring.

    The multi-core counterpart of :class:`ShardedScopeManager`: routing
    is identical (the same :class:`HashRing`, the same placement
    contract), but each shard's scopes live in a child process running a
    :class:`~repro.net.supervisor.ShardHost` on its own event loop, fed
    over a socketpair with the version-2 binary protocol (DELIVER
    frames; optionally a shared-memory ring for the column bytes — see
    :mod:`repro.net.worker`).  Ingest therefore runs on as many cores as
    there are workers, while the router pays only encode + send.

    The push API is **asynchronous**: :meth:`push_samples` returns the
    *offered* count once the batch is queued to the home worker, and the
    accept/late-drop verdicts accumulate in the child.  :meth:`drain`
    blocks (in real time) until every worker has ingested everything the
    router sent, then :meth:`totals` is exact.  Per-shard backpressure
    is the worker writer's bounded pending buffer: past its high
    watermark the router push *blocks* on that worker's socket instead
    of growing memory without bound.

    Supervision (WAL-before-send, liveness, respawn) is deliberately not
    here — that is :class:`~repro.net.supervisor.ProcessShardSupervisor`;
    this class is the fast path the scaling benchmarks (X14a/b) measure.
    """

    def __init__(
        self,
        shards: int = 4,
        scope_factory: Optional[Callable] = None,
        loop: Optional[MainLoop] = None,
        replicas: int = DEFAULT_REPLICAS,
        heartbeat_s: float = 1.0,
        use_shm: bool = False,
        ring_bytes: int = 1 << 22,
        max_pending_bytes: int = 4 << 20,
    ) -> None:
        if shards <= 0:
            raise ValueError(f"shards must be positive: {shards}")
        # Lazy import: worker imports supervisor (for ShardHost), which
        # imports this module — importing at call time breaks the cycle.
        from repro.net.worker import WorkerHandle

        self.loop = loop if loop is not None else MainLoop()
        self._ring = HashRing(range(shards), replicas=replicas)
        self._route_cache: Dict[str, int] = {}
        self._handles: Dict[int, WorkerHandle] = {}
        self._stats: Dict[int, ShardStats] = {}
        self._retired = ShardStats()
        self._closed = False
        # Continuous queries attached through this router: qid → home
        # shard, so detach_query knows which worker to tell.
        self._query_homes: Dict[str, int] = {}
        self._next_qid = 0
        try:
            for shard_id in range(shards):
                self._handles[shard_id] = WorkerHandle(
                    shard_id,
                    scope_factory,
                    heartbeat_s=heartbeat_s,
                    use_shm=use_shm,
                    ring_bytes=ring_bytes,
                    max_pending_bytes=max_pending_bytes,
                )
                self._stats[shard_id] = ShardStats()
        except BaseException:
            self.close()
            raise

    # -- routing --------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._handles)

    @property
    def shard_ids(self) -> List[int]:
        return sorted(self._handles)

    def shard_of(self, name: str) -> int:
        """Home shard id for a signal name (same ring as in-process)."""
        shard_id = self._route_cache.get(name)
        if shard_id is None:
            shard_id = self._ring.locate(name)
            self._route_cache[name] = shard_id
        return shard_id

    def handle_of(self, shard_id: int):
        try:
            return self._handles[shard_id]
        except KeyError:
            raise ValueError(f"unknown shard id: {shard_id}") from None

    # -- push (async) ---------------------------------------------------
    def push_sample(self, name: str, time_ms: float, value: float) -> int:
        return self.push_samples(name, (time_ms,), (value,))

    def push_samples(self, name: str, times, values) -> int:
        """Queue one signal's columns to its home worker; returns offered.

        The late-drop verdict is made in the child at this router
        instant (the DELIVER frame carries ``now``), so acceptance
        accounting catches up asynchronously — read it after
        :meth:`drain` / :meth:`refresh_stats`.

        Reserved ``__obs.`` names are rejected *here*, on the router
        side: the child's delivery edge is trusted (it accepts whatever
        the router validated), so an unchecked reserved push would
        poison a worker instead of erroring at the caller.
        """
        if name.startswith(RESERVED_PREFIX):
            raise ScopeError(
                f"signal name {name!r} is reserved: the {RESERVED_PREFIX!r} "
                "namespace carries self-instrumentation samples "
                "(published via MetricsPublisher, not user pushes)"
            )
        return self.push_obs(name, times, values)

    def push_obs(self, name: str, times, values) -> int:
        """Trusted reserved-namespace entry: same queueing/accounting."""
        shard_id = self.shard_of(name)
        now = self.loop.clock.now()
        offered = self._handles[shard_id].deliver(now, name, times, values)
        self._stats[shard_id].offered += offered
        return offered

    def advance_all(self, now: Optional[float] = None) -> None:
        """Advance every worker's private clock to the router instant.

        Without traffic a worker's loop only moves on messages; this is
        the monitor-tick equivalent that keeps polls and heartbeats
        going on idle shards.
        """
        if now is None:
            now = self.loop.clock.now()
        for handle in self._handles.values():
            handle.advance(now)

    # -- continuous queries ---------------------------------------------
    def attach_query(
        self,
        query: str,
        params: Optional[Dict[str, float]] = None,
        timeout_s: float = 10.0,
    ) -> str:
        """Compile-and-attach a continuous query on its home worker.

        The query text (with ``$name`` parameters bound router-side) is
        validated here, then shipped over the control channel to the
        single worker owning **all** of its source signals — a process
        shard sees only its own pushes, so a query whose sources hash to
        different workers would silently starve; that spelling is
        rejected up front.  Derived outputs are pushed back into that
        worker's manager and live there.  Returns the query id for
        :meth:`detach_query`.
        """
        from repro.query import QueryCompileError, bind_params, compile_query

        bound = bind_params(query, params)
        plan = compile_query(bound)
        homes = {self.shard_of(name) for name in plan.source_names}
        if len(homes) > 1:
            raise ValueError(
                f"query sources {sorted(plan.source_names)} span shards "
                f"{sorted(homes)}; process-plane queries need a single "
                f"home worker"
            )
        shard_id = homes.pop()
        qid = f"pq{self._next_qid}"
        self._next_qid += 1
        reply = self._handles[shard_id].attach_query(
            qid, bound, timeout_s=timeout_s
        )
        if reply.get("error"):
            raise QueryCompileError(str(reply["error"]))
        self._query_homes[qid] = shard_id
        return qid

    def detach_query(self, qid: str, timeout_s: float = 10.0) -> None:
        """Detach a continuous query from its home worker (idempotent)."""
        shard_id = self._query_homes.pop(qid, None)
        if shard_id is None:
            return
        self._handles[shard_id].detach_query(qid, timeout_s=timeout_s)

    # -- accounting -----------------------------------------------------
    def refresh_stats(self, timeout_s: float = 10.0) -> None:
        """Pull each worker's ingest ledger into the router-side stats."""
        for shard_id, handle in self._handles.items():
            remote = handle.stats(timeout_s=timeout_s)
            stats = self._stats[shard_id]
            stats.accepted = int(remote["accepted"])
            stats.dropped_late = int(remote["dropped_late"])
            stats.query_quarantines = int(remote.get("query_quarantines", 0))

    def drain(self, timeout_s: float = 30.0) -> None:
        """Block until every worker has ingested all queued deliveries.

        Real-time bound: raises :class:`TimeoutError` if a worker falls
        permanently behind (or died) within ``timeout_s``.
        """
        for shard_id, handle in self._handles.items():
            handle.drain(self._stats[shard_id].offered, timeout_s=timeout_s)
        self.refresh_stats(timeout_s=timeout_s)

    def register_metrics(self, registry, prefix: str = "shard") -> None:
        """Mount router-side shard ledgers (see ShardedScopeManager)."""
        for shard_id in sorted(self._stats):
            self._stats[shard_id].register_metrics(registry, f"{prefix}{shard_id}.")
        self._retired.register_metrics(registry, f"{prefix}_retired.")

    def shard_stats(self) -> List[ShardStats]:
        return [self._stats[i] for i in sorted(self._stats)]

    def totals(self) -> Dict[str, int]:
        """Counters summed across workers, as of the last refresh/drain."""
        out = self._retired.as_dict()
        for stats in self._stats.values():
            for key, value in stats.as_dict().items():
                out[key] = out.get(key, 0) + value
        return out

    def snapshot(self, shard_id: int, timeout_s: float = 30.0) -> dict:
        """Fetch one worker's full data-plane state (see worker protocol)."""
        return self.handle_of(shard_id).snapshot_state(timeout_s=timeout_s)

    # -- lifecycle ------------------------------------------------------
    def close(self, timeout_s: float = 10.0) -> None:
        """Shut every worker down (graceful, then SIGKILL on timeout)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles.values():
            handle.close(timeout_s=timeout_s)

    def __enter__(self) -> "ProcessShardedScopeManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
