"""Wire protocol: newline-delimited tuple lines.

The paper uses the same textual tuple format on the wire as on disk
(Section 3.3: "signal data is delivered, generated or stored in a textual
tuple format"), so the protocol layer is a thin framing shim over
:mod:`repro.core.tuples`: one tuple per ``\\n``-terminated line, UTF-8.

:func:`decode_lines` is incremental — network reads arrive in arbitrary
chunks, so a stateful decoder carries partial lines between reads.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.tuples import Tuple3, format_tuple, parse_tuple


def encode_sample(time_ms: float, value: float, name: Optional[str] = None) -> bytes:
    """Encode one sample as a wire frame (tuple line + newline)."""
    return (format_tuple(time_ms, value, name) + "\n").encode("utf-8")


def encode_samples(
    times: Sequence[float],
    values: Sequence[float],
    name: Optional[str] = None,
) -> bytes:
    """Encode a batch of one signal's samples as a single wire frame.

    The frame is just N tuple lines in one buffer — the on-wire format is
    unchanged (any decoder sees N ordinary tuples), but one send carries
    the whole batch, so the transport pays one syscall/queue entry per
    batch instead of per sample.
    """
    if len(times) != len(values):
        raise ValueError(
            f"times and values must be equal length: {len(times)} vs {len(values)}"
        )
    lines = [format_tuple(t, v, name) for t, v in zip(times, values)]
    if not lines:
        return b""
    return ("\n".join(lines) + "\n").encode("utf-8")


class LineDecoder:
    """Incremental splitter of byte chunks into complete lines."""

    def __init__(self) -> None:
        self._partial = b""

    def feed(self, chunk: bytes) -> List[str]:
        """Add a chunk; return the complete lines it finishes."""
        data = self._partial + chunk
        *complete, self._partial = data.split(b"\n")
        return [line.decode("utf-8", errors="replace") for line in complete]

    @property
    def pending(self) -> bytes:
        """Bytes of the current incomplete line."""
        return self._partial


def decode_lines(chunk: bytes, decoder: Optional[LineDecoder] = None) -> Tuple[List[Tuple3], LineDecoder]:
    """Decode a chunk into parsed tuples, skipping blanks and comments.

    Returns the tuples plus the (possibly fresh) decoder carrying any
    partial trailing line.  Malformed lines raise
    :class:`~repro.core.tuples.TupleFormatError` — a misbehaving client
    should be disconnected, not silently misread.
    """
    if decoder is None:
        decoder = LineDecoder()
    tuples: List[Tuple3] = []
    for line in decoder.feed(chunk):
        parsed = parse_tuple(line)
        if parsed is not None:
            tuples.append(parsed)
    return tuples, decoder
