"""Wire protocols: text tuple lines and the binary columnar format.

Two wire formats share the connection byte stream:

* **Text** — the paper's format (Section 3.3: "signal data is delivered,
  generated or stored in a textual tuple format"): one tuple per
  ``\\n``-terminated UTF-8 line.  This is the compatibility mode — it is
  what ``recorded_signals.tuples`` replay produces and what pre-binary
  clients speak.
* **Binary columnar** — a versioned, length-prefixed frame format that
  carries whole sample batches as contiguous ``float64`` columns, so the
  server ingest path goes chunk → header → ``np.frombuffer`` columns →
  manager push with no per-sample strings or objects.

Binary frame layout (all integers little-endian)::

    offset  size  field
    0       2     magic     0xA5 0x53
    2       1     version   1
    3       1     kind      0=HELLO  1=NAME_DEF  2=SAMPLES
    4       4     name_id   uint32 (0 for HELLO)
    8       4     count     uint32: SAMPLES → sample count,
                            HELLO/NAME_DEF → payload byte length
    12      ...   payload   HELLO:    `count` reserved bytes (now empty)
                            NAME_DEF: `count` bytes of UTF-8 signal name,
                                      binding it to `name_id`
                            SAMPLES:  count*8 bytes float64 times, then
                                      count*8 bytes float64 values

Names are interned once per connection: a ``NAME_DEF`` frame binds a
small integer id, and every subsequent ``SAMPLES`` frame carries only the
id.  The magic's first byte (0xA5) can never begin a valid text line
(tuple lines are printable ASCII), so a server sniffs the connection mode
from the first received byte — no out-of-band negotiation needed, and old
text clients keep working unchanged.

Both decoders are incremental — network reads arrive in arbitrary
chunks, so stateful decoders carry partial lines / partial frames
between reads.  Malformed input raises :class:`ProtocolError` (or
:class:`~repro.core.tuples.TupleFormatError` on the text path); a
misbehaving client should be disconnected, not silently misread.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.tuples import Tuple3, format_tuple, parse_tuple

__all__ = [
    "FRAME_HEADER",
    "Frame",
    "FrameDecoder",
    "FrameKind",
    "LineDecoder",
    "MAGIC",
    "MAX_FRAME_SAMPLES",
    "MAX_LINE_BYTES",
    "MAX_NAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "WireDecoder",
    "decode_lines",
    "encode_binary_samples",
    "encode_hello",
    "encode_name_def",
    "encode_sample",
    "encode_samples",
]


class ProtocolError(ValueError):
    """Raised on malformed wire data (either protocol)."""


# ----------------------------------------------------------------------
# Text protocol (compatibility mode)
# ----------------------------------------------------------------------

#: Cap on a carried partial line.  A peer that never sends a newline
#: would otherwise grow server memory without bound; past this the
#: stream is a protocol error and the client is disconnected.
MAX_LINE_BYTES = 64 * 1024


def encode_sample(time_ms: float, value: float, name: Optional[str] = None) -> bytes:
    """Encode one sample as a text wire frame (tuple line + newline)."""
    return (format_tuple(time_ms, value, name) + "\n").encode("utf-8")


def encode_samples(
    times: Sequence[float],
    values: Sequence[float],
    name: Optional[str] = None,
) -> bytes:
    """Encode a batch of one signal's samples as a single text frame.

    The frame is just N tuple lines in one buffer — the on-wire format is
    unchanged (any decoder sees N ordinary tuples), but one send carries
    the whole batch, so the transport pays one syscall/queue entry per
    batch instead of per sample.
    """
    if len(times) != len(values):
        raise ValueError(
            f"times and values must be equal length: {len(times)} vs {len(values)}"
        )
    lines = [format_tuple(t, v, name) for t, v in zip(times, values)]
    if not lines:
        return b""
    return ("\n".join(lines) + "\n").encode("utf-8")


class LineDecoder:
    """Incremental splitter of byte chunks into complete lines.

    The carried partial line is bounded by ``max_line_bytes``; exceeding
    it raises :class:`ProtocolError` (and drops the oversized partial so
    a disconnecting server does not keep it alive).
    """

    def __init__(self, max_line_bytes: int = MAX_LINE_BYTES) -> None:
        if max_line_bytes <= 0:
            raise ValueError(f"max_line_bytes must be positive: {max_line_bytes}")
        self._partial = b""
        self.max_line_bytes = int(max_line_bytes)

    def feed(self, chunk: bytes) -> List[str]:
        """Add a chunk; return the complete lines it finishes."""
        data = self._partial + chunk
        *complete, self._partial = data.split(b"\n")
        if len(self._partial) > self.max_line_bytes:
            over = len(self._partial)
            self._partial = b""
            raise ProtocolError(
                f"unterminated line of {over} bytes exceeds the "
                f"{self.max_line_bytes}-byte cap"
            )
        return [line.decode("utf-8", errors="replace") for line in complete]

    @property
    def pending(self) -> bytes:
        """Bytes of the current incomplete line."""
        return self._partial


def decode_lines(
    chunk: bytes, decoder: Optional[LineDecoder] = None
) -> Tuple[List[Tuple3], LineDecoder]:
    """Decode a chunk into parsed tuples, skipping blanks and comments.

    Returns the tuples plus the (possibly fresh) decoder carrying any
    partial trailing line.  Malformed lines raise
    :class:`~repro.core.tuples.TupleFormatError` — a misbehaving client
    should be disconnected, not silently misread.
    """
    if decoder is None:
        decoder = LineDecoder()
    tuples: List[Tuple3] = []
    for line in decoder.feed(chunk):
        parsed = parse_tuple(line)
        if parsed is not None:
            tuples.append(parsed)
    return tuples, decoder


# ----------------------------------------------------------------------
# Binary columnar protocol
# ----------------------------------------------------------------------

MAGIC = b"\xa5\x53"
PROTOCOL_VERSION = 1

#: magic(2s) version(B) kind(B) name_id(I) count(I), little-endian.
FRAME_HEADER = struct.Struct("<2sBBII")

#: Sanity bounds: a corrupt header must not make the decoder wait on (or
#: allocate) gigabytes.  4 KiB of name is absurdly generous; 2**22
#: samples is a 64 MiB frame.
MAX_NAME_BYTES = 4096
MAX_FRAME_SAMPLES = 1 << 22


class FrameKind(enum.IntEnum):
    """Binary frame type tag."""

    HELLO = 0
    NAME_DEF = 1
    SAMPLES = 2


@dataclass(frozen=True)
class Frame:
    """One decoded binary frame."""

    kind: FrameKind
    name_id: int
    version: int = PROTOCOL_VERSION
    name: Optional[str] = None  # NAME_DEF only
    times: Optional[np.ndarray] = None  # SAMPLES only, float64
    values: Optional[np.ndarray] = None  # SAMPLES only, float64

    def __len__(self) -> int:
        return 0 if self.times is None else int(self.times.shape[0])


def encode_hello() -> bytes:
    """The handshake frame a binary client sends first.

    Carries the protocol version; the payload is reserved for future
    capability flags.  Servers detect binary mode from the magic of *any*
    frame, so a stream surviving queue pressure without its HELLO still
    decodes — the handshake pins the version early, nothing more.
    """
    return FRAME_HEADER.pack(MAGIC, PROTOCOL_VERSION, FrameKind.HELLO, 0, 0)


def encode_name_def(name_id: int, name: str) -> bytes:
    """Bind ``name_id`` to ``name`` for the rest of the connection."""
    if any(ch.isspace() for ch in name):
        # Same rule as the text format, so signals round-trip between
        # modes (and recordings of either stream stay parseable).
        raise ProtocolError(f"signal name may not contain whitespace: {name!r}")
    raw = name.encode("utf-8")
    if not raw:
        raise ProtocolError("signal name may not be empty")
    if len(raw) > MAX_NAME_BYTES:
        raise ProtocolError(
            f"signal name of {len(raw)} bytes exceeds the {MAX_NAME_BYTES}-byte cap"
        )
    return FRAME_HEADER.pack(MAGIC, PROTOCOL_VERSION, FrameKind.NAME_DEF, name_id, len(raw)) + raw


def encode_binary_samples(
    name_id: int,
    times: Sequence[float],
    values: Sequence[float],
) -> bytes:
    """Encode one signal's sample batch as contiguous float64 columns.

    Returns ``b""`` for an empty batch.  Batches beyond
    :data:`MAX_FRAME_SAMPLES` are split across several frames so any
    caller-side batch size stays decodable.
    """
    t = np.ascontiguousarray(times, dtype="<f8")
    v = np.ascontiguousarray(values, dtype="<f8")
    if t.shape != v.shape or t.ndim != 1:
        raise ValueError(
            f"times and values must be equal-length 1-D: {t.shape} vs {v.shape}"
        )
    n = t.shape[0]
    if n == 0:
        return b""
    if n <= MAX_FRAME_SAMPLES:
        header = FRAME_HEADER.pack(MAGIC, PROTOCOL_VERSION, FrameKind.SAMPLES, name_id, n)
        return header + t.tobytes() + v.tobytes()
    parts = []
    for start in range(0, n, MAX_FRAME_SAMPLES):
        sl = slice(start, min(start + MAX_FRAME_SAMPLES, n))
        parts.append(encode_binary_samples(name_id, t[sl], v[sl]))
    return b"".join(parts)


class FrameDecoder:
    """Incremental binary frame decoder tolerating any fragmentation.

    The hot path is **zero-copy**: when no partial frame is carried
    over (the steady state — most reads deliver whole frames), frames
    decode straight out of the caller's ``bytes`` chunk and SAMPLES
    columns are read-only ``np.frombuffer`` views over it, no payload
    copy anywhere (the chunk is immutable, so the views can never be
    invalidated).  Only a trailing partial frame is copied into the
    carry buffer; frames completed *from* carried bytes pay one payload
    copy so their views stay valid across buffer compaction — that is
    the mutation boundary.

    Header validation (magic, version, kind, payload bounds) happens as
    soon as the 12 header bytes are present, so a corrupted stream
    fails fast instead of waiting for a phantom payload.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._pos = 0

    @property
    def pending(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buf) - self._pos

    def feed(self, chunk: bytes) -> List[Frame]:
        """Add a chunk; return the frames it completes, in stream order."""
        frames: List[Frame] = []
        if self._pos == len(self._buf):
            # Zero-copy fast path: nothing carried — decode whole
            # frames directly from the chunk.
            if self._pos:
                self._buf = bytearray()
                self._pos = 0
            data = chunk if isinstance(chunk, bytes) else bytes(chunk)
            pos = 0
            while True:
                decoded = self._decode_at(data, pos, copy_payload=False)
                if decoded is None:
                    break
                frame, pos = decoded
                frames.append(frame)
            if pos < len(data):
                self._buf += data[pos:] if pos else data
            return frames
        self._buf += chunk
        while True:
            decoded = self._decode_at(self._buf, self._pos, copy_payload=True)
            if decoded is None:
                break
            frame, self._pos = decoded
            frames.append(frame)
        # Compact once per feed, not per frame: drop consumed bytes when
        # they dominate the buffer.
        if self._pos > 65536 and self._pos * 2 > len(self._buf):
            del self._buf[: self._pos]
            self._pos = 0
        return frames

    def _decode_at(
        self, buf, pos: int, copy_payload: bool
    ) -> Optional[Tuple[Frame, int]]:
        """Decode one frame at ``buf[pos:]``; ``(frame, end)`` or None.

        With ``copy_payload=False`` (immutable ``bytes`` source) SAMPLES
        columns are zero-copy views into ``buf``; with True (the mutable
        carry buffer) the payload is copied out first.
        """
        header_size = FRAME_HEADER.size
        if len(buf) - pos < header_size:
            return None
        magic, version, kind_raw, name_id, count = FRAME_HEADER.unpack_from(
            buf, pos
        )
        if magic != MAGIC:
            raise ProtocolError(f"bad frame magic: {bytes(magic)!r}")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version {version} (speak {PROTOCOL_VERSION})"
            )
        try:
            kind = FrameKind(kind_raw)
        except ValueError:
            raise ProtocolError(f"unknown frame kind: {kind_raw}") from None
        if kind is FrameKind.SAMPLES:
            if count > MAX_FRAME_SAMPLES:
                raise ProtocolError(
                    f"SAMPLES frame of {count} samples exceeds the "
                    f"{MAX_FRAME_SAMPLES}-sample cap"
                )
            payload_size = 16 * count
        else:
            if count > MAX_NAME_BYTES:
                raise ProtocolError(
                    f"{kind.name} payload of {count} bytes exceeds the "
                    f"{MAX_NAME_BYTES}-byte cap"
                )
            payload_size = count
        start = pos + header_size
        end = start + payload_size
        if len(buf) < end:
            return None
        if kind is FrameKind.SAMPLES:
            if copy_payload:
                # Detach from the carry buffer before it compacts.
                source: bytes = bytes(memoryview(buf)[start:end])
                offset = 0
            else:
                source = buf
                offset = start
            times = np.frombuffer(source, dtype="<f8", count=count, offset=offset)
            values = np.frombuffer(
                source, dtype="<f8", count=count, offset=offset + 8 * count
            )
            return (
                Frame(
                    kind=kind,
                    name_id=name_id,
                    version=version,
                    times=times,
                    values=values,
                ),
                end,
            )
        if kind is FrameKind.NAME_DEF:
            try:
                name = bytes(memoryview(buf)[start:end]).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ProtocolError(f"NAME_DEF payload is not UTF-8: {exc}") from None
            if not name or any(ch.isspace() for ch in name):
                raise ProtocolError(f"invalid signal name on wire: {name!r}")
            return Frame(kind=kind, name_id=name_id, version=version, name=name), end
        return Frame(kind=kind, name_id=name_id, version=version), end


class WireDecoder:
    """Per-connection mode negotiation plus the matching decoder.

    The mode is sniffed from the first received byte: 0xA5 (the binary
    magic's first byte, impossible at the start of a text tuple line)
    selects binary; anything else selects text.  After the sniff, feeds
    delegate to the chosen incremental decoder, so arbitrary chunk
    fragmentation — including a 1-byte first read — is handled.
    """

    def __init__(self, max_line_bytes: int = MAX_LINE_BYTES) -> None:
        self.mode: Optional[str] = None  # None until the first byte arrives
        self._max_line_bytes = max_line_bytes
        self._lines: Optional[LineDecoder] = None
        self._frames: Optional[FrameDecoder] = None

    def feed(self, chunk: bytes) -> Tuple[List[Tuple3], List[Frame]]:
        """Add a chunk; return ``(text_tuples, binary_frames)``.

        Exactly one of the two lists can ever be non-empty — a
        connection speaks one protocol for its whole life.
        """
        if self.mode is None:
            if not chunk:
                return [], []
            if chunk[0] == MAGIC[0]:
                self.mode = "binary"
                self._frames = FrameDecoder()
            else:
                self.mode = "text"
                self._lines = LineDecoder(max_line_bytes=self._max_line_bytes)
        if self.mode == "binary":
            assert self._frames is not None
            return [], self._frames.feed(chunk)
        tuples, self._lines = decode_lines(chunk, self._lines)
        return tuples, []
