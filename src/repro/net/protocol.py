"""Wire protocols: text tuple lines and the binary columnar format.

Two wire formats share the connection byte stream:

* **Text** — the paper's format (Section 3.3: "signal data is delivered,
  generated or stored in a textual tuple format"): one tuple per
  ``\\n``-terminated UTF-8 line.  This is the compatibility mode — it is
  what ``recorded_signals.tuples`` replay produces and what pre-binary
  clients speak.
* **Binary columnar** — a versioned, length-prefixed frame format that
  carries whole sample batches as contiguous ``float64`` columns, so the
  server ingest path goes chunk → header → ``np.frombuffer`` columns →
  manager push with no per-sample strings or objects.

Binary frame layout (all integers little-endian)::

    offset  size  field
    0       2     magic     0xA5 0x53
    2       1     version   1 or 2
    3       1     kind      0=HELLO 1=NAME_DEF 2=SAMPLES 3=DELIVER
                            4=CONTROL 5=QUERY
    4       4     name_id   uint32 (0 for HELLO/CONTROL/QUERY)
    8       4     count     uint32: SAMPLES/DELIVER → sample count,
                            HELLO/NAME_DEF/CONTROL/QUERY → payload bytes
    12      ...   payload   HELLO:    `count` reserved bytes (now empty)
                            NAME_DEF: `count` bytes of UTF-8 signal name,
                                      binding it to `name_id`
                            SAMPLES:  count*8 bytes float64 times, then
                                      count*8 bytes float64 values;
                                      version 2 appends a uint32 crc32 of
                                      the two columns
                            DELIVER:  (version 2 only) one float64
                                      delivery instant, then the SAMPLES
                                      columns and their crc32 — the
                                      router→worker push of the process
                                      shard plane
                            CONTROL:  (version 2 only) `count` bytes of
                                      UTF-8 JSON — the supervision side
                                      channel (heartbeats, stats, snapshot
                                      and shutdown commands)
                            QUERY:    (version 2 only) `count` bytes of
                                      UTF-8 JSON — the continuous-query
                                      channel: query/subscribe/unsubscribe
                                      requests client→server and their
                                      ack/error replies server→client

Names are interned once per connection: a ``NAME_DEF`` frame binds a
small integer id, and every subsequent ``SAMPLES`` frame carries only the
id.  The magic's first byte (0xA5) can never begin a valid text line
(tuple lines are printable ASCII), so a server sniffs the connection mode
from the first received byte — no out-of-band negotiation needed, and old
text clients keep working unchanged.

Version negotiation is equally in-band: every frame header carries its
version, decoders accept every version in :data:`SUPPORTED_VERSIONS`, and
encoders take a ``version=`` argument so a new client can keep speaking
version 1 to an old server.  Version 2 exists because version-1 SAMPLES
payloads had no integrity check — a fault flipping one byte of a float64
column delivered a *wrong value* instead of an error.  Under version 2
the column bytes are covered by a trailing crc32; a mismatch raises
:class:`ProtocolError` and the connection dies before a corrupt sample
reaches a scope.

Both decoders are incremental — network reads arrive in arbitrary
chunks, so stateful decoders carry partial lines / partial frames
between reads.  Malformed input raises :class:`ProtocolError` (or
:class:`~repro.core.tuples.TupleFormatError` on the text path); a
misbehaving client should be disconnected, not silently misread.
"""

from __future__ import annotations

import enum
import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.tuples import Tuple3, format_tuple, parse_tuple

__all__ = [
    "FRAME_HEADER",
    "Frame",
    "FrameDecoder",
    "FrameKind",
    "LineDecoder",
    "MAGIC",
    "MAX_CONTROL_BYTES",
    "MAX_FRAME_SAMPLES",
    "MAX_LINE_BYTES",
    "MAX_NAME_BYTES",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "ProtocolError",
    "WireDecoder",
    "decode_lines",
    "encode_binary_samples",
    "encode_control",
    "encode_deliver",
    "encode_hello",
    "encode_name_def",
    "encode_query",
    "encode_sample",
    "encode_samples",
]


class ProtocolError(ValueError):
    """Raised on malformed wire data (either protocol)."""


# ----------------------------------------------------------------------
# Text protocol (compatibility mode)
# ----------------------------------------------------------------------

#: Cap on a carried partial line.  A peer that never sends a newline
#: would otherwise grow server memory without bound; past this the
#: stream is a protocol error and the client is disconnected.
MAX_LINE_BYTES = 64 * 1024


def encode_sample(time_ms: float, value: float, name: Optional[str] = None) -> bytes:
    """Encode one sample as a text wire frame (tuple line + newline)."""
    return (format_tuple(time_ms, value, name) + "\n").encode("utf-8")


def encode_samples(
    times: Sequence[float],
    values: Sequence[float],
    name: Optional[str] = None,
) -> bytes:
    """Encode a batch of one signal's samples as a single text frame.

    The frame is just N tuple lines in one buffer — the on-wire format is
    unchanged (any decoder sees N ordinary tuples), but one send carries
    the whole batch, so the transport pays one syscall/queue entry per
    batch instead of per sample.
    """
    if len(times) != len(values):
        raise ValueError(
            f"times and values must be equal length: {len(times)} vs {len(values)}"
        )
    lines = [format_tuple(t, v, name) for t, v in zip(times, values)]
    if not lines:
        return b""
    return ("\n".join(lines) + "\n").encode("utf-8")


class LineDecoder:
    """Incremental splitter of byte chunks into complete lines.

    The carried partial line is bounded by ``max_line_bytes``; exceeding
    it raises :class:`ProtocolError` (and drops the oversized partial so
    a disconnecting server does not keep it alive).
    """

    def __init__(self, max_line_bytes: int = MAX_LINE_BYTES) -> None:
        if max_line_bytes <= 0:
            raise ValueError(f"max_line_bytes must be positive: {max_line_bytes}")
        self._partial = b""
        self.max_line_bytes = int(max_line_bytes)

    def feed(self, chunk: bytes) -> List[str]:
        """Add a chunk; return the complete lines it finishes."""
        data = self._partial + chunk
        *complete, self._partial = data.split(b"\n")
        if len(self._partial) > self.max_line_bytes:
            over = len(self._partial)
            self._partial = b""
            raise ProtocolError(
                f"unterminated line of {over} bytes exceeds the "
                f"{self.max_line_bytes}-byte cap"
            )
        return [line.decode("utf-8", errors="replace") for line in complete]

    @property
    def pending(self) -> bytes:
        """Bytes of the current incomplete line."""
        return self._partial


def decode_lines(
    chunk: bytes, decoder: Optional[LineDecoder] = None
) -> Tuple[List[Tuple3], LineDecoder]:
    """Decode a chunk into parsed tuples, skipping blanks and comments.

    Returns the tuples plus the (possibly fresh) decoder carrying any
    partial trailing line.  Malformed lines raise
    :class:`~repro.core.tuples.TupleFormatError` — a misbehaving client
    should be disconnected, not silently misread.
    """
    if decoder is None:
        decoder = LineDecoder()
    tuples: List[Tuple3] = []
    for line in decoder.feed(chunk):
        parsed = parse_tuple(line)
        if parsed is not None:
            tuples.append(parsed)
    return tuples, decoder


# ----------------------------------------------------------------------
# Binary columnar protocol
# ----------------------------------------------------------------------

MAGIC = b"\xa5\x53"
#: The version new encoders speak by default (checksummed columns).
PROTOCOL_VERSION = 2
#: Every version this decoder accepts.  Version 1 stays live so old
#: peers keep working; only version 2 carries column checksums and the
#: DELIVER/CONTROL supervision kinds.
SUPPORTED_VERSIONS = frozenset({1, 2})

#: magic(2s) version(B) kind(B) name_id(I) count(I), little-endian.
FRAME_HEADER = struct.Struct("<2sBBII")

#: Trailing column checksum on v2 SAMPLES/DELIVER payloads.
_CRC_TRAILER = struct.Struct("<I")
#: Leading float64 delivery instant on DELIVER payloads.
_DELIVER_NOW = struct.Struct("<d")

#: Sanity bounds: a corrupt header must not make the decoder wait on (or
#: allocate) gigabytes.  4 KiB of name is absurdly generous; 2**22
#: samples is a 64 MiB frame.
MAX_NAME_BYTES = 4096
MAX_FRAME_SAMPLES = 1 << 22
#: CONTROL frames carry JSON (snapshot blobs travel base64-inside-JSON),
#: so the cap is generous but still refuses a corrupt length field.
MAX_CONTROL_BYTES = 1 << 26


class FrameKind(enum.IntEnum):
    """Binary frame type tag."""

    HELLO = 0
    NAME_DEF = 1
    SAMPLES = 2
    DELIVER = 3  # v2: router→worker push carrying the delivery instant
    CONTROL = 4  # v2: JSON supervision side channel
    QUERY = 5  # v2: JSON continuous-query channel (subscribe plane)


@dataclass(frozen=True)
class Frame:
    """One decoded binary frame."""

    kind: FrameKind
    name_id: int
    version: int = PROTOCOL_VERSION
    name: Optional[str] = None  # NAME_DEF only
    times: Optional[np.ndarray] = None  # SAMPLES/DELIVER only, float64
    values: Optional[np.ndarray] = None  # SAMPLES/DELIVER only, float64
    now: Optional[float] = None  # DELIVER only: the delivery instant
    control: Optional[Dict[str, Any]] = None  # CONTROL/QUERY: decoded JSON

    def __len__(self) -> int:
        return 0 if self.times is None else int(self.times.shape[0])


def _check_version(version: int) -> int:
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"cannot encode protocol version {version}: "
            f"supported {sorted(SUPPORTED_VERSIONS)}"
        )
    return int(version)


def encode_hello(version: int = PROTOCOL_VERSION) -> bytes:
    """The handshake frame a binary client sends first.

    Carries the protocol version; the payload is reserved for future
    capability flags.  Servers detect binary mode from the magic of *any*
    frame, so a stream surviving queue pressure without its HELLO still
    decodes — the handshake pins the version early, nothing more.
    """
    return FRAME_HEADER.pack(MAGIC, _check_version(version), FrameKind.HELLO, 0, 0)


def encode_name_def(name_id: int, name: str, version: int = PROTOCOL_VERSION) -> bytes:
    """Bind ``name_id`` to ``name`` for the rest of the connection."""
    if any(ch.isspace() for ch in name):
        # Same rule as the text format, so signals round-trip between
        # modes (and recordings of either stream stay parseable).
        raise ProtocolError(f"signal name may not contain whitespace: {name!r}")
    raw = name.encode("utf-8")
    if not raw:
        raise ProtocolError("signal name may not be empty")
    if len(raw) > MAX_NAME_BYTES:
        raise ProtocolError(
            f"signal name of {len(raw)} bytes exceeds the {MAX_NAME_BYTES}-byte cap"
        )
    header = FRAME_HEADER.pack(
        MAGIC, _check_version(version), FrameKind.NAME_DEF, name_id, len(raw)
    )
    return header + raw


def _columns(times, values) -> Tuple[np.ndarray, np.ndarray, int]:
    t = np.ascontiguousarray(times, dtype="<f8")
    v = np.ascontiguousarray(values, dtype="<f8")
    if t.shape != v.shape or t.ndim != 1:
        raise ValueError(
            f"times and values must be equal-length 1-D: {t.shape} vs {v.shape}"
        )
    return t, v, t.shape[0]


def encode_binary_samples(
    name_id: int,
    times: Sequence[float],
    values: Sequence[float],
    version: int = PROTOCOL_VERSION,
) -> bytes:
    """Encode one signal's sample batch as contiguous float64 columns.

    Returns ``b""`` for an empty batch.  Batches beyond
    :data:`MAX_FRAME_SAMPLES` are split across several frames so any
    caller-side batch size stays decodable.  Under version 2 the two
    columns are followed by their crc32; version 1 omits it (for old
    peers) and inherits v1's blindness to payload corruption.
    """
    _check_version(version)
    t, v, n = _columns(times, values)
    if n == 0:
        return b""
    if n <= MAX_FRAME_SAMPLES:
        header = FRAME_HEADER.pack(MAGIC, version, FrameKind.SAMPLES, name_id, n)
        tb = t.tobytes()
        vb = v.tobytes()
        if version < 2:
            return header + tb + vb
        crc = zlib.crc32(vb, zlib.crc32(tb))
        return header + tb + vb + _CRC_TRAILER.pack(crc)
    parts = []
    for start in range(0, n, MAX_FRAME_SAMPLES):
        sl = slice(start, min(start + MAX_FRAME_SAMPLES, n))
        parts.append(encode_binary_samples(name_id, t[sl], v[sl], version))
    return b"".join(parts)


def encode_deliver(
    name_id: int,
    now: float,
    times: Sequence[float],
    values: Sequence[float],
) -> bytes:
    """Encode a router→worker delivery: columns stamped with the push instant.

    The payload leads with the router's ``now`` as one float64 so the
    worker replays the exact delivery timeline (its virtual clock runs
    ``run_through(now)`` before ingesting), then carries the SAMPLES
    columns and their crc32.  DELIVER exists only under version 2.
    """
    t, v, n = _columns(times, values)
    if n == 0:
        return b""
    if n <= MAX_FRAME_SAMPLES:
        header = FRAME_HEADER.pack(MAGIC, 2, FrameKind.DELIVER, name_id, n)
        tb = t.tobytes()
        vb = v.tobytes()
        crc = zlib.crc32(vb, zlib.crc32(tb))
        return header + _DELIVER_NOW.pack(float(now)) + tb + vb + _CRC_TRAILER.pack(crc)
    parts = []
    for start in range(0, n, MAX_FRAME_SAMPLES):
        sl = slice(start, min(start + MAX_FRAME_SAMPLES, n))
        parts.append(encode_deliver(name_id, now, t[sl], v[sl]))
    return b"".join(parts)


def encode_control(payload: Dict[str, Any]) -> bytes:
    """Encode one JSON control message (heartbeat, stats, snapshot, ...).

    Binary blobs travel base64-inside-JSON; the whole message is capped
    at :data:`MAX_CONTROL_BYTES`.  CONTROL exists only under version 2.
    """
    raw = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(raw) > MAX_CONTROL_BYTES:
        raise ProtocolError(
            f"control payload of {len(raw)} bytes exceeds the "
            f"{MAX_CONTROL_BYTES}-byte cap"
        )
    return FRAME_HEADER.pack(MAGIC, 2, FrameKind.CONTROL, 0, len(raw)) + raw


def encode_query(payload: Dict[str, Any]) -> bytes:
    """Encode one JSON continuous-query message.

    Client→server these carry ``{"op": "query"|"subscribe"|
    "unsubscribe", "id": qid, ...}``; server→client they carry the
    ``compiled``/``error``/``end`` replies (see
    :mod:`repro.net.queryservice`).  The query *results* never travel
    this way — derived columns flow back as ordinary NAME_DEF + SAMPLES
    frames, the same bytes a raw signal would use.  QUERY exists only
    under version 2.
    """
    raw = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(raw) > MAX_CONTROL_BYTES:
        raise ProtocolError(
            f"query payload of {len(raw)} bytes exceeds the "
            f"{MAX_CONTROL_BYTES}-byte cap"
        )
    return FRAME_HEADER.pack(MAGIC, 2, FrameKind.QUERY, 0, len(raw)) + raw


class FrameDecoder:
    """Incremental binary frame decoder tolerating any fragmentation.

    The hot path is **zero-copy**: when no partial frame is carried
    over (the steady state — most reads deliver whole frames), frames
    decode straight out of the caller's ``bytes`` chunk and SAMPLES
    columns are read-only ``np.frombuffer`` views over it, no payload
    copy anywhere (the chunk is immutable, so the views can never be
    invalidated).  Only a trailing partial frame is copied into the
    carry buffer; frames completed *from* carried bytes pay one payload
    copy so their views stay valid across buffer compaction — that is
    the mutation boundary.

    Header validation (magic, version, kind, payload bounds) happens as
    soon as the 12 header bytes are present, so a corrupted stream
    fails fast instead of waiting for a phantom payload.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._pos = 0

    @property
    def pending(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buf) - self._pos

    def feed(self, chunk: bytes) -> List[Frame]:
        """Add a chunk; return the frames it completes, in stream order."""
        frames: List[Frame] = []
        if self._pos == len(self._buf):
            # Zero-copy fast path: nothing carried — decode whole
            # frames directly from the chunk.
            if self._pos:
                self._buf = bytearray()
                self._pos = 0
            data = chunk if isinstance(chunk, bytes) else bytes(chunk)
            pos = 0
            while True:
                decoded = self._decode_at(data, pos, copy_payload=False)
                if decoded is None:
                    break
                frame, pos = decoded
                frames.append(frame)
            if pos < len(data):
                self._buf += data[pos:] if pos else data
            return frames
        self._buf += chunk
        while True:
            decoded = self._decode_at(self._buf, self._pos, copy_payload=True)
            if decoded is None:
                break
            frame, self._pos = decoded
            frames.append(frame)
        # Compact once per feed, not per frame: drop consumed bytes when
        # they dominate the buffer.
        if self._pos > 65536 and self._pos * 2 > len(self._buf):
            del self._buf[: self._pos]
            self._pos = 0
        return frames

    def _decode_at(
        self, buf, pos: int, copy_payload: bool
    ) -> Optional[Tuple[Frame, int]]:
        """Decode one frame at ``buf[pos:]``; ``(frame, end)`` or None.

        With ``copy_payload=False`` (immutable ``bytes`` source) SAMPLES
        columns are zero-copy views into ``buf``; with True (the mutable
        carry buffer) the payload is copied out first.
        """
        header_size = FRAME_HEADER.size
        if len(buf) - pos < header_size:
            return None
        magic, version, kind_raw, name_id, count = FRAME_HEADER.unpack_from(
            buf, pos
        )
        if magic != MAGIC:
            raise ProtocolError(f"bad frame magic: {bytes(magic)!r}")
        if version not in SUPPORTED_VERSIONS:
            raise ProtocolError(
                f"unsupported protocol version {version} "
                f"(speak one of {sorted(SUPPORTED_VERSIONS)})"
            )
        try:
            kind = FrameKind(kind_raw)
        except ValueError:
            raise ProtocolError(f"unknown frame kind: {kind_raw}") from None
        if (
            kind in (FrameKind.DELIVER, FrameKind.CONTROL, FrameKind.QUERY)
            and version < 2
        ):
            raise ProtocolError(f"{kind.name} frames require protocol version 2")
        if kind in (FrameKind.SAMPLES, FrameKind.DELIVER):
            if count > MAX_FRAME_SAMPLES:
                raise ProtocolError(
                    f"{kind.name} frame of {count} samples exceeds the "
                    f"{MAX_FRAME_SAMPLES}-sample cap"
                )
            # v2 columns carry a trailing crc32; DELIVER also leads with
            # the float64 delivery instant.
            checksummed = version >= 2
            lead = _DELIVER_NOW.size if kind is FrameKind.DELIVER else 0
            payload_size = lead + 16 * count + (_CRC_TRAILER.size if checksummed else 0)
        elif kind in (FrameKind.CONTROL, FrameKind.QUERY):
            if count > MAX_CONTROL_BYTES:
                raise ProtocolError(
                    f"{kind.name} payload of {count} bytes exceeds the "
                    f"{MAX_CONTROL_BYTES}-byte cap"
                )
            payload_size = count
        else:
            if count > MAX_NAME_BYTES:
                raise ProtocolError(
                    f"{kind.name} payload of {count} bytes exceeds the "
                    f"{MAX_NAME_BYTES}-byte cap"
                )
            payload_size = count
        start = pos + header_size
        end = start + payload_size
        if len(buf) < end:
            return None
        if kind in (FrameKind.SAMPLES, FrameKind.DELIVER):
            if copy_payload:
                # Detach from the carry buffer before it compacts.
                source: bytes = bytes(memoryview(buf)[start:end])
                offset = 0
            else:
                source = buf
                offset = start
            now: Optional[float] = None
            if kind is FrameKind.DELIVER:
                (now,) = _DELIVER_NOW.unpack_from(source, offset)
                offset += _DELIVER_NOW.size
            if checksummed:
                with memoryview(source) as view:
                    columns = view[offset : offset + 16 * count]
                    (expect,) = _CRC_TRAILER.unpack_from(
                        source, offset + 16 * count
                    )
                    if zlib.crc32(columns) != expect:
                        raise ProtocolError(
                            f"{kind.name} column checksum mismatch "
                            f"(corrupt frame of {count} samples)"
                        )
            times = np.frombuffer(source, dtype="<f8", count=count, offset=offset)
            values = np.frombuffer(
                source, dtype="<f8", count=count, offset=offset + 8 * count
            )
            return (
                Frame(
                    kind=kind,
                    name_id=name_id,
                    version=version,
                    times=times,
                    values=values,
                    now=now,
                ),
                end,
            )
        if kind in (FrameKind.CONTROL, FrameKind.QUERY):
            try:
                control = json.loads(bytes(memoryview(buf)[start:end]).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(
                    f"{kind.name} payload is not JSON: {exc}"
                ) from None
            if not isinstance(control, dict):
                raise ProtocolError(
                    f"{kind.name} payload must be a JSON object: "
                    f"{type(control).__name__}"
                )
            return (
                Frame(kind=kind, name_id=name_id, version=version, control=control),
                end,
            )
        if kind is FrameKind.NAME_DEF:
            try:
                name = bytes(memoryview(buf)[start:end]).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ProtocolError(f"NAME_DEF payload is not UTF-8: {exc}") from None
            if not name or any(ch.isspace() for ch in name):
                raise ProtocolError(f"invalid signal name on wire: {name!r}")
            return Frame(kind=kind, name_id=name_id, version=version, name=name), end
        return Frame(kind=kind, name_id=name_id, version=version), end


class WireDecoder:
    """Per-connection mode negotiation plus the matching decoder.

    The mode is sniffed from the first received byte: 0xA5 (the binary
    magic's first byte, impossible at the start of a text tuple line)
    selects binary; anything else selects text.  After the sniff, feeds
    delegate to the chosen incremental decoder, so arbitrary chunk
    fragmentation — including a 1-byte first read — is handled.
    """

    def __init__(self, max_line_bytes: int = MAX_LINE_BYTES) -> None:
        self.mode: Optional[str] = None  # None until the first byte arrives
        self._max_line_bytes = max_line_bytes
        self._lines: Optional[LineDecoder] = None
        self._frames: Optional[FrameDecoder] = None

    def feed(self, chunk: bytes) -> Tuple[List[Tuple3], List[Frame]]:
        """Add a chunk; return ``(text_tuples, binary_frames)``.

        Exactly one of the two lists can ever be non-empty — a
        connection speaks one protocol for its whole life.
        """
        if self.mode is None:
            if not chunk:
                return [], []
            if chunk[0] == MAGIC[0]:
                self.mode = "binary"
                self._frames = FrameDecoder()
            else:
                self.mode = "text"
                self._lines = LineDecoder(max_line_bytes=self._max_line_bytes)
        if self.mode == "binary":
            assert self._frames is not None
            return [], self._frames.feed(chunk)
        tuples, self._lines = decode_lines(chunk, self._lines)
        return tuples, []
