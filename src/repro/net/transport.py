"""Transports: duplex byte channels the event loop can watch.

Both endpoint kinds satisfy the
:class:`~repro.eventloop.sources.Pollable` protocol (``readable()`` /
``writable()``), so either can sit behind an
:class:`~repro.eventloop.sources.IOWatch`:

* :func:`memory_pair` — two in-process endpoints joined by byte queues.
  Deterministic, works with a virtual clock, and supports an optional
  :class:`LatencyLink` that holds bytes for a configurable delay —
  the stand-in for the paper's wide-area network between mxtraf hosts.
* :func:`socket_pair` — a real non-blocking ``socket.socketpair``, used
  by integration tests to prove the code path works on actual sockets.
"""

from __future__ import annotations

import socket
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.eventloop.clock import Clock


class TransportClosed(ConnectionError):
    """Raised when sending on or reading from a closed endpoint."""


#: Delivery stamp for zero-delay sends: compares <= any clock reading.
_NOW = float("-inf")


class LatencyLink:
    """Byte conduit that delivers chunks after a fixed delay.

    Models transmission latency between a remote client and the scope
    server.  Bytes become visible to the receiving endpoint only once
    ``delay_ms`` has elapsed on the shared clock.
    """

    def __init__(self, clock: Clock, delay_ms: float = 0.0) -> None:
        if delay_ms < 0:
            raise ValueError(f"delay must be non-negative: {delay_ms}")
        self.clock = clock
        self.delay_ms = float(delay_ms)
        self._in_flight: Deque[Tuple[float, bytes]] = deque()
        # Delivered bytes live in one buffer with a read cursor, so a
        # deep receive backlog costs O(1) amortised per recv instead of
        # re-slicing the whole backlog (O(n^2) across a drain).
        self._delivered = bytearray()
        self._read_pos = 0
        self.closed = False
        # Readiness listeners (edge hints for the event loop): fired on
        # every send and on close, never on delivery — which is why only
        # zero-delay links are hint-eligible (see MemoryEndpoint).
        self._listeners: List = []

    def add_listener(self, callback) -> None:
        self._listeners.append(callback)

    def remove_listener(self, callback) -> None:
        try:
            self._listeners.remove(callback)
        except ValueError:
            pass

    def send(self, data: bytes) -> None:
        if self.closed:
            raise TransportClosed("link is closed")
        # Zero-delay chunks are deliverable immediately; skipping the
        # clock read matters on the fan-out hot path (one send per
        # subscriber per batch).
        self._in_flight.append(
            (
                self.clock.now() + self.delay_ms if self.delay_ms else _NOW,
                data,
            )
        )
        if self._listeners:
            for callback in self._listeners:
                callback()

    def _settle(self) -> None:
        now = self.clock.now()
        while self._in_flight and self._in_flight[0][0] <= now:
            self._delivered += self._in_flight.popleft()[1]

    def readable(self) -> bool:
        self._settle()
        return len(self._delivered) > self._read_pos

    def recv(self, max_bytes: int = 65536) -> bytes:
        self._settle()
        start = self._read_pos
        end = min(start + max_bytes, len(self._delivered))
        chunk = bytes(memoryview(self._delivered)[start:end])
        self._read_pos = end
        if self._read_pos > 65536 and self._read_pos * 2 > len(self._delivered):
            del self._delivered[: self._read_pos]
            self._read_pos = 0
        return chunk

    def close(self) -> None:
        self.closed = True
        if self._listeners:
            for callback in self._listeners:
                callback()


class MemoryEndpoint:
    """One side of an in-memory duplex channel."""

    def __init__(self, outgoing: LatencyLink, incoming: LatencyLink, label: str = "") -> None:
        self._out = outgoing
        self._in = incoming
        self.label = label
        self.closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    # Pollable protocol -------------------------------------------------
    def readable(self) -> bool:
        if self.closed:
            return False
        # A dead incoming link reads as ready-with-EOF (recv() -> b""),
        # the socket convention — so a server's IN watch wakes up and
        # reaps the session instead of keeping a zombie forever.
        return self._in.readable() or self._in.closed

    def writable(self) -> bool:
        return not self.closed and not self._out.closed

    # Readiness hints ----------------------------------------------------
    def add_ready_listener(self, callback) -> bool:
        """Register an edge hint: ``callback()`` fires whenever incoming
        bytes are sent (or the incoming link closes), i.e. whenever
        ``readable()`` may have flipped true.

        Returns False when the incoming link cannot promise that edge —
        a delayed link becomes readable by clock advance, and a
        fault-injected link applies kills and stall releases lazily
        inside polled ``readable()``; both must stay level-polled.  The
        event loop uses the return value to choose between the hinted
        and the polled partitions.
        """
        if type(self._in) is not LatencyLink or self._in.delay_ms != 0.0:
            return False
        self._in.add_listener(callback)
        return True

    def remove_ready_listener(self, callback) -> None:
        if isinstance(self._in, LatencyLink):
            self._in.remove_listener(callback)

    @property
    def peer_closed(self) -> bool:
        """True once either direction of the duplex path is down.

        The peer closing its endpoint closes *its* outgoing link — this
        endpoint's incoming — and a fault-injected kill may sever the
        outgoing link instead.  Either way the conversation is over, and
        a reconnecting client uses this to notice without a send failing
        first (sends into a half-open pair would otherwise queue
        forever).
        """
        return self._in.closed or self._out.closed

    # Byte I/O -----------------------------------------------------------
    def send(self, data: bytes) -> int:
        if self.closed:
            raise TransportClosed(f"endpoint {self.label!r} is closed")
        self._out.send(data)
        self.bytes_sent += len(data)
        return len(data)

    def recv(self, max_bytes: int = 65536) -> bytes:
        if self.closed:
            raise TransportClosed(f"endpoint {self.label!r} is closed")
        chunk = self._in.recv(max_bytes)
        self.bytes_received += len(chunk)
        return chunk

    def close(self) -> None:
        self.closed = True
        self._out.close()

    def __repr__(self) -> str:
        return f"MemoryEndpoint({self.label!r}, closed={self.closed})"


def memory_pair(
    clock: Clock, latency_ms: float = 0.0, labels: Tuple[str, str] = ("client", "server")
) -> Tuple[MemoryEndpoint, MemoryEndpoint]:
    """Create two connected in-memory endpoints with symmetric latency."""
    a_to_b = LatencyLink(clock, latency_ms)
    b_to_a = LatencyLink(clock, latency_ms)
    a = MemoryEndpoint(outgoing=a_to_b, incoming=b_to_a, label=labels[0])
    b = MemoryEndpoint(outgoing=b_to_a, incoming=a_to_b, label=labels[1])
    return a, b


class SocketEndpoint:
    """Non-blocking wrapper over a real socket.

    ``readable()`` uses a zero-timeout ``select`` so the event loop can
    poll without blocking — the same pattern glib's ``GIOChannel`` uses
    underneath.
    """

    def __init__(self, sock: socket.socket, label: str = "") -> None:
        sock.setblocking(False)
        self.sock = sock
        self.label = label
        self.closed = False
        self.peer_closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    def readable(self) -> bool:
        if self.closed:
            return False
        import select

        ready, _, _ = select.select([self.sock], [], [], 0)
        return bool(ready)

    def writable(self) -> bool:
        if self.closed:
            return False
        import select

        _, ready, _ = select.select([], [self.sock], [], 0)
        return bool(ready)

    def send(self, data: bytes) -> int:
        if self.closed:
            raise TransportClosed(f"socket endpoint {self.label!r} is closed")
        sent = self.sock.send(data)
        self.bytes_sent += sent
        return sent

    def recv(self, max_bytes: int = 65536) -> bytes:
        if self.closed:
            raise TransportClosed(f"socket endpoint {self.label!r} is closed")
        try:
            chunk = self.sock.recv(max_bytes)
        except BlockingIOError:
            return b""
        if not chunk:
            self.peer_closed = True  # orderly shutdown from the peer
        self.bytes_received += len(chunk)
        return chunk

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.sock.close()


def socket_pair(labels: Tuple[str, str] = ("client", "server")) -> Tuple[SocketEndpoint, SocketEndpoint]:
    """A connected non-blocking ``socketpair`` as two endpoints."""
    a, b = socket.socketpair()
    return SocketEndpoint(a, labels[0]), SocketEndpoint(b, labels[1])
