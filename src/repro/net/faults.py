"""Deterministic fault injection for the telemetry plane.

Every distributed failure mode this package recovers from — lossy
links, partitions, wedged processes, reordered delivery, flipped bytes,
severed connections — is reproduced here as a *scripted, seedable
schedule* over the same virtual clock that drives everything else.  A
failure scenario is therefore a fixture: the same :class:`FaultPlan`
against the same traffic produces the same byte stream, the same
protocol errors, the same reconnects and the same recovery, run after
run.  That is what makes the failover equivalence suites meaningful —
"no accepted sample lost or duplicated under faults" is checked against
a bit-exact oracle, not eyeballed against a flaky chaos run.

The fault taxonomy follows the classes that dominate real-system
studies (*Faults in Linux 2.6*, PAPERS.md): omission (drop,
partition), timing (stall), ordering (reorder), value corruption
(corrupt) and crash (kill).  Each is injected at the link layer — a
:class:`FaultyLink` wraps the :class:`~repro.net.transport.LatencyLink`
inside a :func:`~repro.net.transport.memory_pair` — so the protocol,
server and client code under test is the production code, unmodified.

Semantics per fault kind, applied per *sent chunk* (one transport
``send``):

* ``drop`` / ``partition`` — the chunk vanishes.  Mid-frame drops tear
  the byte stream, which a correct receiver must surface as a protocol
  error, not misparse; that cascade (drop → desync → disconnect →
  reconnect) is the scenario, not a test artefact.
* ``stall`` — chunks are held and released *in order* when the window
  closes: a wedged path that resumes (long GC pause, flow-control
  freeze).  Nothing is lost.
* ``reorder`` — the chunk is held until the next chunk passes it: the
  minimal adjacent swap, the unit every larger reordering decomposes
  into.
* ``corrupt`` — one byte is XOR-flipped at a seeded position.
* ``kill`` — the link closes permanently; later sends raise
  :class:`~repro.net.transport.TransportClosed` and the endpoint
  reports ``peer_closed``.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.eventloop.clock import Clock
from repro.net.transport import LatencyLink, MemoryEndpoint, TransportClosed

__all__ = ["FaultPlan", "FaultyLink", "faulty_pair"]


@dataclass(frozen=True)
class _Window:
    """A [start, end) interval during which a fault mode is active."""

    start: float
    end: float
    kind: str  # "partition" | "stall"


@dataclass
class _OneShot:
    """A counted fault armed at a clock instant, consumed by traffic."""

    at: float
    kind: str  # "drop" | "corrupt" | "reorder"
    remaining: int


@dataclass
class FaultPlan:
    """A scripted, seedable schedule of link faults.

    Windows (:meth:`partition`, :meth:`stall`) apply to every chunk
    sent while the clock is inside them; one-shots (:meth:`drop_next`,
    :meth:`corrupt_next`, :meth:`reorder_next`) arm at an instant and
    consume the next N chunks sent at or after it; :meth:`kill` severs
    the link permanently.  All methods return ``self`` so a scenario
    reads as one chained expression::

        plan = (FaultPlan(seed=7)
                .partition(100, 250)
                .stall(400, 600)
                .drop_next(at=700, count=2)
                .kill(at=900))

    The ``seed`` drives every random choice the plan ever makes (the
    corrupt byte position), so a plan is a replayable fixture: same
    plan + same traffic → same byte stream.
    """

    seed: int = 0
    _windows: List[_Window] = field(default_factory=list)
    _oneshots: List[_OneShot] = field(default_factory=list)
    _kill_at: Optional[float] = None
    _rng: Optional[random.Random] = None

    def _check_window(self, start: float, end: float) -> None:
        if not start < end:
            raise ValueError(f"fault window must have start < end: [{start}, {end})")

    def partition(self, start_ms: float, end_ms: float) -> "FaultPlan":
        """Drop every chunk sent in ``[start_ms, end_ms)``."""
        self._check_window(start_ms, end_ms)
        self._windows.append(_Window(start_ms, end_ms, "partition"))
        return self

    def stall(self, start_ms: float, end_ms: float) -> "FaultPlan":
        """Hold chunks sent in ``[start_ms, end_ms)``; release at the end."""
        self._check_window(start_ms, end_ms)
        self._windows.append(_Window(start_ms, end_ms, "stall"))
        return self

    def drop_next(self, at: float, count: int = 1) -> "FaultPlan":
        """Drop the next ``count`` chunks sent at or after ``at``."""
        if count <= 0:
            raise ValueError(f"count must be positive: {count}")
        self._oneshots.append(_OneShot(at, "drop", count))
        return self

    def corrupt_next(self, at: float, count: int = 1) -> "FaultPlan":
        """XOR-flip one seeded byte in each of the next ``count`` chunks."""
        if count <= 0:
            raise ValueError(f"count must be positive: {count}")
        self._oneshots.append(_OneShot(at, "corrupt", count))
        return self

    def reorder_next(self, at: float, count: int = 1) -> "FaultPlan":
        """Swap each of the next ``count`` chunks with its successor."""
        if count <= 0:
            raise ValueError(f"count must be positive: {count}")
        self._oneshots.append(_OneShot(at, "reorder", count))
        return self

    def kill(self, at: float) -> "FaultPlan":
        """Sever the link permanently at clock instant ``at``."""
        if self._kill_at is not None:
            raise ValueError(f"kill already scheduled at {self._kill_at}")
        self._kill_at = float(at)
        return self

    # -- queried by FaultyLink ------------------------------------------
    def rng(self) -> random.Random:
        if self._rng is None:
            self._rng = random.Random(self.seed)
        return self._rng

    def killed(self, now: float) -> bool:
        return self._kill_at is not None and now >= self._kill_at

    def window_at(self, now: float) -> Optional[str]:
        """Active window kind at ``now`` (latest-declared wins), or None."""
        for window in reversed(self._windows):
            if window.start <= now < window.end:
                return window.kind
        return None

    def stall_release(self, now: float) -> float:
        """End of the stall window covering ``now`` (caller checked one is)."""
        for window in reversed(self._windows):
            if window.kind == "stall" and window.start <= now < window.end:
                return window.end
        raise ValueError(f"no stall window covers {now}")

    def take_oneshot(self, now: float) -> Optional[str]:
        """Consume and return the earliest armed one-shot due at ``now``."""
        best: Optional[_OneShot] = None
        for shot in self._oneshots:
            if shot.remaining > 0 and shot.at <= now:
                if best is None or shot.at < best.at:
                    best = shot
        if best is None:
            return None
        best.remaining -= 1
        return best.kind


class FaultyLink:
    """A :class:`LatencyLink` with a :class:`FaultPlan` applied to sends.

    Drop-in for ``LatencyLink`` wherever a
    :class:`~repro.net.transport.MemoryEndpoint` expects one: it owns an
    inner ``LatencyLink`` for delivery/latency and decides, per sent
    chunk and per the plan at the *current clock instant*, whether the
    chunk passes, vanishes, is held, is swapped or is damaged.  Faults
    are applied on the send side — matching where real networks lose
    data — so receive-side code paths stay untouched production code.

    Counters (``dropped_chunks``, ``dropped_bytes``,
    ``corrupted_chunks``, ``stalled_chunks``, ``reordered_chunks``)
    record what the plan actually did, so a test can assert its scenario
    really happened rather than silently passing on a no-op plan.
    """

    def __init__(self, clock: Clock, plan: FaultPlan, delay_ms: float = 0.0) -> None:
        self._inner = LatencyLink(clock, delay_ms)
        self.clock = clock
        self.plan = plan
        # (release_ms, seq, chunk): stalled chunks awaiting their window end.
        self._stalled: List[Tuple[float, int, bytes]] = []
        self._stall_seq = 0
        self._held_for_swap: Optional[bytes] = None
        self.closed = False
        self.dropped_chunks = 0
        self.dropped_bytes = 0
        self.corrupted_chunks = 0
        self.stalled_chunks = 0
        self.reordered_chunks = 0

    # -- plan application -----------------------------------------------
    def _sync(self) -> None:
        """Apply clock-driven transitions: kills and stall releases."""
        now = self.clock.now()
        if not self.closed and self.plan.killed(now):
            # Chunks still held by a stall die with the link, and are
            # accounted as drops — a kill loses in-flight data.
            for _, _, chunk in self._stalled:
                self.dropped_chunks += 1
                self.dropped_bytes += len(chunk)
            self._stalled.clear()
            self.close()
        while self._stalled and self._stalled[0][0] <= now:
            _, _, chunk = self._stalled.pop(0)
            self._deliver(chunk)

    def _deliver(self, chunk: bytes) -> None:
        if self._held_for_swap is not None:
            held, self._held_for_swap = self._held_for_swap, None
            self._inner.send(chunk)
            self._inner.send(held)
            return
        self._inner.send(chunk)

    def send(self, data: bytes) -> None:
        self._sync()
        if self.closed:
            raise TransportClosed("link is closed (fault-injected kill)")
        now = self.clock.now()
        window = self.plan.window_at(now)
        if window == "partition":
            self.dropped_chunks += 1
            self.dropped_bytes += len(data)
            return
        if window == "stall":
            self.stalled_chunks += 1
            release = self.plan.stall_release(now)
            self._stall_seq += 1
            bisect.insort(self._stalled, (release, self._stall_seq, data))
            return
        shot = self.plan.take_oneshot(now)
        if shot == "drop":
            self.dropped_chunks += 1
            self.dropped_bytes += len(data)
            return
        if shot == "corrupt":
            position = self.plan.rng().randrange(len(data)) if data else 0
            data = data[:position] + bytes([data[position] ^ 0xFF]) + data[position + 1 :]
            self.corrupted_chunks += 1
        elif shot == "reorder":
            if self._held_for_swap is None:
                self._held_for_swap = data
                self.reordered_chunks += 1
                return
        self._deliver(data)

    # -- LatencyLink surface --------------------------------------------
    def readable(self) -> bool:
        self._sync()
        return self._inner.readable()

    def recv(self, max_bytes: int = 65536) -> bytes:
        self._sync()
        return self._inner.recv(max_bytes)

    def close(self) -> None:
        self.closed = True
        self._inner.close()


def faulty_pair(
    clock: Clock,
    latency_ms: float = 0.0,
    client_plan: Optional[FaultPlan] = None,
    server_plan: Optional[FaultPlan] = None,
    labels: Tuple[str, str] = ("client", "server"),
) -> Tuple[MemoryEndpoint, MemoryEndpoint, FaultyLink, FaultyLink]:
    """A :func:`~repro.net.transport.memory_pair` with faultable links.

    ``client_plan`` governs the client→server direction (what the first
    endpoint sends), ``server_plan`` the reverse.  Either may be None
    for a clean direction.  Returns ``(client_end, server_end,
    client_link, server_link)`` — the links are returned so tests can
    read their injection counters.
    """
    a_to_b = FaultyLink(clock, client_plan or FaultPlan(), latency_ms)
    b_to_a = FaultyLink(clock, server_plan or FaultPlan(), latency_ms)
    a = MemoryEndpoint(outgoing=a_to_b, incoming=b_to_a, label=labels[0])
    b = MemoryEndpoint(outgoing=b_to_a, incoming=a_to_b, label=labels[1])
    return a, b, a_to_b, b_to_a
