"""Process shard workers: one ShardHost per child process.

PRs 1–7 made the single-core path as fast as numpy allows, but every
shard of :class:`~repro.net.shard.ShardedScopeManager` still shares one
interpreter, so aggregate ingest is capped by one core and the GIL.
This module puts each shard on a real **process**:

* the child (:func:`worker_main`) runs a
  :class:`~repro.net.supervisor.ShardHost` — the same supervision unit
  the in-process plane uses, with its private event loop and virtual
  clock — and is driven *entirely* by messages from the router, so its
  timeline is deterministic and replayable;
* the transport is a ``socketpair`` speaking the version-2 binary
  protocol: ``DELIVER`` frames carry the column batches stamped with the
  router's push instant, and ``CONTROL`` frames carry the JSON
  supervision side channel (heartbeats, stats, snapshot/shutdown);
* optionally, the column bytes travel through a same-host shared-memory
  ring (:class:`ShmRing`) instead of the socket; the socket then carries
  only a tiny ``shmrec`` token per batch, keeping *ordering* on the one
  stream while the bulk bytes skip the kernel copy.

Delivery timeline
-----------------

The child's loop only advances when the router says so: a ``DELIVER``
frame (or ring record) carries the router clock's ``now``, and the child
runs ``loop.run_through(now)`` before ingesting — exactly what the
in-process :meth:`ShardHost.deliver` does.  Idle shards advance via
periodic ``advance`` controls.  Because the timeline is message-driven,
a respawned worker that re-drives the same WAL reaches a byte-identical
state (the PR 6 equivalence argument carries over unchanged).

Restart protocol
----------------

A worker spawned with ``wal_path``/``state_path`` restores itself before
accepting traffic: load the snapshot (if any), dry-advance the fresh
factory host to the snapshot instant, load the state over it, replay the
WAL segments through ``start_now``, then send ``ready``.  The parent's
:class:`WorkerHandle` blocks on ``ready``, so no live delivery can race
the replay — everything the router pushes after the handle exists is
new traffic.

Fork start method: workers are forked, so the ``scope_factory`` is
inherited by reference and never pickled — test factories and closures
work unchanged.
"""

from __future__ import annotations

import base64
import os
import pickle
import select
import socket
import struct
import time
from multiprocessing import get_context
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.net.protocol import (
    FrameDecoder,
    FrameKind,
    MAX_FRAME_SAMPLES,
    ProtocolError,
    encode_control,
    encode_deliver,
    encode_name_def,
)

__all__ = ["ShmRing", "WorkerDied", "WorkerHandle", "worker_main"]

_FORK = get_context("fork")

#: Ring record header: name_id(u32) count(u32) now(f8) — 16 bytes, so
#: every record (header + two float64 columns) is 16-byte aligned and a
#: wrap marker always fits in the contiguous space left at the end.
_REC_HEADER = struct.Struct("<IId")
_RING_MARK = 0xFFFFFFFF  # name_id sentinel: jump back to offset 0
_CURSORS = struct.Struct("<QQ")  # tail (producer), head (consumer)
_DATA_OFF = 16


class WorkerDied(RuntimeError):
    """The worker process is gone (or unresponsive past its deadline)."""


class ShmRing:
    """Single-producer single-consumer byte ring in shared memory.

    Carries DELIVER records (name_id, count, now, then the two float64
    columns) from router to worker without the socket's kernel copy.
    Ordering and wakeup are NOT the ring's job: the producer sends one
    ``shmrec`` token over the socket per record, *after* the record is
    fully written, so the socket stream stays the single total order of
    deliveries and the consumer never reads a half-written record (the
    token's send/recv pair is the happens-before edge).

    Layout: bytes ``[0, 16)`` hold the ``tail``/``head`` cursors; data
    lives in ``[16, 16 + cap)`` with ``cap`` a multiple of 16.  Cursors
    are byte offsets into the data region, always 16-aligned; one
    16-byte slot stays unused to distinguish full from empty.  A record
    that would straddle the end is preceded by a 16-byte wrap marker
    (``name_id == 0xFFFFFFFF``) and written at offset 0 instead.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self.shm = shm
        self.owner = owner
        self.cap = (len(shm.buf) - _DATA_OFF) & ~15
        if self.cap < 4096:
            raise ValueError(f"ring too small: {len(shm.buf)} bytes")
        if owner:
            _CURSORS.pack_into(shm.buf, 0, 0, 0)
        self.records = 0
        self.fallbacks = 0  # producer-side: records that didn't fit

    @classmethod
    def create(cls, ring_bytes: int) -> "ShmRing":
        shm = shared_memory.SharedMemory(create=True, size=_DATA_OFF + ring_bytes)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        return cls(shared_memory.SharedMemory(name=name), owner=False)

    @property
    def name(self) -> str:
        return self.shm.name

    def _cursors(self) -> tuple:
        return _CURSORS.unpack_from(self.shm.buf, 0)

    def used_bytes(self) -> int:
        """Bytes currently occupied by written-but-unconsumed records."""
        tail, head = self._cursors()
        return (tail - head) % self.cap

    def occupancy(self) -> float:
        """Ring fullness in ``[0, 1]`` (the backpressure signal)."""
        return self.used_bytes() / self.cap

    def try_push(self, name_id: int, now: float, tb: bytes, vb: bytes) -> bool:
        """Write one record; False (caller falls back to DELIVER) if full."""
        rec = _REC_HEADER.size + len(tb) + len(vb)
        tail, head = self._cursors()
        used = (tail - head) % self.cap
        free = self.cap - used - 16
        contig = self.cap - tail
        need = rec if contig >= rec else contig + rec
        if need > free:
            self.fallbacks += 1
            return False
        buf = self.shm.buf
        if contig < rec:
            _REC_HEADER.pack_into(buf, _DATA_OFF + tail, _RING_MARK, 0, 0.0)
            tail = 0
        pos = _DATA_OFF + tail
        _REC_HEADER.pack_into(buf, pos, name_id, len(tb) // 8, now)
        pos += _REC_HEADER.size
        buf[pos : pos + len(tb)] = tb
        pos += len(tb)
        buf[pos : pos + len(vb)] = vb
        new_tail = (tail + rec) % self.cap
        # Publish the tail last; the socket token provides the actual
        # cross-process ordering, this just keeps free-space accounting
        # coherent for the producer.
        struct.pack_into("<Q", buf, 0, new_tail)
        self.records += 1
        return True

    def pop(self) -> tuple:
        """Consume exactly one record: ``(name_id, now, times, values)``.

        Only called after a ``shmrec`` token arrived, so a record is
        guaranteed present and fully written.
        """
        buf = self.shm.buf
        tail, head = self._cursors()
        name_id, count, now = _REC_HEADER.unpack_from(buf, _DATA_OFF + head)
        if name_id == _RING_MARK:
            head = 0
            name_id, count, now = _REC_HEADER.unpack_from(buf, _DATA_OFF)
        pos = _DATA_OFF + head + _REC_HEADER.size
        times = np.frombuffer(buf, dtype="<f8", count=count, offset=pos).copy()
        values = np.frombuffer(
            buf, dtype="<f8", count=count, offset=pos + 8 * count
        ).copy()
        rec = _REC_HEADER.size + 16 * count
        struct.pack_into("<Q", buf, 8, (head + rec) % self.cap)
        self.records += 1
        return name_id, now, times, values

    def close(self) -> None:
        self.shm.close()
        if self.owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass


# ----------------------------------------------------------------------
# Child side
# ----------------------------------------------------------------------
def _restore_and_replay(host, state_path, wal_path, start_now) -> Dict[str, Any]:
    """Restore snapshot state (if any) and replay the WAL into ``host``.

    Mirrors the in-process :meth:`ShardSupervisor.restart_shard` exactly:
    dry-advance the fresh factory host to the snapshot instant (its
    timers deterministically reproduce polls and beats), load the state
    over it, then re-drive the WAL segments at their recorded instants
    and advance through ``start_now``.
    """
    from repro.capture.reader import CaptureReader
    from repro.capture.replay import ReplaySource
    from repro.net.supervisor import _HostTarget

    restored = False
    if state_path and Path(state_path).exists():
        with open(state_path, "rb") as fh:
            snap = pickle.load(fh)
        host.loop.run_through(float(snap["now"]))
        host.manager.load_state(snap["manager"])
        host.stats.offered = int(snap["stats"]["offered"])
        host.stats.accepted = int(snap["stats"]["accepted"])
        host.stats.dropped_late = int(snap["stats"]["dropped_late"])
        restored = True
    replayed = 0
    if wal_path and sorted(Path(wal_path).glob("*.gseg")):
        reader = CaptureReader(wal_path, recover_tail=True)
        source = ReplaySource(reader, _HostTarget(host))
        host.loop.attach(source)
        host.loop.run_through(float(start_now))
        replayed = source.delivered_samples
    else:
        host.loop.run_through(float(start_now))
    return {"restored": restored, "replayed": replayed}


def worker_main(
    sock: socket.socket,
    parent_fd: int,
    shard_id: int,
    scope_factory,
    heartbeat_s: float,
    wal_path: Optional[str],
    state_path: Optional[str],
    start_now: float,
    ring_name: Optional[str],
) -> None:
    """Child entrypoint: host one shard, driven by the router socket."""
    from repro.net.supervisor import ShardDown, ShardHost

    try:
        os.close(parent_fd)  # drop the inherited copy of the parent's end
    except OSError:
        pass
    ring = ShmRing.attach(ring_name) if ring_name else None
    exit_code = 0
    try:
        host = ShardHost(shard_id, scope_factory)
        boot = _restore_and_replay(host, state_path, wal_path, start_now)
        sock.setblocking(True)
        sock.settimeout(heartbeat_s)
        sock.sendall(
            encode_control(
                {
                    "op": "ready",
                    "shard": shard_id,
                    "restored": boot["restored"],
                    "replayed": boot["replayed"],
                }
            )
        )
        names: Dict[int, str] = {}
        decoder = FrameDecoder()
        # Continuous queries attached over the control channel: qid →
        # LiveQuery tapping this worker's manager.  A quarantined query
        # detaches itself; the counter rides the stats reply so the
        # router-side ledger sees the loss.
        queries: Dict[str, Any] = {}

        def count_quarantine(_live, _exc) -> None:
            host.stats.query_quarantines += 1

        def stats_payload() -> Dict[str, Any]:
            return {
                "op": "stats",
                "shard": shard_id,
                "offered": host.stats.offered,
                "accepted": host.stats.accepted,
                "dropped_late": host.stats.dropped_late,
                "query_quarantines": host.stats.query_quarantines,
                "queries": sorted(queries),
                "beats": host.beats,
                "now": host.loop.clock.now(),
                "replayed": boot["replayed"],
            }

        running = True
        while running:
            try:
                chunk = sock.recv(1 << 18)
            except socket.timeout:
                # Idle interval: heartbeat over the control channel so
                # the parent can tell "slow" from "gone" in real time.
                sock.sendall(encode_control({"op": "beat", "beats": host.beats}))
                continue
            if not chunk:
                break  # router went away without a shutdown — exit clean
            for frame in decoder.feed(chunk):
                if frame.kind is FrameKind.DELIVER:
                    name = names.get(frame.name_id)
                    if name is None:
                        raise ProtocolError(
                            f"DELIVER for undefined name id {frame.name_id}"
                        )
                    host.deliver(frame.now, name, frame.times, frame.values)
                elif frame.kind is FrameKind.NAME_DEF:
                    names[frame.name_id] = frame.name
                elif frame.kind is FrameKind.CONTROL:
                    op = frame.control.get("op")
                    if op == "shmrec":
                        name_id, now, times, values = ring.pop()
                        name = names.get(name_id)
                        if name is None:
                            raise ProtocolError(
                                f"ring record for undefined name id {name_id}"
                            )
                        host.deliver(now, name, times, values)
                    elif op == "advance":
                        host.advance(float(frame.control["now"]))
                    elif op == "stats":
                        sock.sendall(encode_control(stats_payload()))
                    elif op == "snapshot":
                        host.advance(float(frame.control["now"]))
                        blob = pickle.dumps(
                            {
                                "now": host.loop.clock.now(),
                                "manager": host.manager.state_dict(),
                                "stats": {
                                    "offered": host.stats.offered,
                                    "accepted": host.stats.accepted,
                                    "dropped_late": host.stats.dropped_late,
                                },
                            }
                        )
                        sock.sendall(
                            encode_control(
                                {
                                    "op": "snapshot",
                                    "shard": shard_id,
                                    "blob": base64.b64encode(blob).decode("ascii"),
                                }
                            )
                        )
                    elif op == "query_attach":
                        # Compile-and-attach in the child: the query taps
                        # this shard's manager and pushes derived signals
                        # back into it (they live on this worker).
                        # Compile failures reply in-band — a bad query
                        # must not crash a healthy shard.
                        from repro.query import LiveQuery, QueryError

                        qid = str(frame.control["id"])
                        try:
                            live = LiveQuery(
                                str(frame.control["text"]), host.manager
                            )
                        except QueryError as exc:
                            sock.sendall(
                                encode_control(
                                    {
                                        "op": "query_attached",
                                        "id": qid,
                                        "error": str(exc),
                                    }
                                )
                            )
                        else:
                            live.on_quarantine(count_quarantine)
                            queries[qid] = live
                            sock.sendall(
                                encode_control(
                                    {
                                        "op": "query_attached",
                                        "id": qid,
                                        "outputs": list(live.plan.output_names),
                                    }
                                )
                            )
                    elif op == "query_detach":
                        qid = str(frame.control["id"])
                        live = queries.pop(qid, None)
                        if live is not None:
                            live.detach()
                        sock.sendall(
                            encode_control(
                                {
                                    "op": "query_detached",
                                    "id": qid,
                                    "known": live is not None,
                                }
                            )
                        )
                    elif op == "ping":
                        sock.sendall(encode_control({"op": "pong"}))
                    elif op == "shutdown":
                        sock.sendall(encode_control({"op": "bye"}))
                        running = False
                        break
                # HELLO and SAMPLES are not part of the worker protocol;
                # ignore them rather than die on a benign peer.
    except Exception as exc:  # noqa: BLE001 — includes ShardDown/ProtocolError
        # Quarantine semantics, process edition: report if the pipe is
        # still up, then exit nonzero so OS-level liveness sees a crash.
        exit_code = 1
        try:
            sock.settimeout(1.0)
            sock.sendall(encode_control({"op": "crashed", "error": repr(exc)}))
        except OSError:
            pass
    finally:
        try:
            sock.close()
        except OSError:
            pass
        if ring is not None:
            ring.shm.close()  # attach-side: close the mapping, never unlink
    os._exit(exit_code)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class WorkerHandle:
    """Router-side handle on one worker process.

    Owns the process, the socket, the optional shm ring and the
    per-connection name interning.  Writes are non-blocking with a
    bounded pending buffer: past ``max_pending_bytes`` the handle
    *blocks* on the socket (per-shard backpressure) instead of growing
    router memory without bound.

    Construction is synchronous: the handle waits for the child's
    ``ready`` control — which arrives only after any snapshot restore
    and WAL replay — so a caller can never race fresh traffic against
    recovery.
    """

    def __init__(
        self,
        shard_id: int,
        scope_factory,
        heartbeat_s: float = 1.0,
        wal_path: Optional[str] = None,
        state_path: Optional[str] = None,
        start_now: float = 0.0,
        use_shm: bool = False,
        ring_bytes: int = 1 << 22,
        max_pending_bytes: int = 4 << 20,
        ready_timeout_s: float = 60.0,
    ) -> None:
        self.shard_id = shard_id
        self.heartbeat_s = float(heartbeat_s)
        self.max_pending_bytes = int(max_pending_bytes)
        self.ring = ShmRing.create(ring_bytes) if use_shm else None
        parent_sock, child_sock = socket.socketpair()
        self.process = _FORK.Process(
            target=worker_main,
            args=(
                child_sock,
                parent_sock.fileno(),
                shard_id,
                scope_factory,
                self.heartbeat_s,
                str(wal_path) if wal_path is not None else None,
                str(state_path) if state_path is not None else None,
                float(start_now),
                self.ring.name if self.ring is not None else None,
            ),
            daemon=True,
        )
        self.process.start()
        child_sock.close()
        parent_sock.setblocking(False)
        self.sock = parent_sock
        self._pending = bytearray()
        self._pending_pos = 0
        self._decoder = FrameDecoder()
        self._inbox: List[Dict[str, Any]] = []
        self._name_ids: Dict[str, int] = {}
        self.link_down = False
        self.samples_sent = 0
        self.frames_sent = 0
        self.bytes_sent = 0
        self.beats_seen = 0
        self.last_now = 0.0  # latest router instant sent to the worker
        self.last_beat_monotonic = time.monotonic()
        self.replayed_samples = 0
        self.restored = False
        ready = self._wait_for("ready", timeout_s=ready_timeout_s)
        self.replayed_samples = int(ready.get("replayed", 0))
        self.restored = bool(ready.get("restored", False))

    # -- liveness -------------------------------------------------------
    def is_alive(self) -> bool:
        return self.process.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        return self.process.exitcode

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def beat_age_s(self) -> float:
        """Real seconds since the last sign of life on the control channel."""
        return time.monotonic() - self.last_beat_monotonic

    @property
    def pending_bytes(self) -> int:
        """Bytes queued router-side, waiting for the worker socket."""
        return len(self._pending) - self._pending_pos

    # -- outbound -------------------------------------------------------
    def _queue(self, data: bytes) -> None:
        if self.link_down:
            return  # child is gone; the WAL (if any) holds the truth
        self._pending += data
        self._flush_some()
        if len(self._pending) - self._pending_pos > self.max_pending_bytes:
            self._flush_blocking()

    def _flush_some(self) -> None:
        """Write as much pending as the socket takes without blocking."""
        while self._pending_pos < len(self._pending):
            try:
                sent = self.sock.send(
                    memoryview(self._pending)[self._pending_pos :]
                )
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._mark_down()
                return
            self._pending_pos += sent
            self.bytes_sent += sent
        self._pending = bytearray()
        self._pending_pos = 0

    def _flush_blocking(self, timeout_s: float = 60.0) -> None:
        """Backpressure: block until pending drains below the watermark.

        Reads are serviced while blocked (the child may be replying to
        an earlier request), so a full-duplex stall cannot deadlock.
        """
        deadline = time.monotonic() + timeout_s
        while (
            len(self._pending) - self._pending_pos > self.max_pending_bytes
            and not self.link_down
        ):
            if time.monotonic() > deadline:
                raise WorkerDied(
                    f"worker {self.shard_id} backpressure stall: "
                    f"{len(self._pending) - self._pending_pos} bytes pending"
                )
            if not self.is_alive():
                self._mark_down()
                break
            readable, writable, _ = select.select(
                [self.sock], [self.sock], [], 0.2
            )
            if readable:
                self.poll()
            if writable:
                self._flush_some()

    def _mark_down(self) -> None:
        self.link_down = True
        self._pending = bytearray()
        self._pending_pos = 0

    def _intern(self, name: str) -> int:
        name_id = self._name_ids.get(name)
        if name_id is None:
            name_id = len(self._name_ids)
            self._name_ids[name] = name_id
            self._queue(encode_name_def(name_id, name))
        return name_id

    def deliver(self, now: float, name: str, times, values) -> int:
        """Queue one batch for the worker; returns the offered count."""
        t = np.ascontiguousarray(times, dtype="<f8")
        v = np.ascontiguousarray(values, dtype="<f8")
        n = t.shape[0]
        if n == 0:
            return 0
        self.last_now = max(self.last_now, float(now))
        name_id = self._intern(name)
        if self.ring is not None and n <= MAX_FRAME_SAMPLES:
            if self.ring.try_push(name_id, float(now), t.tobytes(), v.tobytes()):
                self._queue(encode_control({"op": "shmrec"}))
                self.samples_sent += n
                self.frames_sent += 1
                return n
        self._queue(encode_deliver(name_id, float(now), t, v))
        self.samples_sent += n
        self.frames_sent += 1
        return n

    def advance(self, now: float) -> None:
        self.last_now = max(self.last_now, float(now))
        self._queue(encode_control({"op": "advance", "now": float(now)}))

    def flush(self, timeout_s: float = 30.0) -> None:
        """Push every queued byte into the socket (blocking as needed)."""
        deadline = time.monotonic() + timeout_s
        while self._pending_pos < len(self._pending) and not self.link_down:
            if time.monotonic() > deadline:
                raise WorkerDied(f"worker {self.shard_id} flush stalled")
            if not self.is_alive():
                self._mark_down()
                break
            readable, writable, _ = select.select(
                [self.sock], [self.sock], [], 0.2
            )
            if readable:
                self.poll()
            if writable:
                self._flush_some()

    # -- inbound --------------------------------------------------------
    def poll(self) -> None:
        """Drain whatever the child has sent; file control replies."""
        while True:
            try:
                chunk = self.sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._mark_down()
                return
            if not chunk:
                self._mark_down()
                return
            for frame in self._decoder.feed(chunk):
                if frame.kind is not FrameKind.CONTROL:
                    continue
                self.last_beat_monotonic = time.monotonic()
                if frame.control.get("op") == "beat":
                    self.beats_seen = int(frame.control.get("beats", 0))
                else:
                    self._inbox.append(frame.control)

    def _wait_for(self, op: str, timeout_s: float) -> Dict[str, Any]:
        """Block (real time) for a control reply with the given op."""
        deadline = time.monotonic() + timeout_s
        while True:
            for i, msg in enumerate(self._inbox):
                if msg.get("op") == op:
                    return self._inbox.pop(i)
                if msg.get("op") == "crashed":
                    self._inbox.pop(i)
                    raise WorkerDied(
                        f"worker {self.shard_id} crashed: {msg.get('error')}"
                    )
            if self.link_down or (
                not self.is_alive() and not self.sock_readable()
            ):
                raise WorkerDied(
                    f"worker {self.shard_id} died awaiting {op!r} "
                    f"(exitcode {self.exitcode})"
                )
            if time.monotonic() > deadline:
                raise WorkerDied(
                    f"worker {self.shard_id}: no {op!r} reply in {timeout_s}s"
                )
            readable, _, _ = select.select([self.sock], [], [], 0.2)
            if readable:
                self.poll()

    def take_crash(self) -> Optional[str]:
        """Pop a pending child crash report (None when healthy)."""
        for i, msg in enumerate(self._inbox):
            if msg.get("op") == "crashed":
                self._inbox.pop(i)
                return str(msg.get("error"))
        return None

    def sock_readable(self) -> bool:
        if self.link_down:
            return False
        readable, _, _ = select.select([self.sock], [], [], 0)
        return bool(readable)

    def request(self, payload: Dict[str, Any], reply_op: str, timeout_s: float) -> Dict[str, Any]:
        self._queue(encode_control(payload))
        self.flush(timeout_s=timeout_s)
        return self._wait_for(reply_op, timeout_s=timeout_s)

    # -- the worker protocol -------------------------------------------
    def stats(self, timeout_s: float = 10.0) -> Dict[str, Any]:
        """The child's ingest ledger (offered/accepted/dropped_late/...)."""
        return self.request({"op": "stats"}, "stats", timeout_s)

    def drain(self, target_offered: int, timeout_s: float = 30.0) -> Dict[str, Any]:
        """Block until the child has ingested ``target_offered`` samples."""
        deadline = time.monotonic() + timeout_s
        while True:
            remote = self.stats(timeout_s=max(1.0, deadline - time.monotonic()))
            if int(remote["offered"]) >= target_offered:
                return remote
            if time.monotonic() > deadline:
                raise WorkerDied(
                    f"worker {self.shard_id} drain stalled at "
                    f"{remote['offered']}/{target_offered}"
                )

    def attach_query(
        self, qid: str, text: str, timeout_s: float = 10.0
    ) -> Dict[str, Any]:
        """Compile-and-attach a continuous query in the child.

        ``text`` must be fully bound (no ``$param`` placeholders — the
        router substitutes before shipping).  Returns the reply payload;
        a compile failure comes back with an ``error`` key rather than
        raising here, so callers decide the severity.
        """
        return self.request(
            {"op": "query_attach", "id": str(qid), "text": str(text)},
            "query_attached",
            timeout_s,
        )

    def detach_query(self, qid: str, timeout_s: float = 10.0) -> Dict[str, Any]:
        """Detach a previously attached continuous query (idempotent)."""
        return self.request(
            {"op": "query_detach", "id": str(qid)}, "query_detached", timeout_s
        )

    def snapshot_state(self, timeout_s: float = 30.0) -> Dict[str, Any]:
        """Fetch the child's full data-plane state (pickled blob).

        The child advances through the latest instant this handle has
        committed to (pushes and advances both carry the router clock)
        before capturing, so the snapshot is pinned to that ``now``.
        """
        reply = self.request(
            {"op": "snapshot", "now": self.last_now}, "snapshot", timeout_s
        )
        return pickle.loads(base64.b64decode(reply["blob"]))

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Graceful stop: shutdown op, ``bye`` reply, join."""
        if not self.link_down and self.is_alive():
            try:
                self.request({"op": "shutdown"}, "bye", timeout_s)
            except WorkerDied:
                pass
        self.process.join(timeout=timeout_s)

    def kill(self) -> None:
        """SIGKILL the worker (fault injection / last resort)."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=10.0)

    def close(self, timeout_s: float = 10.0) -> None:
        """Graceful shutdown, SIGKILL fallback, release every resource."""
        try:
            self.shutdown(timeout_s=timeout_s)
        finally:
            if self.process.is_alive():
                self.kill()
            try:
                self.sock.close()
            except OSError:
                pass
            if self.ring is not None:
                self.ring.close()
