"""The gscope client API (Section 4.4).

"Clients use the gscope client API to connect to a server ... Clients
asynchronously send BUFFER signal data in tuple format to the server."

A :class:`ScopeClient` wraps an endpoint and timestamps outgoing samples
with its local clock (remote machines have their own clocks; the
display-delay mechanism absorbs skew up to the configured delay).  Sends
are asynchronous: samples queue locally and drain through an I/O watch
when the transport is writable, keeping the application single-threaded
and non-blocking, as Section 4.3 prescribes.

Two wire modes (see :mod:`repro.net.protocol`):

* ``"binary"`` (default) — batches go out as binary columnar frames:
  one length-prefixed frame per :meth:`send_samples` call, the time and
  value columns as contiguous ``float64`` payloads with no per-sample
  strings.  Signal names are interned once per connection via
  ``NAME_DEF`` control frames.
* ``"text"`` — the paper's newline-delimited tuple lines, for servers
  and tools that only speak the textual format.

Control frames (the HELLO handshake and name definitions) live in a
separate queue that back-pressure never drops — dropping a ``NAME_DEF``
would orphan every later frame that references its id.  The data-frame
queue is bounded by ``max_queue``; overflow drops the oldest whole frame,
except a partially-transmitted head frame, which is never dropped (that
would cut the byte stream mid-frame and corrupt the connection).

Reconnect
---------

Given a ``connect`` factory, the client survives a dead connection: it
notices (a failed send, or an endpoint reporting itself/its peer closed
during a flush), tears down the watch, and retries ``connect()`` under
capped exponential backoff with seeded jitter.  On success it re-runs
the session preamble — HELLO plus every ``NAME_DEF`` already interned,
in id order, since the new server session has no memory of the old — and
resends the head data frame *from byte zero*.  That is safe precisely
because queued frames keep their full bytes until fully transmitted:
fully-sent frames were popped (at-most-once per connection), and a
half-sent head lands on a fresh session that never saw its first half.
Data queued while down obeys the same bounded-queue overflow rule, so a
long outage degrades exactly like slow-consumer backpressure: oldest
frames drop, counted, freshest data survives to be displayed.

Subscriptions
-------------

:meth:`ScopeClient.subscribe` joins the server's continuous-query plane
(see :mod:`repro.net.queryservice`): the query text plus bind-time
parameters go out as a ``QUERY`` frame, the server compiles and
evaluates once per *distinct compiled plan* across all its clients, and
the derived columns come back as ordinary NAME_DEF + SAMPLES frames on
this same connection.  Subscribing makes the client full-duplex — an IN
watch decodes the server→client stream into per-subscription buffers.
Subscriptions survive reconnects: the preamble re-issues every active
QUERY + SUBSCRIBE, and a per-output monotonic guard sheds any overlap
so the resumed derived stream never duplicates a sample the old session
already delivered.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.cells import Counter
from repro.eventloop.clock import Clock
from repro.eventloop.loop import MainLoop
from repro.eventloop.sources import IOCondition
from repro.net.protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    FrameDecoder,
    FrameKind,
    ProtocolError,
    encode_binary_samples,
    encode_hello,
    encode_name_def,
    encode_query,
    encode_sample,
    encode_samples,
)
from repro.net.transport import TransportClosed

ArrayLike = Union[Sequence[float], np.ndarray]

#: Client-side ledger counters, cell-backed so ``register_metrics`` can
#: mount them; ``totals()`` and the legacy attributes read the same cells.
_COUNTER_FIELDS = (
    "sent",
    "sent_frames",
    "bytes_sent",
    "dropped_samples",
    "dropped_frames",
    "reconnects",
)


def _cell_property(field: str) -> property:
    def _get(self):
        return self._cells[field].value

    def _set(self, value):
        self._cells[field].value = value

    return property(_get, _set)


class Subscription:
    """A client-side handle on one server-evaluated derived view.

    Created by :meth:`ScopeClient.subscribe`; derived batches arriving
    from the server accumulate in per-output column buffers (read them
    with :meth:`columns`, or drain as they arrive with :meth:`on_batch`
    callbacks).  The handle rides the client's reconnect path: after a
    session loss the QUERY + SUBSCRIBE preamble is re-issued
    automatically, and a per-output monotonic time guard drops any
    batch rows at-or-before the last delivered instant, so the resumed
    stream contains **no duplicated derived samples** (overlap is
    counted in :attr:`stale_dropped`, not silently eaten).
    """

    def __init__(self, client: "ScopeClient", qid: str, text: str, params, plan) -> None:
        self.client = client
        self.qid = qid
        self.text = text
        self.params = dict(params or {})
        self.plan = plan
        self.output_names = list(plan.output_names)
        self._outputs = set(self.output_names)
        self.active = True  # until unsubscribed or server-errored
        self.acked = False  # server confirmed compile
        self.subscribed = False  # server confirmed subscription
        self.error: Optional[str] = None
        self.received = 0
        self.stale_dropped = 0
        self.batches = 0
        self._buffers: Dict[str, List] = {name: [] for name in self.output_names}
        self._last_time: Dict[str, float] = {
            name: -np.inf for name in self.output_names
        }
        self._callbacks: List[Callable] = []

    def on_batch(self, fn: Callable[[str, np.ndarray, np.ndarray], None]) -> None:
        """Also deliver every derived batch to ``fn(name, times, values)``."""
        self._callbacks.append(fn)

    def wants(self, name: str) -> bool:
        return self.active and name in self._outputs

    def _deliver(self, name: str, times: np.ndarray, values: np.ndarray) -> None:
        last = self._last_time[name]
        if times.shape[0] and times[0] <= last:
            # Reconnect overlap: the fresh server evaluation re-derived
            # instants the old session already delivered.  Derived
            # emissions are monotone per output, so one searchsorted
            # finds the resume point.
            keep = int(np.searchsorted(times, last, side="right"))
            self.stale_dropped += keep
            times = times[keep:]
            values = values[keep:]
        if not times.shape[0]:
            return
        self._last_time[name] = float(times[-1])
        self.received += times.shape[0]
        self.batches += 1
        self._buffers[name].append((times, values))
        for fn in self._callbacks:
            fn(name, times, values)

    def columns(self, name: Optional[str] = None):
        """Concatenated ``(times, values)`` delivered for one output.

        ``name`` defaults to the single output of a one-output query.
        """
        if name is None:
            if len(self.output_names) != 1:
                raise ValueError(
                    f"query has {len(self.output_names)} outputs; name one of "
                    f"{self.output_names}"
                )
            name = self.output_names[0]
        parts = self._buffers[name]
        if not parts:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty.copy()
        times = np.concatenate([t for t, _ in parts])
        values = np.concatenate([v for _, v in parts])
        return times, values

    def clear(self) -> None:
        """Drop buffered columns (the monotonic guard keeps its state)."""
        for parts in self._buffers.values():
            parts.clear()

    def unsubscribe(self) -> None:
        """Stop the stream; the last subscriber detaches the evaluation."""
        if not self.active:
            return
        self.active = False
        self.client._unsubscribe(self)


class ScopeClient:
    """Pushes named samples to a remote scope server.

    Parameters
    ----------
    endpoint:
        A connected transport endpoint (memory or socket).
    loop:
        The client's main loop; its clock stamps outgoing samples and an
        I/O watch drains the send queue.
    max_queue:
        Bound on locally queued data frames.  When the transport
        back-pressures past this, the *oldest* frames drop — freshest
        data matters most on a live display, and the server would drop
        stale frames anyway.
    mode:
        Wire format: ``"binary"`` (columnar frames, the default) or
        ``"text"`` (tuple lines, the compatibility mode).
    connect:
        Optional zero-argument factory returning a fresh connected
        endpoint (or raising / returning None while the server is
        unreachable).  Providing it arms automatic reconnection; without
        it a dead connection simply stops draining the queue.
    backoff_base_ms / backoff_cap_ms:
        Reconnect backoff schedule: attempt ``k`` waits
        ``min(cap, base * 2**k)`` plus seeded jitter in ``[0, base)``,
        so a fleet of clients losing one server does not retry in
        lockstep.
    backoff_seed:
        Seed for the jitter stream — reconnect timing is replayable.
    wire_version:
        Binary protocol version to emit (default: the current
        :data:`~repro.net.protocol.PROTOCOL_VERSION`).  Pin ``1`` to
        talk to an old peer that predates checksummed frames — the
        version byte in every frame header is all the negotiation the
        protocol needs, at the cost of v1's blindness to payload
        corruption.
    """

    def __init__(
        self,
        endpoint,
        loop: MainLoop,
        max_queue: int = 4096,
        mode: str = "binary",
        connect: Optional[Callable[[], object]] = None,
        backoff_base_ms: float = 50.0,
        backoff_cap_ms: float = 5000.0,
        backoff_seed: int = 0,
        wire_version: int = PROTOCOL_VERSION,
    ) -> None:
        if max_queue <= 0:
            raise ValueError(f"max_queue must be positive: {max_queue}")
        if wire_version not in SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported wire_version {wire_version}; "
                f"supported: {sorted(SUPPORTED_VERSIONS)}"
            )
        self.wire_version = int(wire_version)
        if mode not in ("binary", "text"):
            raise ValueError(f"mode must be 'binary' or 'text': {mode!r}")
        if backoff_base_ms <= 0 or backoff_cap_ms < backoff_base_ms:
            raise ValueError(
                f"need 0 < base <= cap: base={backoff_base_ms}, cap={backoff_cap_ms}"
            )
        self.endpoint = endpoint
        self.loop = loop
        self.max_queue = max_queue
        self.mode = mode
        # Each queued data frame is [bytes, sample_count, sent_offset]:
        # batched sends put N samples into one frame (counters stay in
        # samples), and the full frame bytes are kept until the frame is
        # completely on the wire so a reconnect can resend from byte 0.
        self._pending: Deque[List] = deque()
        # Control frames (HELLO, NAME_DEF): flushed before data, never
        # dropped, bounded by the number of distinct signal names.
        self._control: Deque[bytes] = deque()
        self._name_ids: Dict[str, int] = {}
        self._hello_queued = False
        self._watch_id: Optional[int] = None
        self._connect = connect
        self._backoff_base = float(backoff_base_ms)
        self._backoff_cap = float(backoff_cap_ms)
        self._backoff_rng = random.Random(backoff_seed)
        self._attempts = 0
        self._retry_id: Optional[int] = None
        self._closed = False
        self._cells: Dict[str, Counter] = {k: Counter(k) for k in _COUNTER_FIELDS}
        # Subscription plane (armed by the first subscribe()): the
        # server→client stream needs its own decoder, name table and IN
        # watch; all three reset on reconnect (new session, new ids).
        self._subs: Dict[str, Subscription] = {}
        self._next_qid = 0
        self._rx: Optional[FrameDecoder] = None
        self._rx_names: Dict[int, str] = {}
        self._rx_watch_id: Optional[int] = None

    # Legacy counter attributes, now views over the ledger cells (one
    # source of truth shared with register_metrics / totals()).
    sent = _cell_property("sent")
    sent_frames = _cell_property("sent_frames")
    bytes_sent = _cell_property("bytes_sent")
    dropped_samples = _cell_property("dropped_samples")
    dropped_frames = _cell_property("dropped_frames")
    reconnects = _cell_property("reconnects")

    @property
    def clock(self) -> Clock:
        return self.loop.clock

    @property
    def dropped(self) -> int:
        """Samples shed by queue overflow (alias of ``dropped_samples``)."""
        return self.dropped_samples

    @property
    def _head_partial(self) -> bool:
        return bool(self._pending) and self._pending[0][2] > 0

    def _intern(self, name: str) -> int:
        """Intern a signal name, queueing its NAME_DEF on first use."""
        name_id = self._name_ids.get(name)
        if name_id is None:
            if not self._hello_queued:
                self._control.append(encode_hello(self.wire_version))
                self._hello_queued = True
            name_id = len(self._name_ids)
            self._name_ids[name] = name_id
            self._control.append(
                encode_name_def(name_id, name, version=self.wire_version)
            )
        return name_id

    def send_sample(
        self, name: str, value: float, time_ms: Optional[float] = None
    ) -> None:
        """Queue one sample for asynchronous transmission.

        ``time_ms`` defaults to the client clock's *now*, matching the
        paper's push-with-timestamp usage.
        """
        stamp = self.clock.now() if time_ms is None else float(time_ms)
        if self.mode == "binary":
            frame = encode_binary_samples(
                self._intern(name),
                (stamp,),
                (float(value),),
                version=self.wire_version,
            )
        else:
            frame = encode_sample(stamp, value, name)
        self._enqueue(frame, 1)

    def send_samples(
        self,
        name: str,
        values: ArrayLike,
        times: Optional[ArrayLike] = None,
    ) -> None:
        """Queue a batch of one signal's samples as a single wire frame.

        Accepts ndarrays directly — in binary mode the columns are
        serialised with ``tobytes`` and never touch per-sample Python
        objects.  ``times`` defaults to stamping every sample with the
        client clock's *now*.  Empty batches queue nothing (no queue
        slot, no writable-watch wakeup).
        """
        v = np.ascontiguousarray(values, dtype=np.float64)
        if v.ndim != 1:
            raise ValueError(f"values must be 1-D: shape {v.shape}")
        n = v.shape[0]
        if n == 0:
            return
        if times is None:
            t = np.full(n, self.clock.now(), dtype=np.float64)
        else:
            t = np.ascontiguousarray(times, dtype=np.float64)
            if t.shape != v.shape:
                raise ValueError(
                    f"times and values must be equal length: {t.shape} vs {v.shape}"
                )
        if self.mode == "binary":
            frame = encode_binary_samples(
                self._intern(name), t, v, version=self.wire_version
            )
        else:
            frame = encode_samples(t, v, name)
        if frame:
            self._enqueue(frame, n)

    def _enqueue(self, frame: bytes, nsamples: int) -> None:
        if len(self._pending) >= self.max_queue:
            # Drop the oldest *whole* frame.  A partially-sent head frame
            # must survive — truncating it mid-frame would desynchronise
            # the byte stream and the server would disconnect us.
            drop_at = 1 if self._head_partial else 0
            if drop_at < len(self._pending):
                if drop_at == 0:
                    _, dropped_count, _ = self._pending.popleft()
                else:
                    _, dropped_count, _ = self._pending[drop_at]
                    del self._pending[drop_at]
                self._cells["dropped_samples"].inc(dropped_count)
                self._cells["dropped_frames"].inc()
            # else: the only queued frame is mid-transmission; overshoot
            # the bound by one frame rather than corrupt the stream.
        self._pending.append([frame, nsamples, 0])
        self._ensure_watch()
        self._try_flush()

    def _ensure_watch(self) -> None:
        if (
            self._watch_id is None
            and self._retry_id is None
            and (self._pending or self._control)
        ):
            self._watch_id = self.loop.io_add_watch(
                self.endpoint, IOCondition.OUT, self._on_writable
            )

    def _on_writable(self, channel, condition) -> bool:
        self._try_flush()
        if self._watch_id is None:
            return False  # reconnect tore this watch down mid-dispatch
        if not self._pending and not self._control:
            self._watch_id = None
            return False  # drop the watch until there is data again
        return True

    # ------------------------------------------------------------------
    # Subscriptions (the continuous-query plane)
    # ------------------------------------------------------------------
    def subscribe(
        self,
        query: str,
        params: Optional[Dict[str, float]] = None,
        on_batch: Optional[Callable] = None,
    ) -> Subscription:
        """Subscribe to a server-evaluated derived view.

        ``query`` is ordinary query text, optionally with ``$name``
        placeholders bound by ``params`` (one template, many per-user
        instantiations).  The text is compiled locally first — a bad
        query fails *here*, synchronously, with the usual
        :class:`~repro.query.errors.QueryError` — then shipped to the
        server, which compiles the same bound text and shares the
        evaluation with every subscriber of the same canonical plan.
        Derived batches accumulate on the returned :class:`Subscription`
        as the loop runs.  Binary mode only.
        """
        if self.mode != "binary":
            raise ValueError("subscriptions require the binary wire mode")
        if self._closed:
            raise ValueError("client is closed")
        from repro.query import bind_params, compile_query

        plan = compile_query(bind_params(query, params))
        qid = f"q{self._next_qid}"
        self._next_qid += 1
        sub = Subscription(self, qid, query, params, plan)
        if on_batch is not None:
            sub.on_batch(on_batch)
        self._subs[qid] = sub
        if not self._hello_queued:
            self._control.append(encode_hello(self.wire_version))
            self._hello_queued = True
        self._control.append(self._query_preamble(sub))
        self._control.append(encode_query({"op": "subscribe", "id": qid}))
        self._ensure_rx_watch()
        self._ensure_watch()
        self._try_flush()
        return sub

    def _query_preamble(self, sub: Subscription) -> bytes:
        payload = {"op": "query", "id": sub.qid, "text": sub.text}
        if sub.params:
            payload["params"] = sub.params
        return encode_query(payload)

    def _unsubscribe(self, sub: Subscription) -> None:
        self._subs.pop(sub.qid, None)
        if self._closed:
            return
        self._control.append(encode_query({"op": "unsubscribe", "id": sub.qid}))
        self._ensure_watch()
        self._try_flush()

    @property
    def subscriptions(self) -> List[Subscription]:
        """Active subscriptions, in creation order."""
        return list(self._subs.values())

    def _ensure_rx_watch(self) -> None:
        if self._rx_watch_id is None and not self._closed:
            if self._rx is None:
                self._rx = FrameDecoder()
            self._rx_watch_id = self.loop.io_add_watch(
                self.endpoint, IOCondition.IN, self._on_readable
            )

    def _on_readable(self, channel, condition) -> bool:
        try:
            chunk = self.endpoint.recv()
        except (TransportClosed, OSError):
            self._rx_teardown()
            self._begin_reconnect()
            return False
        if not chunk:
            # Server session closed under us: a subscriber-only client
            # has no failing send to notice it, so the read path arms
            # the reconnect.
            self._rx_teardown()
            self._begin_reconnect()
            return False
        while True:
            try:
                frames = self._rx.feed(chunk)
            except ProtocolError:
                # Corrupt server→client stream: treat like a dead link.
                self._rx_teardown()
                self._begin_reconnect()
                return False
            for frame in frames:
                self._dispatch_rx(frame)
            if not self.endpoint.readable():
                return True
            chunk = self.endpoint.recv()
            if not chunk:
                self._rx_teardown()
                self._begin_reconnect()
                return False

    def _dispatch_rx(self, frame) -> None:
        if frame.kind is FrameKind.SAMPLES:
            name = self._rx_names.get(frame.name_id)
            if name is None:
                return  # not ours (or a stale id); never fatal client-side
            for sub in self._subs.values():
                if sub.wants(name):
                    sub._deliver(name, frame.times, frame.values)
        elif frame.kind is FrameKind.NAME_DEF:
            self._rx_names[frame.name_id] = frame.name
        elif frame.kind is FrameKind.QUERY:
            payload = frame.control or {}
            sub = self._subs.get(str(payload.get("id")))
            if sub is None:
                return
            op = payload.get("op")
            if op == "compiled":
                sub.acked = True
            elif op == "subscribed":
                sub.subscribed = True
            elif op == "error":
                sub.error = str(payload.get("error"))
                sub.active = False
                self._subs.pop(sub.qid, None)

    def _rx_teardown(self) -> None:
        """Reset the inbound stream state (dead or replaced session)."""
        if self._rx_watch_id is not None:
            self.loop.remove(self._rx_watch_id)
            self._rx_watch_id = None
        self._rx = FrameDecoder() if self._subs else None
        self._rx_names = {}
        for sub in self._subs.values():
            sub.subscribed = False

    # ------------------------------------------------------------------
    # Connection health / reconnect
    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        """True while the current endpoint looks usable."""
        return not (self._closed or self._link_down())

    @property
    def reconnecting(self) -> bool:
        """True while a reconnect attempt is scheduled."""
        return self._retry_id is not None

    def _link_down(self) -> bool:
        # getattr-based: test doubles and exotic transports need only
        # the Pollable surface, not the full endpoint state machine.
        return getattr(self.endpoint, "closed", False) or getattr(
            self.endpoint, "peer_closed", False
        )

    def _begin_reconnect(self) -> None:
        """Tear down the dead connection; arm the backoff timer if able."""
        if self._watch_id is not None:
            self.loop.remove(self._watch_id)
            self._watch_id = None
        if self._rx_watch_id is not None:
            self._rx_teardown()
        if not getattr(self.endpoint, "closed", True):
            self.endpoint.close()
        if self._connect is None or self._closed or self._retry_id is not None:
            return
        self._schedule_retry()

    def _schedule_retry(self) -> None:
        delay = min(self._backoff_cap, self._backoff_base * (2.0**self._attempts))
        delay += self._backoff_rng.random() * self._backoff_base
        self._retry_id = self.loop.timeout_add(delay, self._attempt_reconnect)

    def _attempt_reconnect(self, lost: int = 0) -> bool:
        self._retry_id = None
        if self._closed:
            return False
        assert self._connect is not None
        try:
            endpoint = self._connect()
        except (OSError, TransportClosed):
            endpoint = None
        if endpoint is None or getattr(endpoint, "closed", False):
            self._attempts += 1
            self._schedule_retry()
            return False
        self.endpoint = endpoint
        self._cells["reconnects"].inc()
        self._attempts = 0
        # The new server session has no memory of the old one: replay the
        # session preamble (HELLO + every interned NAME_DEF, in id order)
        # ahead of any queued data frame that references those ids.
        self._control.clear()
        if self._hello_queued:
            self._control.append(encode_hello(self.wire_version))
            for name, name_id in sorted(self._name_ids.items(), key=lambda kv: kv[1]):
                self._control.append(
                    encode_name_def(name_id, name, version=self.wire_version)
                )
        # Re-establish every active subscription: the fresh session
        # recompiles (sharing the same canonical plan server-side) and
        # resumes the derived stream; each Subscription's monotonic
        # guard sheds any overlap, so nothing is delivered twice.
        if self._subs:
            self._rx_teardown()  # fresh decoder + name table for the new session
            for sub in self._subs.values():
                self._control.append(self._query_preamble(sub))
                self._control.append(
                    encode_query({"op": "subscribe", "id": sub.qid})
                )
            self._ensure_rx_watch()
        # A half-sent head frame restarts from byte 0 — the fresh
        # session never saw its first half, and every fully-sent frame
        # was already popped, so nothing is duplicated.
        if self._pending:
            self._pending[0][2] = 0
        self._ensure_watch()
        self._try_flush()
        return False  # one-shot timer either way

    def _try_flush(self) -> None:
        if self._closed:
            return
        if self._link_down():
            self._begin_reconnect()
            return
        try:
            self._drain()
        except TransportClosed:
            self._begin_reconnect()

    def _drain(self) -> None:
        # Control frames flush before data — a NAME_DEF must precede the
        # first data frame referencing its id — EXCEPT while a data
        # frame is partially transmitted: its remaining bytes must go
        # out first, or the control bytes would land mid-frame and
        # desynchronise the stream.
        cells = self._cells
        while self.endpoint.writable():
            if self._control and not self._head_partial:
                buf = self._control[0]
                sent = self.endpoint.send(buf)
                cells["bytes_sent"].inc(sent)
                if sent < len(buf):
                    self._control[0] = buf[sent:]
                    return
                self._control.popleft()
                continue
            if not self._pending:
                return
            head = self._pending[0]
            frame, nsamples, offset = head
            sent = self.endpoint.send(frame[offset:])
            cells["bytes_sent"].inc(sent)
            offset += sent
            if offset < len(frame):
                # Partial write: remember how far we got, keep the full
                # frame bytes (a reconnect resends from byte 0).
                head[2] = offset
                return
            self._pending.popleft()
            cells["sent"].inc(nsamples)
            cells["sent_frames"].inc()

    @property
    def backlog(self) -> int:
        """Data frames queued locally, waiting for the transport."""
        return len(self._pending)

    def totals(self) -> Dict[str, int]:
        """Client-side ledger, mirroring ``ScopeServer.totals()``.

        ``sent + dropped_samples + backlog_samples`` accounts for every
        sample ever offered to :meth:`send_sample`/:meth:`send_samples`.
        """
        return {
            "sent": self._cells["sent"].value,
            "sent_frames": self._cells["sent_frames"].value,
            "dropped_samples": self._cells["dropped_samples"].value,
            "dropped_frames": self._cells["dropped_frames"].value,
            "backlog_frames": len(self._pending),
            "backlog_samples": sum(entry[1] for entry in self._pending),
            "reconnects": self._cells["reconnects"].value,
        }

    def register_metrics(self, registry, prefix: str = "client.") -> None:
        """Mount the ledger cells plus queue-depth gauges.

        The mounted cells ARE the ones behind :meth:`totals` and the
        legacy counter attributes — published ``__obs.`` samples can
        never disagree with the public accessors.
        """
        for key in _COUNTER_FIELDS:
            registry.mount(prefix + key, self._cells[key])
        registry.gauge(
            f"{prefix}backlog_frames", fn=lambda: float(len(self._pending))
        )
        registry.gauge(
            f"{prefix}backlog_samples",
            fn=lambda: float(sum(entry[1] for entry in self._pending)),
        )
        registry.gauge(
            f"{prefix}subscriptions", fn=lambda: float(len(self._subs))
        )

    def close(self) -> None:
        """Close for good: stop the watches, cancel any reconnect."""
        self._closed = True
        if self._watch_id is not None:
            self.loop.remove(self._watch_id)
            self._watch_id = None
        if self._rx_watch_id is not None:
            self.loop.remove(self._rx_watch_id)
            self._rx_watch_id = None
        if self._retry_id is not None:
            self.loop.remove(self._retry_id)
            self._retry_id = None
        for sub in list(self._subs.values()):
            sub.active = False
        self._subs.clear()
        self.endpoint.close()
