"""The gscope client API (Section 4.4).

"Clients use the gscope client API to connect to a server ... Clients
asynchronously send BUFFER signal data in tuple format to the server."

A :class:`ScopeClient` wraps an endpoint and timestamps outgoing samples
with its local clock (remote machines have their own clocks; the
display-delay mechanism absorbs skew up to the configured delay).  Sends
are asynchronous: samples queue locally and drain through an I/O watch
when the transport is writable, keeping the application single-threaded
and non-blocking, as Section 4.3 prescribes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.eventloop.clock import Clock
from repro.eventloop.loop import MainLoop
from repro.eventloop.sources import IOCondition
from repro.net.protocol import encode_sample


class ScopeClient:
    """Pushes named samples to a remote scope server.

    Parameters
    ----------
    endpoint:
        A connected transport endpoint (memory or socket).
    loop:
        The client's main loop; its clock stamps outgoing samples and an
        I/O watch drains the send queue.
    max_queue:
        Bound on locally queued frames.  When the transport back-pressures
        past this, the *oldest* frames drop — freshest data matters most
        on a live display, and the server would drop stale frames anyway.
    """

    def __init__(self, endpoint, loop: MainLoop, max_queue: int = 4096) -> None:
        if max_queue <= 0:
            raise ValueError(f"max_queue must be positive: {max_queue}")
        self.endpoint = endpoint
        self.loop = loop
        self.max_queue = max_queue
        self._pending: Deque[bytes] = deque()
        self._watch_id: Optional[int] = None
        self.sent = 0
        self.dropped = 0

    @property
    def clock(self) -> Clock:
        return self.loop.clock

    def send_sample(
        self, name: str, value: float, time_ms: Optional[float] = None
    ) -> None:
        """Queue one sample for asynchronous transmission.

        ``time_ms`` defaults to the client clock's *now*, matching the
        paper's push-with-timestamp usage.
        """
        stamp = self.clock.now() if time_ms is None else float(time_ms)
        frame = encode_sample(stamp, value, name)
        if len(self._pending) >= self.max_queue:
            self._pending.popleft()
            self.dropped += 1
        self._pending.append(frame)
        self._ensure_watch()
        self._try_flush()

    def _ensure_watch(self) -> None:
        if self._watch_id is None and self._pending:
            self._watch_id = self.loop.io_add_watch(
                self.endpoint, IOCondition.OUT, self._on_writable
            )

    def _on_writable(self, channel, condition) -> bool:
        self._try_flush()
        if not self._pending:
            self._watch_id = None
            return False  # drop the watch until there is data again
        return True

    def _try_flush(self) -> None:
        while self._pending and self.endpoint.writable():
            frame = self._pending[0]
            sent = self.endpoint.send(frame)
            if sent < len(frame):
                # Partial write: keep the unsent tail at the queue head.
                self._pending[0] = frame[sent:]
                break
            self._pending.popleft()
            self.sent += 1

    @property
    def backlog(self) -> int:
        """Frames queued locally, waiting for the transport."""
        return len(self._pending)

    def close(self) -> None:
        if self._watch_id is not None:
            self.loop.remove(self._watch_id)
            self._watch_id = None
        self.endpoint.close()
