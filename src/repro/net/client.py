"""The gscope client API (Section 4.4).

"Clients use the gscope client API to connect to a server ... Clients
asynchronously send BUFFER signal data in tuple format to the server."

A :class:`ScopeClient` wraps an endpoint and timestamps outgoing samples
with its local clock (remote machines have their own clocks; the
display-delay mechanism absorbs skew up to the configured delay).  Sends
are asynchronous: samples queue locally and drain through an I/O watch
when the transport is writable, keeping the application single-threaded
and non-blocking, as Section 4.3 prescribes.

Two wire modes (see :mod:`repro.net.protocol`):

* ``"binary"`` (default) — batches go out as binary columnar frames:
  one length-prefixed frame per :meth:`send_samples` call, the time and
  value columns as contiguous ``float64`` payloads with no per-sample
  strings.  Signal names are interned once per connection via
  ``NAME_DEF`` control frames.
* ``"text"`` — the paper's newline-delimited tuple lines, for servers
  and tools that only speak the textual format.

Control frames (the HELLO handshake and name definitions) live in a
separate queue that back-pressure never drops — dropping a ``NAME_DEF``
would orphan every later frame that references its id.  The data-frame
queue is bounded by ``max_queue``; overflow drops the oldest whole frame,
except a partially-transmitted head frame, which is never dropped (that
would cut the byte stream mid-frame and corrupt the connection).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.eventloop.clock import Clock
from repro.eventloop.loop import MainLoop
from repro.eventloop.sources import IOCondition
from repro.net.protocol import (
    encode_binary_samples,
    encode_hello,
    encode_name_def,
    encode_sample,
    encode_samples,
)

ArrayLike = Union[Sequence[float], np.ndarray]


class ScopeClient:
    """Pushes named samples to a remote scope server.

    Parameters
    ----------
    endpoint:
        A connected transport endpoint (memory or socket).
    loop:
        The client's main loop; its clock stamps outgoing samples and an
        I/O watch drains the send queue.
    max_queue:
        Bound on locally queued data frames.  When the transport
        back-pressures past this, the *oldest* frames drop — freshest
        data matters most on a live display, and the server would drop
        stale frames anyway.
    mode:
        Wire format: ``"binary"`` (columnar frames, the default) or
        ``"text"`` (tuple lines, the compatibility mode).
    """

    def __init__(
        self,
        endpoint,
        loop: MainLoop,
        max_queue: int = 4096,
        mode: str = "binary",
    ) -> None:
        if max_queue <= 0:
            raise ValueError(f"max_queue must be positive: {max_queue}")
        if mode not in ("binary", "text"):
            raise ValueError(f"mode must be 'binary' or 'text': {mode!r}")
        self.endpoint = endpoint
        self.loop = loop
        self.max_queue = max_queue
        self.mode = mode
        # Each queued data frame is (bytes, sample_count): batched sends
        # put N samples into one frame, and the counters stay in samples.
        self._pending: Deque[Tuple[bytes, int]] = deque()
        # Control frames (HELLO, NAME_DEF): flushed before data, never
        # dropped, bounded by the number of distinct signal names.
        self._control: Deque[bytes] = deque()
        self._head_partial = False  # head data frame partially transmitted
        self._name_ids: Dict[str, int] = {}
        self._hello_queued = False
        self._watch_id: Optional[int] = None
        self.sent = 0
        self.dropped = 0

    @property
    def clock(self) -> Clock:
        return self.loop.clock

    def _intern(self, name: str) -> int:
        """Intern a signal name, queueing its NAME_DEF on first use."""
        name_id = self._name_ids.get(name)
        if name_id is None:
            if not self._hello_queued:
                self._control.append(encode_hello())
                self._hello_queued = True
            name_id = len(self._name_ids)
            self._name_ids[name] = name_id
            self._control.append(encode_name_def(name_id, name))
        return name_id

    def send_sample(
        self, name: str, value: float, time_ms: Optional[float] = None
    ) -> None:
        """Queue one sample for asynchronous transmission.

        ``time_ms`` defaults to the client clock's *now*, matching the
        paper's push-with-timestamp usage.
        """
        stamp = self.clock.now() if time_ms is None else float(time_ms)
        if self.mode == "binary":
            frame = encode_binary_samples(self._intern(name), (stamp,), (float(value),))
        else:
            frame = encode_sample(stamp, value, name)
        self._enqueue(frame, 1)

    def send_samples(
        self,
        name: str,
        values: ArrayLike,
        times: Optional[ArrayLike] = None,
    ) -> None:
        """Queue a batch of one signal's samples as a single wire frame.

        Accepts ndarrays directly — in binary mode the columns are
        serialised with ``tobytes`` and never touch per-sample Python
        objects.  ``times`` defaults to stamping every sample with the
        client clock's *now*.  Empty batches queue nothing (no queue
        slot, no writable-watch wakeup).
        """
        v = np.ascontiguousarray(values, dtype=np.float64)
        if v.ndim != 1:
            raise ValueError(f"values must be 1-D: shape {v.shape}")
        n = v.shape[0]
        if n == 0:
            return
        if times is None:
            t = np.full(n, self.clock.now(), dtype=np.float64)
        else:
            t = np.ascontiguousarray(times, dtype=np.float64)
            if t.shape != v.shape:
                raise ValueError(
                    f"times and values must be equal length: {t.shape} vs {v.shape}"
                )
        if self.mode == "binary":
            frame = encode_binary_samples(self._intern(name), t, v)
        else:
            frame = encode_samples(t, v, name)
        if frame:
            self._enqueue(frame, n)

    def _enqueue(self, frame: bytes, nsamples: int) -> None:
        if len(self._pending) >= self.max_queue:
            # Drop the oldest *whole* frame.  A partially-sent head frame
            # must survive — truncating it mid-frame would desynchronise
            # the byte stream and the server would disconnect us.
            drop_at = 1 if self._head_partial else 0
            if drop_at < len(self._pending):
                if drop_at == 0:
                    _, dropped_count = self._pending.popleft()
                else:
                    _, dropped_count = self._pending[drop_at]
                    del self._pending[drop_at]
                self.dropped += dropped_count
            # else: the only queued frame is mid-transmission; overshoot
            # the bound by one frame rather than corrupt the stream.
        self._pending.append((frame, nsamples))
        self._ensure_watch()
        self._try_flush()

    def _ensure_watch(self) -> None:
        if self._watch_id is None and (self._pending or self._control):
            self._watch_id = self.loop.io_add_watch(
                self.endpoint, IOCondition.OUT, self._on_writable
            )

    def _on_writable(self, channel, condition) -> bool:
        self._try_flush()
        if not self._pending and not self._control:
            self._watch_id = None
            return False  # drop the watch until there is data again
        return True

    def _try_flush(self) -> None:
        # Control frames flush before data — a NAME_DEF must precede the
        # first data frame referencing its id — EXCEPT while a data
        # frame is partially transmitted: its remaining bytes must go
        # out first, or the control bytes would land mid-frame and
        # desynchronise the stream.
        while self.endpoint.writable():
            if self._control and not self._head_partial:
                buf = self._control[0]
                sent = self.endpoint.send(buf)
                if sent < len(buf):
                    self._control[0] = buf[sent:]
                    return
                self._control.popleft()
                continue
            if not self._pending:
                return
            frame, nsamples = self._pending[0]
            sent = self.endpoint.send(frame)
            if sent < len(frame):
                # Partial write: keep the unsent tail at the queue head.
                self._pending[0] = (frame[sent:], nsamples)
                self._head_partial = True
                return
            self._pending.popleft()
            self._head_partial = False
            self.sent += nsamples

    @property
    def backlog(self) -> int:
        """Data frames queued locally, waiting for the transport."""
        return len(self._pending)

    def close(self) -> None:
        if self._watch_id is not None:
            self.loop.remove(self._watch_id)
            self._watch_id = None
        self.endpoint.close()
