"""The gscope client API (Section 4.4).

"Clients use the gscope client API to connect to a server ... Clients
asynchronously send BUFFER signal data in tuple format to the server."

A :class:`ScopeClient` wraps an endpoint and timestamps outgoing samples
with its local clock (remote machines have their own clocks; the
display-delay mechanism absorbs skew up to the configured delay).  Sends
are asynchronous: samples queue locally and drain through an I/O watch
when the transport is writable, keeping the application single-threaded
and non-blocking, as Section 4.3 prescribes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence, Tuple

from repro.eventloop.clock import Clock
from repro.eventloop.loop import MainLoop
from repro.eventloop.sources import IOCondition
from repro.net.protocol import encode_sample, encode_samples


class ScopeClient:
    """Pushes named samples to a remote scope server.

    Parameters
    ----------
    endpoint:
        A connected transport endpoint (memory or socket).
    loop:
        The client's main loop; its clock stamps outgoing samples and an
        I/O watch drains the send queue.
    max_queue:
        Bound on locally queued frames.  When the transport back-pressures
        past this, the *oldest* frames drop — freshest data matters most
        on a live display, and the server would drop stale frames anyway.
    """

    def __init__(self, endpoint, loop: MainLoop, max_queue: int = 4096) -> None:
        if max_queue <= 0:
            raise ValueError(f"max_queue must be positive: {max_queue}")
        self.endpoint = endpoint
        self.loop = loop
        self.max_queue = max_queue
        # Each queued frame is (bytes, sample_count): batched sends put N
        # samples into one frame, and the counters stay in samples.
        self._pending: Deque[Tuple[bytes, int]] = deque()
        self._watch_id: Optional[int] = None
        self.sent = 0
        self.dropped = 0

    @property
    def clock(self) -> Clock:
        return self.loop.clock

    def send_sample(
        self, name: str, value: float, time_ms: Optional[float] = None
    ) -> None:
        """Queue one sample for asynchronous transmission.

        ``time_ms`` defaults to the client clock's *now*, matching the
        paper's push-with-timestamp usage.
        """
        stamp = self.clock.now() if time_ms is None else float(time_ms)
        self._enqueue(encode_sample(stamp, value, name), 1)

    def send_samples(
        self,
        name: str,
        values: Sequence[float],
        times: Optional[Sequence[float]] = None,
    ) -> None:
        """Queue a batch of one signal's samples as a single wire frame.

        ``times`` defaults to stamping every sample with the client
        clock's *now*.  One network round-trip (one queue entry, one
        ``send``) carries the whole batch; the server decodes it back
        into N ordinary tuples.
        """
        if times is None:
            times = [self.clock.now()] * len(values)
        frame = encode_samples(times, values, name)
        if frame:
            self._enqueue(frame, len(values))

    def _enqueue(self, frame: bytes, nsamples: int) -> None:
        if len(self._pending) >= self.max_queue:
            _, dropped_count = self._pending.popleft()
            self.dropped += dropped_count
        self._pending.append((frame, nsamples))
        self._ensure_watch()
        self._try_flush()

    def _ensure_watch(self) -> None:
        if self._watch_id is None and self._pending:
            self._watch_id = self.loop.io_add_watch(
                self.endpoint, IOCondition.OUT, self._on_writable
            )

    def _on_writable(self, channel, condition) -> bool:
        self._try_flush()
        if not self._pending:
            self._watch_id = None
            return False  # drop the watch until there is data again
        return True

    def _try_flush(self) -> None:
        while self._pending and self.endpoint.writable():
            frame, nsamples = self._pending[0]
            sent = self.endpoint.send(frame)
            if sent < len(frame):
                # Partial write: keep the unsent tail at the queue head.
                self._pending[0] = (frame[sent:], nsamples)
                break
            self._pending.popleft()
            self.sent += nsamples

    @property
    def backlog(self) -> int:
        """Frames queued locally, waiting for the transport."""
        return len(self._pending)

    def close(self) -> None:
        if self._watch_id is not None:
            self.loop.remove(self._watch_id)
            self._watch_id = None
        self.endpoint.close()
