"""Distributed gscope — the single-threaded I/O-driven client/server
library of Section 4.4.

Clients use :class:`~repro.net.client.ScopeClient` to connect to a
server built on :class:`~repro.net.server.ScopeServer`.  Clients
asynchronously send BUFFER signal data — by default as binary columnar
frames (contiguous ``float64`` time/value columns, names interned per
connection), with the paper's textual tuple format (Section 3.3) kept as
a negotiated compatibility mode.  The server receives from one or more
clients, buffers the samples and displays them on one or more scopes
after the user-specified delay.  Data arriving after its delay slot is
dropped immediately — the :class:`~repro.core.buffer.SampleBuffer`
enforces that rule.

Everything is single-threaded and event-driven: both ends attach
:class:`~repro.eventloop.sources.IOWatch` sources to the same main-loop
machinery that drives polling, exactly like the C library rides glib's
``GIOChannel`` watches.  Two transports are provided: an in-memory pair
(deterministic, virtual-clock friendly, can model network latency) and a
real non-blocking socket pair.  For fan-in beyond one scope registry,
:class:`~repro.net.shard.ShardedScopeManager` partitions the signal
namespace across per-shard managers by stable name hash — and its
multi-core counterpart :class:`~repro.net.shard.ProcessShardedScopeManager`
puts each shard in a worker *process* (see :mod:`repro.net.worker`),
supervised with WAL-backed respawn by
:class:`~repro.net.supervisor.ProcessShardSupervisor`.
"""

from repro.net.client import ScopeClient
from repro.net.faults import FaultPlan, FaultyLink, faulty_pair
from repro.net.protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    Frame,
    FrameDecoder,
    FrameKind,
    LineDecoder,
    ProtocolError,
    WireDecoder,
    decode_lines,
    encode_binary_samples,
    encode_control,
    encode_deliver,
    encode_hello,
    encode_name_def,
    encode_query,
    encode_sample,
    encode_samples,
)
from repro.net.client import Subscription
from repro.net.queryservice import QueryMultiplexer, SharedQuery
from repro.net.server import ClientState, ScopeServer
from repro.net.shard import (
    HashRing,
    ProcessShardedScopeManager,
    ShardStats,
    ShardedScopeManager,
    shard_of,
)
from repro.net.supervisor import (
    ProcessShardSupervisor,
    ShardDown,
    ShardHost,
    ShardState,
    ShardSupervisor,
    SupervisionStats,
)
from repro.net.worker import ShmRing, WorkerDied, WorkerHandle
from repro.net.transport import (
    LatencyLink,
    MemoryEndpoint,
    SocketEndpoint,
    memory_pair,
    socket_pair,
)

__all__ = [
    "ClientState",
    "FaultPlan",
    "FaultyLink",
    "Frame",
    "FrameDecoder",
    "FrameKind",
    "HashRing",
    "LatencyLink",
    "LineDecoder",
    "MemoryEndpoint",
    "PROTOCOL_VERSION",
    "ProcessShardSupervisor",
    "ProcessShardedScopeManager",
    "ProtocolError",
    "QueryMultiplexer",
    "SUPPORTED_VERSIONS",
    "ScopeClient",
    "ScopeServer",
    "SharedQuery",
    "Subscription",
    "ShardDown",
    "ShardHost",
    "ShardState",
    "ShardStats",
    "ShardSupervisor",
    "ShardedScopeManager",
    "ShmRing",
    "SocketEndpoint",
    "SupervisionStats",
    "WireDecoder",
    "WorkerDied",
    "WorkerHandle",
    "decode_lines",
    "encode_binary_samples",
    "encode_control",
    "encode_deliver",
    "encode_hello",
    "encode_name_def",
    "encode_query",
    "encode_sample",
    "encode_samples",
    "faulty_pair",
    "memory_pair",
    "shard_of",
    "socket_pair",
]
