"""Distributed gscope — the single-threaded I/O-driven client/server
library of Section 4.4.

Clients use :class:`~repro.net.client.ScopeClient` to connect to a
server built on :class:`~repro.net.server.ScopeServer`.  Clients
asynchronously send BUFFER signal data in the tuple format (Section 3.3);
the server receives from one or more clients, buffers the samples and
displays them on one or more scopes after the user-specified delay.
Data arriving after its delay slot is dropped immediately — the
:class:`~repro.core.buffer.SampleBuffer` enforces that rule.

Everything is single-threaded and event-driven: both ends attach
:class:`~repro.eventloop.sources.IOWatch` sources to the same main-loop
machinery that drives polling, exactly like the C library rides glib's
``GIOChannel`` watches.  Two transports are provided: an in-memory pair
(deterministic, virtual-clock friendly, can model network latency) and a
real non-blocking socket pair.
"""

from repro.net.client import ScopeClient
from repro.net.protocol import decode_lines, encode_sample
from repro.net.server import ScopeServer
from repro.net.transport import (
    LatencyLink,
    MemoryEndpoint,
    SocketEndpoint,
    memory_pair,
    socket_pair,
)

__all__ = [
    "LatencyLink",
    "MemoryEndpoint",
    "ScopeClient",
    "ScopeServer",
    "SocketEndpoint",
    "decode_lines",
    "encode_sample",
    "memory_pair",
    "socket_pair",
]
