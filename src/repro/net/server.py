"""The gscope server library (Section 4.4).

"The server receives data from one or more clients asynchronously and
buffers the data.  It then displays these BUFFER signals to one or more
scopes with a user-specified delay ... Data arriving at the server after
this delay is not buffered but dropped immediately."

A :class:`ScopeServer` owns a set of client connections (each an I/O
watch on the shared single-threaded main loop) and forwards decoded
samples into a scope manager — either a plain
:class:`~repro.core.manager.ScopeManager` or a
:class:`~repro.net.shard.ShardedScopeManager` — which fans each sample
out to every scope carrying a BUFFER signal of that name.  The late-drop
rule lives in :class:`~repro.core.buffer.SampleBuffer`; the server just
counts what was dropped so experiments can report it.

Each connection negotiates its wire mode from its first byte (see
:class:`~repro.net.protocol.WireDecoder`): binary columnar frames take
the hot path — chunk → header → ``np.frombuffer`` columns →
``manager.push_samples`` with zero per-tuple objects — while text tuple
lines keep the paper's compatibility path for old clients and
``recorded_signals.tuples`` replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.cells import Counter
from repro.core.manager import RESERVED_PREFIX
from repro.core.tuples import Tuple3, TupleFormatError
from repro.eventloop.loop import MainLoop
from repro.eventloop.sources import IOCondition
from repro.net.protocol import Frame, FrameKind, ProtocolError, WireDecoder
from repro.net.queryservice import QueryMultiplexer

try:  # optional self-instrumentation plane (absence changes no bytes)
    from repro.obs import trace as _trace
except ImportError:  # pragma: no cover - obs package absent
    _trace = None

#: Session disconnect reasons get one counter cell each, pre-created so
#: the instrument catalog is stable across runs.
_DISCONNECT_REASONS = ("eof", "protocol", "transport", "server")

#: Counter fields folded into the retained aggregate when a client
#: disconnects, so :meth:`ScopeServer.totals` stays accurate across
#: connection churn without keeping dead ClientState objects alive.
_COUNTER_FIELDS = (
    "received",
    "accepted",
    "dropped_late",
    "protocol_errors",
    "frames",
    "bytes_received",
)


@dataclass
class ClientState:
    """Per-connection session state."""

    endpoint: object
    wire: WireDecoder = field(default_factory=WireDecoder)
    watch_id: Optional[int] = None
    received: int = 0
    accepted: int = 0
    dropped_late: int = 0
    protocol_errors: int = 0
    frames: int = 0
    bytes_received: int = 0
    connected: bool = True
    #: Why the session ended (``None`` while connected): ``"eof"`` —
    #: orderly close from the peer; ``"protocol"`` — malformed stream;
    #: ``"transport"`` — the endpoint died underneath us; ``"server"`` —
    #: explicit server-side disconnect.
    disconnect_reason: Optional[str] = None
    peer_version: Optional[int] = None
    #: Binary name interning table: wire id → signal name.
    names: Dict[int, str] = field(default_factory=dict)

    @property
    def mode(self) -> Optional[str]:
        """Negotiated wire mode: ``"binary"``, ``"text"``, or None."""
        return self.wire.mode


class ScopeServer:
    """Receives sample streams and displays them on registered scopes.

    Parameters
    ----------
    loop:
        The shared single-threaded main loop.
    manager:
        Scope registry; samples are fanned out to every scope holding a
        BUFFER signal with the sample's name.  Anything exposing the
        manager protocol works — a plain :class:`ScopeManager` or a
        :class:`~repro.net.shard.ShardedScopeManager`.
    auto_create:
        When a sample names a signal no scope carries, create a BUFFER
        signal for it (on the first registered scope / the name's home
        shard) — convenient for exploratory monitoring; off by default
        because the paper's flow registers signals explicitly.
    max_drain_bytes:
        Per-wakeup receive budget: one readable dispatch drains up to
        this many bytes before yielding the loop, so one firehose client
        cannot starve the other sources.
    """

    def __init__(
        self,
        loop: MainLoop,
        manager,
        auto_create: bool = False,
        max_drain_bytes: int = 1 << 20,
    ) -> None:
        if max_drain_bytes <= 0:
            raise ValueError(f"max_drain_bytes must be positive: {max_drain_bytes}")
        self.loop = loop
        self.manager = manager
        self.auto_create = auto_create
        self.max_drain_bytes = max_drain_bytes
        self._clients: List[ClientState] = []
        # Aggregate counters of departed clients (see disconnect()).
        self._retired: Dict[str, int] = {k: 0 for k in _COUNTER_FIELDS}
        # Live aggregate cells: incremented at the same ingest sites as
        # the per-session ints, so cell value == live sum + retired at
        # every instant.  totals() is a view over these, and
        # register_metrics() mounts the very same cells — one source of
        # truth for accessors and the ``__obs.`` publisher alike.
        self._cells: Dict[str, Counter] = {k: Counter(k) for k in _COUNTER_FIELDS}
        self._reason_cells: Dict[str, Counter] = {
            r: Counter(f"disconnects.{r}") for r in _DISCONNECT_REASONS
        }
        self.retired_clients = 0
        #: Departed sessions bucketed by disconnect reason — the fault
        #: post-mortem ledger ("how many clients did we lose to torn
        #: streams vs orderly closes?").
        self.disconnect_reasons: Dict[str, int] = {}
        # Carried-name cache for _ensure_signal: names known to be
        # carried (or auto-created), invalidated on scope add/remove via
        # the manager's topology version.
        self._seen_names: set = set()
        self._seen_version: Optional[int] = None
        #: The continuous-query plane: compiled plans, shared
        #: evaluations, subscriber fan-out (see repro.net.queryservice).
        self.queries = QueryMultiplexer(loop, manager)

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    def add_client(self, endpoint) -> ClientState:
        """Register a connected client endpoint for asynchronous reads."""
        state = ClientState(endpoint=endpoint)
        state.watch_id = self.loop.io_add_watch(
            endpoint, IOCondition.IN, lambda ch, cond, s=state: self._on_readable(s)
        )
        self._clients.append(state)
        return state

    def disconnect(self, state: ClientState, reason: str = "server") -> None:
        """Drop a client, folding its counters into the retained totals.

        The ClientState is pruned from the live list — a long-running
        server with connection churn must not accumulate dead sessions —
        while :meth:`totals` keeps counting its traffic.  ``reason``
        (``"eof"``, ``"protocol"``, ``"transport"``, or the default
        explicit ``"server"``) is recorded on the state and tallied in
        :attr:`disconnect_reasons`, so post-fault accounting can tell an
        orderly goodbye from a torn stream.
        """
        if state.watch_id is not None:
            self.loop.remove(state.watch_id)
            state.watch_id = None
        # Refcounted detach of everything this client subscribed to —
        # the last subscriber leaving detaches the shared evaluation.
        self.queries.drop_session(state)
        state.connected = False
        if state.disconnect_reason is None:
            state.disconnect_reason = reason
        if hasattr(state.endpoint, "close"):
            state.endpoint.close()
        try:
            self._clients.remove(state)
        except ValueError:
            return  # already pruned (double disconnect)
        for key in _COUNTER_FIELDS:
            self._retired[key] += getattr(state, key)
        self.retired_clients += 1
        self.disconnect_reasons[state.disconnect_reason] = (
            self.disconnect_reasons.get(state.disconnect_reason, 0) + 1
        )
        reason_cell = self._reason_cells.get(state.disconnect_reason)
        if reason_cell is None:
            reason_cell = Counter(f"disconnects.{state.disconnect_reason}")
            self._reason_cells[state.disconnect_reason] = reason_cell
        reason_cell.inc()

    @property
    def clients(self) -> List[ClientState]:
        """Live (connected) client sessions."""
        return list(self._clients)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _on_readable(self, state: ClientState) -> bool:
        endpoint = state.endpoint
        try:
            chunk = endpoint.recv()
        except (OSError, ConnectionError):
            # The transport died underneath the watch (fault-injected
            # kill, reset socket): not the peer's goodbye, not a
            # protocol violation — its own bucket.
            self.disconnect(state, reason="transport")
            return False
        if not chunk:
            # Peer closed (socket semantics); drop the watch.
            self.disconnect(state, reason="eof")
            return False
        budget = self.max_drain_bytes
        cells = self._cells
        while True:
            state.bytes_received += len(chunk)
            cells["bytes_received"].inc(len(chunk))
            budget -= len(chunk)
            try:
                self._ingest_chunk(state, chunk)
            except (TupleFormatError, ProtocolError):
                # A malformed stream is a protocol violation: disconnect
                # rather than guess at framing.
                state.protocol_errors += 1
                cells["protocol_errors"].inc()
                self.disconnect(state, reason="protocol")
                return False
            # Drain what is already buffered before yielding the loop:
            # big columnar frames span many transport chunks and one
            # wakeup should consume them all (up to the byte budget).
            if budget <= 0 or not endpoint.readable():
                break
            chunk = endpoint.recv()
            if not chunk:
                self.disconnect(state, reason="eof")
                return False
        return True

    def _ingest_chunk(self, state: ClientState, chunk: bytes) -> None:
        tuples, frames = state.wire.feed(chunk)
        if tuples:
            self._ingest_tuples(state, tuples)
        for frame in frames:
            self._ingest_frame(state, frame)

    def _ingest_frame(self, state: ClientState, frame: Frame) -> None:
        """Binary hot path: decoded columns go straight to the manager."""
        state.frames += 1
        cells = self._cells
        cells["frames"].inc()
        if frame.kind is FrameKind.SAMPLES:
            name = state.names.get(frame.name_id)
            if name is None:
                raise ProtocolError(
                    f"SAMPLES frame references undefined name id {frame.name_id}"
                )
            if name.startswith(RESERVED_PREFIX):
                # Remote peers never publish internal telemetry; letting
                # the manager's ScopeError escape here would tear down
                # the loop dispatch, so the violation is classified at
                # the wire boundary and disconnects just this session.
                raise ProtocolError(
                    f"signal name {name!r} is reserved for server-side "
                    "self-instrumentation"
                )
            n = len(frame)
            state.received += n
            cells["received"].inc(n)
            self._ensure_signal(name)
            if _trace is not None and _trace._tracer is not None:
                with _trace.span("ingest", signal=name, n=n):
                    accepted = self.manager.push_samples(
                        name, frame.times, frame.values
                    )
            else:
                accepted = self.manager.push_samples(name, frame.times, frame.values)
            state.accepted += accepted
            state.dropped_late += n - accepted
            cells["accepted"].inc(accepted)
            cells["dropped_late"].inc(n - accepted)
        elif frame.kind is FrameKind.NAME_DEF:
            state.names[frame.name_id] = frame.name
        elif frame.kind is FrameKind.HELLO:
            state.peer_version = frame.version
        elif frame.kind is FrameKind.QUERY:
            # The continuous-query channel: compile/subscribe requests.
            # Compile failures reply in-band; malformed payloads raise
            # ProtocolError through the caller and disconnect.
            self.queries.handle(state, frame.control)
        else:
            # DELIVER/CONTROL belong to the router↔worker link (see
            # repro.net.worker); a client session sending them is
            # confused or hostile either way — disconnect it.
            raise ProtocolError(
                f"{frame.kind.name} frame is not valid on a client session"
            )

    def _ingest_tuples(self, state: ClientState, tuples: List[Tuple3]) -> None:
        """Text compatibility path: regroup per-name runs, push columns."""
        # Batch the decoded tuples into per-name runs so one manager call
        # (one columnar buffer append) carries a whole run — a batched
        # client frame of N samples costs one push, not N.
        state.received += len(tuples)
        cells = self._cells
        cells["received"].inc(len(tuples))
        i = 0
        total = len(tuples)
        while i < total:
            name = tuples[i].name if tuples[i].name is not None else "signal"
            j = i + 1
            while j < total and (
                tuples[j].name if tuples[j].name is not None else "signal"
            ) == name:
                j += 1
            if name.startswith(RESERVED_PREFIX):
                raise ProtocolError(
                    f"signal name {name!r} is reserved for server-side "
                    "self-instrumentation"
                )
            self._ensure_signal(name)
            times = [t.time_ms for t in tuples[i:j]]
            values = [t.value for t in tuples[i:j]]
            accepted = self.manager.push_samples(name, times, values)
            state.accepted += accepted
            state.dropped_late += (j - i) - accepted
            cells["accepted"].inc(accepted)
            cells["dropped_late"].inc((j - i) - accepted)
            i = j

    def _ensure_signal(self, name: str) -> None:
        if not self.auto_create:
            return
        version = self.manager.topology_version
        if version != self._seen_version:
            # A scope was added or removed since the cache was built;
            # carried-ness may have changed for any name.
            self._seen_names.clear()
            self._seen_version = version
        if name in self._seen_names:
            return
        if self.manager.carries(name):
            self._seen_names.add(name)
        elif self.manager.auto_create(name):
            # auto_create bumped nothing topological, but re-read the
            # version in case the manager counts signal registration.
            self._seen_version = self.manager.topology_version
            self._seen_names.add(name)
        # else: no scope to create on yet; retry once one is registered
        # (which bumps the topology version and clears the cache).

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def totals(self) -> Dict[str, int]:
        """Aggregate receive/accept/drop counters, live and departed.

        A view over the aggregate counter cells — the same cells
        :meth:`register_metrics` mounts — which the ingest path keeps
        equal to (live session sums + retired fold) at every instant.
        """
        return {key: self._cells[key].value for key in _COUNTER_FIELDS}

    def register_metrics(self, registry, prefix: str = "server.") -> None:
        """Mount the server's session/ingest counters into ``registry``.

        Cells: the six :meth:`totals` counters, one disconnect counter
        per reason (``<prefix>disconnects.<reason>``), and gauges for
        live/departed session counts.
        """
        for key in _COUNTER_FIELDS:
            registry.mount(prefix + key, self._cells[key])
        for reason in sorted(self._reason_cells):
            registry.mount(
                f"{prefix}disconnects.{reason}", self._reason_cells[reason]
            )
        registry.gauge(f"{prefix}sessions", fn=lambda: float(len(self._clients)))
        registry.gauge(
            f"{prefix}retired_sessions", fn=lambda: float(self.retired_clients)
        )
        self.queries.register_metrics(registry, prefix=f"{prefix}queries.")
