"""The gscope server library (Section 4.4).

"The server receives data from one or more clients asynchronously and
buffers the data.  It then displays these BUFFER signals to one or more
scopes with a user-specified delay ... Data arriving at the server after
this delay is not buffered but dropped immediately."

A :class:`ScopeServer` owns a set of client connections (each an I/O
watch on the shared single-threaded main loop) and forwards decoded
tuples into a :class:`~repro.core.manager.ScopeManager`, which fans each
sample out to every scope carrying a BUFFER signal of that name.  The
late-drop rule lives in :class:`~repro.core.buffer.SampleBuffer`; the
server just counts what was dropped so experiments can report it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.manager import ScopeManager
from repro.core.signal import SignalSpec, SignalType
from repro.core.tuples import TupleFormatError
from repro.eventloop.loop import MainLoop
from repro.eventloop.sources import IOCondition
from repro.net.protocol import LineDecoder, decode_lines


@dataclass
class ClientState:
    """Per-connection bookkeeping."""

    endpoint: object
    decoder: LineDecoder = field(default_factory=LineDecoder)
    watch_id: Optional[int] = None
    received: int = 0
    accepted: int = 0
    dropped_late: int = 0
    protocol_errors: int = 0
    connected: bool = True


class ScopeServer:
    """Receives tuple streams and displays them on registered scopes.

    Parameters
    ----------
    loop:
        The shared single-threaded main loop.
    manager:
        Scope registry; samples are fanned out to every scope holding a
        BUFFER signal with the sample's name.
    auto_create:
        When a tuple names a signal no scope carries, create a BUFFER
        signal for it on the first registered scope — convenient for
        exploratory monitoring; off by default because the paper's flow
        registers signals explicitly.
    """

    def __init__(
        self,
        loop: MainLoop,
        manager: ScopeManager,
        auto_create: bool = False,
    ) -> None:
        self.loop = loop
        self.manager = manager
        self.auto_create = auto_create
        self._clients: List[ClientState] = []

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    def add_client(self, endpoint) -> ClientState:
        """Register a connected client endpoint for asynchronous reads."""
        state = ClientState(endpoint=endpoint)
        state.watch_id = self.loop.io_add_watch(
            endpoint, IOCondition.IN, lambda ch, cond, s=state: self._on_readable(s)
        )
        self._clients.append(state)
        return state

    def disconnect(self, state: ClientState) -> None:
        if state.watch_id is not None:
            self.loop.remove(state.watch_id)
            state.watch_id = None
        state.connected = False
        if hasattr(state.endpoint, "close"):
            state.endpoint.close()

    @property
    def clients(self) -> List[ClientState]:
        return list(self._clients)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _on_readable(self, state: ClientState) -> bool:
        chunk = state.endpoint.recv()
        if not chunk:
            # Peer closed (socket semantics); drop the watch.
            self.disconnect(state)
            return False
        try:
            tuples, state.decoder = decode_lines(chunk, state.decoder)
        except TupleFormatError:
            # A malformed stream is a protocol violation: disconnect
            # rather than guess at framing.
            state.protocol_errors += 1
            self.disconnect(state)
            return False
        # Batch the decoded tuples into per-name runs so one manager call
        # (one columnar buffer append) carries a whole run — a batched
        # client frame of N samples costs one push, not N.
        state.received += len(tuples)
        i = 0
        total = len(tuples)
        while i < total:
            name = tuples[i].name if tuples[i].name is not None else "signal"
            j = i + 1
            while j < total and (
                tuples[j].name if tuples[j].name is not None else "signal"
            ) == name:
                j += 1
            self._ensure_signal(name)
            times = [t.time_ms for t in tuples[i:j]]
            values = [t.value for t in tuples[i:j]]
            accepted = self.manager.push_samples(name, times, values)
            state.accepted += accepted
            state.dropped_late += (j - i) - accepted
            i = j
        return True

    def _ensure_signal(self, name: str) -> None:
        if not self.auto_create:
            return
        carried = any(name in scope for scope in self.manager.scopes)
        if not carried and self.manager.scopes:
            self.manager.scopes[0].signal_new(
                SignalSpec(name=name, type=SignalType.BUFFER)
            )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def totals(self) -> Dict[str, int]:
        """Aggregate receive/accept/drop counters across all clients."""
        out = {"received": 0, "accepted": 0, "dropped_late": 0, "protocol_errors": 0}
        for c in self._clients:
            out["received"] += c.received
            out["accepted"] += c.accepted
            out["dropped_late"] += c.dropped_late
            out["protocol_errors"] += c.protocol_errors
        return out
