"""Shard supervision: heartbeat failure detection and replay catch-up.

The fault-tolerance story for the sharded telemetry plane.  Each shard's
:class:`~repro.core.manager.ScopeManager` runs inside a
:class:`ShardHost` on a *private* main loop (its own virtual clock), and
a :class:`ShardSupervisor` on the router loop:

* **writes ahead** — every offered push is recorded to the shard's
  :class:`~repro.capture.writer.CaptureWriter` (a per-shard write-ahead
  log) *before* delivery, so samples sent into the void during an
  undetected crash window are never lost, only deferred;
* **detects** — each host beats a heartbeat timer on its private loop;
  a monitor timer on the router loop advances every RUNNING host's loop
  and compares beat counts.  A host whose beats freeze for
  ``miss_threshold`` consecutive monitor ticks (wedged), or that has
  explicitly crashed (fault injection, or an exception quarantined
  during ingest), is declared dead;
* **restarts** — a fresh host is built by the same ``scope_factory``,
  and its entire history is re-driven from the WAL by a
  :class:`~repro.capture.replay.ReplaySource` on the fresh private loop
  from t=0 through the router's current instant.

Byte-identical recovery
-----------------------

The restarted shard is not approximately recovered — its traces,
filtered columns, aggregates and every Section 4.4 accept/late-drop
decision are *byte-identical* to a shard that never failed.  The
argument:

1. A live delivery advances the private loop *through* the router
   instant (:meth:`~repro.eventloop.loop.MainLoop.run_through`) and then
   pushes, so every source due at or before the push instant has
   dispatched first, and the manager reads a clock equal to the router
   clock.
2. The WAL records exactly the offered columns and their push instants
   (the same contract the capture equivalence suite already proves
   replayable bit-for-bit).
3. On restart the :class:`~repro.capture.replay.ReplaySource` re-pushes
   each batch at its recorded instant on the fresh loop.  The source is
   created after the host's own timers, so at any shared instant the
   poll/heartbeat timers dispatch before the replayed push — the same
   (priority, id) order the live path produced in (1).

A *stall* that clears before detection never restarts: deliveries
accumulate in the host's inbox and drain in order at their recorded
instants on :meth:`ShardHost.resume` — the same interleaving again.

Caveat: byte-identity covers signals registered by the
``scope_factory``.  Signals *auto-created* by the server on first
arrival are not re-created by replay (signal registration is not in the
WAL); they resume on their next live arrival instead.
"""

from __future__ import annotations

import enum
import os
import pickle
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Union

import numpy as np

from repro.capture.reader import CaptureReader
from repro.capture.replay import ReplaySource
from repro.capture.writer import CaptureWriter
from repro.core.manager import RESERVED_PREFIX, ScopeManager
from repro.core.scope import ScopeError
from repro.eventloop.loop import MainLoop
from repro.net.shard import DEFAULT_REPLICAS, HashRing, ShardStats

__all__ = [
    "ProcessShardSupervisor",
    "ShardDown",
    "ShardHost",
    "ShardState",
    "ShardSupervisor",
    "SupervisionStats",
]

#: Builds one shard's scopes/signals on a fresh manager.  Called with
#: ``(manager, shard_id)`` at host construction *and again at every
#: restart* — it must be deterministic, and it should start polling
#: (replay re-drives the polls).
ScopeFactory = Callable[[ScopeManager, int], None]


class ShardState(enum.Enum):
    RUNNING = "running"
    STALLED = "stalled"
    CRASHED = "crashed"


class ShardDown(RuntimeError):
    """Raised when delivering to a crashed shard host."""


class SupervisionStats(ShardStats):
    """:class:`~repro.net.shard.ShardStats` plus failover counters.

    ``lost_deliveries`` counts pushes that hit a crashed host
    (WAL-covered); ``replayed_samples`` counts samples re-driven by
    restart catch-up.  ``last_restart_at`` is a timestamp, not a
    counter (excluded from ``as_dict``/``fold``).
    """

    COUNTER_FIELDS = ShardStats.COUNTER_FIELDS + (
        "restarts",
        "missed_beats",
        "lost_deliveries",
        "replayed_samples",
    )
    SCALAR_FIELDS = ("last_restart_at",)


@dataclass
class _Delivery:
    """One push parked in a stalled host's inbox."""

    now: float
    name: str
    times: np.ndarray
    values: np.ndarray


class _HostTarget:
    """Replay adapter: ReplaySource pushes land as host ingests.

    Routing the replayed batches through :meth:`ShardHost.ingest` (not
    the bare manager) rebuilds the shard's offered/accepted/late-drop
    counters exactly as the live traffic built them.
    """

    def __init__(self, host: "ShardHost") -> None:
        self.host = host

    def push_samples(self, name: str, times, values) -> int:
        return self.host.ingest(name, times, values)


class ShardHost:
    """One shard's manager on a private loop, with a heartbeat.

    The host is the supervision unit: it can be stalled (deliveries
    park in an inbox; the private loop — and with it the heartbeat —
    stops advancing), crashed (deliveries raise :class:`ShardDown`), and
    resumed.  The supervisor detects the first two through the beat
    counter and replaces the host wholesale; a stall that clears first
    drains its inbox in recorded order and never diverges.
    """

    def __init__(
        self,
        shard_id: int,
        scope_factory: Optional[ScopeFactory] = None,
        heartbeat_ms: float = 50.0,
        stats: Optional[SupervisionStats] = None,
    ) -> None:
        if heartbeat_ms <= 0:
            raise ValueError(f"heartbeat_ms must be positive: {heartbeat_ms}")
        self.shard_id = shard_id
        self.heartbeat_ms = float(heartbeat_ms)
        self.loop = MainLoop()  # private loop, private virtual clock at 0
        self.beats = 0
        # The heartbeat attaches before the factory's poll timers and
        # before any ReplaySource, so its dispatch order relative to
        # them is the same on the original host and on every restart.
        self._beat_id = self.loop.timeout_add(self.heartbeat_ms, self._beat)
        self.manager = ScopeManager(self.loop)
        if scope_factory is not None:
            scope_factory(self.manager, shard_id)
        self.state = ShardState.RUNNING
        self.stats = stats if stats is not None else SupervisionStats()
        self._inbox: Deque[_Delivery] = deque()
        self.crash_error: Optional[BaseException] = None

    def _beat(self, lost: int = 0) -> bool:
        self.beats += 1
        return True

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def ingest(self, name: str, times, values) -> int:
        """Push at the current private-loop instant, with accounting.

        An exception out of the manager quarantines the host (state →
        CRASHED, error retained) and surfaces as :class:`ShardDown`: a
        poisoned batch must not wedge the router loop, and the WAL-based
        restart gets a chance to re-run history without it being
        re-offered live.

        Ingest is a *trusted* delivery edge (everything reaching it was
        validated at the router/server boundary): reserved ``__obs.``
        columns — live from a publisher upstream, or re-driven from the
        WAL during restart catch-up — enter through ``push_obs`` and
        deliver like any other signal.
        """
        try:
            if name.startswith(RESERVED_PREFIX):
                accepted = self.manager.push_obs(name, times, values)
            else:
                accepted = self.manager.push_samples(name, times, values)
        except Exception as exc:
            self.crash(exc)
            raise ShardDown(
                f"shard {self.shard_id} ingest raised: {exc!r}"
            ) from exc
        n = len(times)
        self.stats.offered += n
        self.stats.accepted += accepted
        self.stats.dropped_late += n - accepted
        return accepted

    def deliver(self, now: float, name: str, times, values) -> int:
        """Deliver one routed push at router instant ``now``.

        RUNNING: advance the private loop through ``now`` (polls and
        heartbeats due at or before it dispatch first) and ingest.
        STALLED: park a copy in the inbox — acceptance unknown, report 0
        for now; :meth:`resume` settles the truth.  CRASHED: raise
        :class:`ShardDown` (the caller's WAL already holds the batch).
        """
        if self.state is ShardState.CRASHED:
            raise ShardDown(f"shard {self.shard_id} is down")
        if self.state is ShardState.STALLED:
            self._inbox.append(
                _Delivery(
                    float(now),
                    name,
                    np.array(times, dtype=np.float64, copy=True),
                    np.array(values, dtype=np.float64, copy=True),
                )
            )
            return 0
        self.loop.run_through(now)
        return self.ingest(name, times, values)

    def advance(self, now: float) -> None:
        """Advance the private loop to the router instant (monitor tick).

        Only a RUNNING host advances — that is precisely what makes a
        stalled or crashed host's heartbeat freeze and the failure
        detectable.
        """
        if self.state is ShardState.RUNNING:
            self.loop.run_through(now)

    # ------------------------------------------------------------------
    # Fault injection / recovery hooks
    # ------------------------------------------------------------------
    def stall(self) -> None:
        """Wedge the host: deliveries park, the heartbeat freezes."""
        if self.state is ShardState.RUNNING:
            self.state = ShardState.STALLED

    def resume(self) -> None:
        """Clear a stall, draining parked deliveries in recorded order.

        Each entry replays at its recorded router instant — the loop
        runs through it first, exactly as the live path would have — so
        a survived stall is byte-identical to no stall at all.
        """
        if self.state is not ShardState.STALLED:
            return
        self.state = ShardState.RUNNING
        while self._inbox:
            entry = self._inbox.popleft()
            self.loop.run_through(entry.now)
            self.ingest(entry.name, entry.times, entry.values)

    def crash(self, error: Optional[BaseException] = None) -> None:
        """Kill the host: inbox lost (WAL-covered), deliveries refused."""
        self.state = ShardState.CRASHED
        self.crash_error = error
        self._inbox.clear()


class ShardSupervisor:
    """Routes pushes to supervised shard hosts; detects and heals faults.

    Satisfies the manager protocol a
    :class:`~repro.net.server.ScopeServer` consumes (``push_samples``,
    ``carries``, ``auto_create``, ``topology_version``), so it slots in
    wherever a :class:`~repro.net.shard.ShardedScopeManager` does —
    routing on the same consistent-hash ring — while adding the WAL,
    the heartbeat monitor and replay-catch-up restart.

    Parameters
    ----------
    loop:
        The *router* loop — the one the server, clients and monitor
        share.  Its clock stamps WAL push instants.
    wal_root:
        Directory for the per-shard write-ahead logs
        (``wal_root/shard-NN/``).
    shards:
        Number of shard hosts (ids ``0..shards-1``; ids survive
        restarts, so ring routing never changes under failover).
    scope_factory:
        Deterministic builder ``(manager, shard_id) -> None`` run at
        construction and at every restart.  It should register signals
        and start polling.
    heartbeat_ms / monitor_interval_ms / miss_threshold:
        Failure-detection knobs.  The monitor interval defaults to the
        heartbeat interval and must not be shorter (a healthy host
        advances at least one beat per tick); a host whose beats freeze
        for ``miss_threshold`` consecutive ticks restarts.  Detection
        latency is therefore bounded by
        ``(miss_threshold + 1) * monitor_interval_ms``.
    segment_samples:
        WAL segment flush threshold (smaller = more, smaller segments).
    """

    def __init__(
        self,
        loop: MainLoop,
        wal_root: Union[str, Path],
        shards: int = 4,
        scope_factory: Optional[ScopeFactory] = None,
        heartbeat_ms: float = 50.0,
        monitor_interval_ms: Optional[float] = None,
        miss_threshold: int = 3,
        replicas: int = DEFAULT_REPLICAS,
        segment_samples: int = 1 << 12,
        auto_start: bool = True,
        rotate_on_restart: bool = False,
    ) -> None:
        if shards <= 0:
            raise ValueError(f"shards must be positive: {shards}")
        if miss_threshold <= 0:
            raise ValueError(f"miss_threshold must be positive: {miss_threshold}")
        interval = heartbeat_ms if monitor_interval_ms is None else monitor_interval_ms
        if interval < heartbeat_ms:
            raise ValueError(
                "monitor interval shorter than the heartbeat would declare "
                f"healthy hosts dead: {interval} < {heartbeat_ms}"
            )
        self.loop = loop
        self.wal_root = Path(wal_root)
        self.scope_factory = scope_factory
        self.heartbeat_ms = float(heartbeat_ms)
        self.monitor_interval_ms = float(interval)
        self.miss_threshold = int(miss_threshold)
        self.segment_samples = int(segment_samples)
        self.rotate_on_restart = bool(rotate_on_restart)
        self._ring = HashRing(range(shards), replicas=replicas)
        self._route_cache: Dict[str, int] = {}
        self._hosts: Dict[int, ShardHost] = {}
        self._wals: Dict[int, CaptureWriter] = {}
        for shard_id in range(shards):
            self._hosts[shard_id] = ShardHost(
                shard_id, scope_factory, self.heartbeat_ms
            )
            self._wals[shard_id] = CaptureWriter(
                self.wal_root / f"shard-{shard_id:02d}",
                segment_samples=self.segment_samples,
            )
        self._beats_seen: Dict[int, int] = {i: 0 for i in self._hosts}
        self._frozen_ticks: Dict[int, int] = {i: 0 for i in self._hosts}
        self._monitor_id: Optional[int] = None
        self._restart_epoch = 0  # bumps topology_version on every restart
        #: Replaced hosts, retained for post-mortem (crash_error, stats).
        self.quarantined: List[ShardHost] = []
        self._metrics_registry = None
        self._metrics_prefix = "shard"
        if auto_start:
            self.start()

    # ------------------------------------------------------------------
    # Self-instrumentation
    # ------------------------------------------------------------------
    def register_metrics(self, registry, prefix: str = "shard") -> None:
        """Mount every host's supervision counters into ``registry``.

        Cells land as ``<prefix><shard_id>.<field>`` (e.g.
        ``shard0.dropped_late``).  A restart replaces the host — and with
        it the stats cells — so the supervisor remembers the registry
        and re-mounts the fresh cells in :meth:`restart_shard`.
        """
        self._metrics_registry = registry
        self._metrics_prefix = prefix
        for shard_id in sorted(self._hosts):
            self._hosts[shard_id].stats.register_metrics(
                registry, f"{prefix}{shard_id}."
            )

    # ------------------------------------------------------------------
    # Monitor lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the heartbeat monitor on the router loop."""
        if self._monitor_id is None:
            self._monitor_id = self.loop.timeout_add(
                self.monitor_interval_ms, self._monitor
            )

    def stop(self) -> None:
        """Disarm the monitor (faults go undetected while stopped)."""
        if self._monitor_id is not None:
            self.loop.remove(self._monitor_id)
            self._monitor_id = None

    @property
    def monitoring(self) -> bool:
        return self._monitor_id is not None

    def _monitor(self, lost: int = 0) -> bool:
        now = self.loop.clock.now()
        for shard_id in sorted(self._hosts):
            host = self._hosts[shard_id]
            if host.state is ShardState.CRASHED:
                # Explicit crash (injection or ingest quarantine):
                # no need to wait out missed beats.
                self.restart_shard(shard_id)
                continue
            host.advance(now)
            if host.beats == self._beats_seen[shard_id]:
                host.stats.missed_beats += 1
                self._frozen_ticks[shard_id] += 1
                if self._frozen_ticks[shard_id] >= self.miss_threshold:
                    self.restart_shard(shard_id)
            else:
                self._beats_seen[shard_id] = host.beats
                self._frozen_ticks[shard_id] = 0
        return True

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def restart_shard(self, shard_id: int) -> ShardHost:
        """Replace a dead host and catch it up from the WAL.

        The fresh host is built by the same factory on a fresh private
        loop at t=0; the WAL (flushed first; a torn tail from a real
        process kill is skipped by ``recover_tail``) replays through the
        router's current instant via an exact-timeline
        :class:`~repro.capture.replay.ReplaySource`.  Per the module
        argument, the result is byte-identical to a host that never
        died.  The replaced host moves to :attr:`quarantined`.
        """
        old = self._hosts[shard_id]
        wal = self._wals[shard_id]
        wal.flush_segment()
        now = self.loop.clock.now()
        stats = SupervisionStats(
            tap_bytes=old.stats.tap_bytes,
            wal_bytes=old.stats.wal_bytes,
            restarts=old.stats.restarts + 1,
            missed_beats=old.stats.missed_beats,
            lost_deliveries=old.stats.lost_deliveries,
            last_restart_at=now,
        )
        host = ShardHost(shard_id, self.scope_factory, self.heartbeat_ms, stats=stats)
        state_path = self.state_path(shard_id)
        if state_path.exists():
            # A rotation snapshot holds everything up to its instant:
            # dry-advance the fresh host there (its timers reproduce the
            # polls and beats deterministically), load the captured
            # data-plane state over it, and let the remaining (post-
            # rotation) segments replay only the suffix.
            with open(state_path, "rb") as fh:
                snap = pickle.load(fh)
            host.loop.run_through(float(snap["now"]))
            host.manager.load_state(snap["manager"])
            stats.offered = int(snap["stats"]["offered"])
            stats.accepted = int(snap["stats"]["accepted"])
            stats.dropped_late = int(snap["stats"]["dropped_late"])
        if wal.segments_written:
            reader = CaptureReader(wal.path, recover_tail=True)
            source = ReplaySource(reader, _HostTarget(host))
            host.loop.attach(source)
            host.loop.run_through(now)
            stats.replayed_samples = source.delivered_samples
        else:
            host.loop.run_through(now)
        self._hosts[shard_id] = host
        self._beats_seen[shard_id] = host.beats
        self._frozen_ticks[shard_id] = 0
        self._restart_epoch += 1
        self.quarantined.append(old)
        if self._metrics_registry is not None:
            # The fresh host carries fresh cells; swap them in under the
            # same names so the registry keeps reading live truth.
            mount_prefix = f"{self._metrics_prefix}{shard_id}."
            self._metrics_registry.unmount_prefix(mount_prefix)
            host.stats.register_metrics(self._metrics_registry, mount_prefix)
        if self.rotate_on_restart:
            # The fresh host embodies the full WAL history; snapshot it
            # and retire the replayed segments immediately.
            self.snapshot_shard(shard_id)
        return host

    # ------------------------------------------------------------------
    # Snapshot + WAL rotation
    # ------------------------------------------------------------------
    def state_path(self, shard_id: int) -> Path:
        """Snapshot file for one shard (sibling of its WAL directory)."""
        return self.wal_root / f"shard-{shard_id:02d}.state"

    def snapshot_shard(self, shard_id: int) -> dict:
        """Snapshot a RUNNING shard's data plane and retire its WAL.

        The host advances through the router's current instant (so the
        state is pinned to *now*), its full data-plane state and ingest
        ledger are written atomically to :meth:`state_path`, and every
        WAL segment — all fully represented by the snapshot — is
        deleted, with a fresh writer continuing in the same directory.
        Recovery becomes ``snapshot + suffix replay`` instead of
        ``replay from t=0``, and WAL disk stays bounded by the snapshot
        cadence instead of growing with history.

        Only a RUNNING host may snapshot: a stalled host's parked inbox
        (and a crashed host's lost one) holds WAL'd-but-unapplied
        deliveries the state capture would silently drop.
        """
        host = self._hosts[shard_id]
        if host.state is not ShardState.RUNNING:
            raise ShardDown(
                f"shard {shard_id} is {host.state.value}; only a RUNNING "
                "shard can snapshot (parked deliveries would be lost)"
            )
        now = self.loop.clock.now()
        host.advance(now)
        snap = {
            "now": host.loop.clock.now(),
            "manager": host.manager.state_dict(),
            "stats": {
                "offered": host.stats.offered,
                "accepted": host.stats.accepted,
                "dropped_late": host.stats.dropped_late,
            },
        }
        state_path = self.state_path(shard_id)
        tmp = state_path.with_suffix(".state.tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(snap, fh)
        os.replace(tmp, state_path)  # atomic: never a torn state file
        self._rotate_wal(shard_id)
        return snap

    def _rotate_wal(self, shard_id: int) -> None:
        """Retire every WAL segment; continue with a fresh writer.

        Called only after the state file covering those segments is
        durably in place.  The live (partial) segment is flushed by
        ``close()`` first, so nothing WAL'd escapes the snapshot; the
        fresh writer restarts segment numbering at zero in the same
        directory, preserving the reader's contiguous-from-0 contract.
        """
        old_writer = self._wals[shard_id]
        path = old_writer.path
        old_writer.close()
        for segment in sorted(path.glob("*.gseg")):
            segment.unlink()
        self._wals[shard_id] = CaptureWriter(
            path, segment_samples=self.segment_samples
        )

    # ------------------------------------------------------------------
    # Fault injection passthrough (shard-role faults)
    # ------------------------------------------------------------------
    def crash_shard(self, shard_id: int) -> None:
        self._hosts[shard_id].crash()

    def stall_shard(self, shard_id: int) -> None:
        self._hosts[shard_id].stall()

    def resume_shard(self, shard_id: int) -> None:
        self._hosts[shard_id].resume()

    # ------------------------------------------------------------------
    # Routing + manager protocol
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._hosts)

    @property
    def hosts(self) -> List[ShardHost]:
        return [self._hosts[i] for i in sorted(self._hosts)]

    def host(self, shard_id: int) -> ShardHost:
        try:
            return self._hosts[shard_id]
        except KeyError:
            raise ValueError(f"unknown shard id: {shard_id}") from None

    def shard_of(self, name: str) -> int:
        shard_id = self._route_cache.get(name)
        if shard_id is None:
            shard_id = self._ring.locate(name)
            self._route_cache[name] = shard_id
        return shard_id

    @property
    def topology_version(self) -> int:
        """Folds restarts in: a fresh manager invalidates carried caches."""
        return self._restart_epoch * 1_000_003 + sum(
            host.manager.topology_version for host in self._hosts.values()
        )

    def carries(self, name: str) -> bool:
        return self._hosts[self.shard_of(name)].manager.carries(name)

    def auto_create(self, name: str) -> bool:
        return self._hosts[self.shard_of(name)].manager.auto_create(name)

    def push_sample(self, name: str, time_ms: float, value: float) -> int:
        return self.push_samples(name, (time_ms,), (value,))

    def push_samples(self, name: str, times, values) -> int:
        """WAL first, then deliver to the home host.

        A push that lands on a crashed host returns 0 to the caller, but
        the WAL already holds it: the restart replays it into the fresh
        host at this exact instant, so nothing is lost end to end.

        ``__obs.``-reserved names are rejected here, *before* the WAL
        write — a reserved push must never become durable history.  The
        self-instrumentation publisher enters through :meth:`push_obs`.
        """
        if name.startswith(RESERVED_PREFIX):
            raise ScopeError(
                f"signal name {name!r} is reserved: the {RESERVED_PREFIX!r} "
                "namespace carries self-instrumentation samples "
                "(published via MetricsPublisher, not user pushes)"
            )
        return self.push_obs(name, times, values)

    def push_obs(self, name: str, times, values) -> int:
        """Trusted reserved-namespace entry: same WAL-first delivery."""
        shard_id = self.shard_of(name)
        now = self.loop.clock.now()
        self._wals[shard_id].on_push(name, times, values, now)
        host = self._hosts[shard_id]
        host.stats.wal_bytes += 16 * len(times)  # two float64 columns
        try:
            return host.deliver(now, name, times, values)
        except ShardDown:
            host.stats.lost_deliveries += 1
            return 0

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def states(self) -> Dict[int, ShardState]:
        return {i: self._hosts[i].state for i in sorted(self._hosts)}

    def shard_stats(self) -> List[SupervisionStats]:
        """Per-shard counters in shard-id order (live references)."""
        return [self._hosts[i].stats for i in sorted(self._hosts)]

    def totals(self) -> Dict[str, int]:
        """Counters summed across shards, supervision included."""
        out: Dict[str, int] = {}
        for host in self._hosts.values():
            for key, value in host.stats.as_dict().items():
                out[key] = out.get(key, 0) + value
        return out

    def close(self) -> None:
        """Stop monitoring and seal the WALs (flushes partial segments)."""
        self.stop()
        for wal in self._wals.values():
            wal.close()


class ProcessShardSupervisor:
    """WAL-before-send routing to worker *processes*, with respawn.

    The process counterpart of :class:`ShardSupervisor`: the same
    consistent-hash routing and the same write-ahead discipline, but the
    shard hosts live in child processes behind
    :class:`~repro.net.worker.WorkerHandle` links, so a worker can
    genuinely die (``kill -9``) and recovery is a real OS-level respawn:

    * every push is WAL'd on the router side *before* the non-blocking
      send, so bytes in flight to a dying process are never lost;
    * liveness is OS-truth first — ``Process.is_alive()`` (immediate for
      a SIGKILLed child) and a broken pipe both mark the worker down —
      with the real-time heartbeat silence of the control channel as a
      backstop for wedged-but-alive children (``beat_grace_s`` is real
      seconds and generous: monitor ticks on a virtual loop burn ~no
      wall clock, so only a genuinely silent child can trip it);
    * respawn is synchronous: the WAL is flushed, a fresh worker starts
      with ``wal_path``/``state_path``, restores the rotation snapshot
      (if any), replays the remaining segments, and only then sends
      ``ready`` — the router cannot race new traffic past recovery, so
      the restarted worker is byte-identical to one that never died
      (the in-process equivalence argument, plus the socket's total
      order).

    :meth:`snapshot_shard` piggybacks on that same order: the snapshot
    request is queued *behind* every prior delivery, so the captured
    state provably covers everything WAL'd, and the segments can be
    retired the moment the state file lands.
    """

    def __init__(
        self,
        loop: MainLoop,
        wal_root: Union[str, Path],
        shards: int = 4,
        scope_factory: Optional[ScopeFactory] = None,
        heartbeat_s: float = 1.0,
        monitor_interval_ms: float = 50.0,
        beat_grace_s: float = 60.0,
        replicas: int = DEFAULT_REPLICAS,
        segment_samples: int = 1 << 12,
        use_shm: bool = False,
        ring_bytes: int = 1 << 22,
        max_pending_bytes: int = 4 << 20,
        auto_start: bool = True,
    ) -> None:
        if shards <= 0:
            raise ValueError(f"shards must be positive: {shards}")
        # Lazy import: worker imports this module for ShardHost.
        from repro.net.worker import WorkerHandle

        self._handle_cls = WorkerHandle
        self.loop = loop
        self.wal_root = Path(wal_root)
        self.scope_factory = scope_factory
        self.heartbeat_s = float(heartbeat_s)
        self.monitor_interval_ms = float(monitor_interval_ms)
        self.beat_grace_s = float(beat_grace_s)
        self.segment_samples = int(segment_samples)
        self.use_shm = bool(use_shm)
        self.ring_bytes = int(ring_bytes)
        self.max_pending_bytes = int(max_pending_bytes)
        self._ring = HashRing(range(shards), replicas=replicas)
        self._route_cache: Dict[str, int] = {}
        self._wals: Dict[int, CaptureWriter] = {}
        self._stats: Dict[int, SupervisionStats] = {}
        self._handles: Dict[int, object] = {}
        self._monitor_id: Optional[int] = None
        self._restart_epoch = 0
        self._closed = False
        try:
            for shard_id in range(shards):
                self._wals[shard_id] = CaptureWriter(
                    self.wal_root / f"shard-{shard_id:02d}",
                    segment_samples=self.segment_samples,
                )
                self._stats[shard_id] = SupervisionStats()
                self._handles[shard_id] = self._spawn(shard_id, start_now=0.0)
        except BaseException:
            self.close()
            raise
        if auto_start:
            self.start()

    def _spawn(self, shard_id: int, start_now: float):
        return self._handle_cls(
            shard_id,
            self.scope_factory,
            heartbeat_s=self.heartbeat_s,
            wal_path=self._wals[shard_id].path,
            state_path=self.state_path(shard_id),
            start_now=start_now,
            use_shm=self.use_shm,
            ring_bytes=self.ring_bytes,
            max_pending_bytes=self.max_pending_bytes,
        )

    # ------------------------------------------------------------------
    # Monitor lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the liveness monitor on the router loop."""
        if self._monitor_id is None:
            self._monitor_id = self.loop.timeout_add(
                self.monitor_interval_ms, self._monitor
            )

    def stop(self) -> None:
        if self._monitor_id is not None:
            self.loop.remove(self._monitor_id)
            self._monitor_id = None

    @property
    def monitoring(self) -> bool:
        return self._monitor_id is not None

    def _monitor(self, lost: int = 0) -> bool:
        now = self.loop.clock.now()
        for shard_id in sorted(self._handles):
            handle = self._handles[shard_id]
            handle.poll()  # drains beats; surfaces crash reports
            if (
                not handle.is_alive()
                or handle.link_down
                or handle.take_crash() is not None
            ):
                self.restart_shard(shard_id)
                continue
            handle.advance(now)
            if handle.beat_age_s() > self.beat_grace_s:
                self._stats[shard_id].missed_beats += 1
                self.restart_shard(shard_id)
        return True

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def restart_shard(self, shard_id: int):
        """Respawn a worker and catch it up: snapshot restore + replay.

        The old process is killed outright (it is usually already dead),
        the WAL's partial segment is flushed so the child sees every
        recorded push, and the replacement is spawned with the current
        router instant as its catch-up target.  Spawning blocks on the
        child's ``ready`` — recovery completes before any new delivery
        can be queued.
        """
        old = self._handles[shard_id]
        stats = self._stats[shard_id]
        old.kill()
        old.close(timeout_s=2.0)
        self._wals[shard_id].flush_segment()
        now = self.loop.clock.now()
        stats.restarts += 1
        stats.last_restart_at = now
        handle = self._spawn(shard_id, start_now=now)
        stats.replayed_samples = handle.replayed_samples
        self._handles[shard_id] = handle
        self._restart_epoch += 1
        return handle

    def ensure_alive(self) -> None:
        """Respawn any dead worker immediately (no waiting on a tick)."""
        for shard_id in sorted(self._handles):
            handle = self._handles[shard_id]
            handle.poll()
            if (
                not handle.is_alive()
                or handle.link_down
                or handle.take_crash() is not None
            ):
                self.restart_shard(shard_id)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def kill_shard(self, shard_id: int) -> None:
        """SIGKILL one worker process (the fault the WAL exists for)."""
        self._handles[shard_id].kill()

    # ------------------------------------------------------------------
    # Self-instrumentation
    # ------------------------------------------------------------------
    def register_metrics(self, registry, prefix: str = "shard") -> None:
        """Mount router-side supervision counters into ``registry``.

        The router's stats objects persist across worker respawns (the
        ledger outlives the process), so one mount stays live forever.
        Worker-queue and shm-ring gauges look the *current* handle up by
        shard id, so they track respawns too; they reflect kernel/socket
        timing, hence ``wall=True`` (scrape-only, never published).
        """
        for shard_id in sorted(self._stats):
            shard_prefix = f"{prefix}{shard_id}."
            self._stats[shard_id].register_metrics(registry, shard_prefix)
            registry.gauge(
                f"{shard_prefix}worker_pending_bytes",
                fn=lambda sid=shard_id: float(
                    self._handles[sid].pending_bytes if sid in self._handles else 0
                ),
                wall=True,
            )
            registry.gauge(
                f"{shard_prefix}ring_occupancy",
                fn=lambda sid=shard_id: (
                    self._handles[sid].ring.occupancy()
                    if sid in self._handles and self._handles[sid].ring is not None
                    else 0.0
                ),
                wall=True,
            )
            registry.gauge(
                f"{shard_prefix}ring_fallbacks",
                fn=lambda sid=shard_id: float(
                    self._handles[sid].ring.fallbacks
                    if sid in self._handles and self._handles[sid].ring is not None
                    else 0
                ),
                wall=True,
            )

    # ------------------------------------------------------------------
    # Routing + push
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._handles)

    def handle_of(self, shard_id: int):
        try:
            return self._handles[shard_id]
        except KeyError:
            raise ValueError(f"unknown shard id: {shard_id}") from None

    def shard_of(self, name: str) -> int:
        shard_id = self._route_cache.get(name)
        if shard_id is None:
            shard_id = self._ring.locate(name)
            self._route_cache[name] = shard_id
        return shard_id

    @property
    def topology_version(self) -> int:
        return self._restart_epoch

    def push_sample(self, name: str, time_ms: float, value: float) -> int:
        return self.push_samples(name, (time_ms,), (value,))

    def push_samples(self, name: str, times, values) -> int:
        """WAL first, then queue to the home worker; returns offered.

        A push aimed at a dead worker is counted lost (to the live
        link — the WAL already holds it; the respawn replays it at this
        exact instant) and returns 0, exactly like the in-process
        supervisor's crashed-host path.

        Reserved ``__obs.`` names are rejected before the WAL write,
        mirroring :class:`ShardSupervisor`; the publisher enters via
        :meth:`push_obs`.
        """
        if name.startswith(RESERVED_PREFIX):
            raise ScopeError(
                f"signal name {name!r} is reserved: the {RESERVED_PREFIX!r} "
                "namespace carries self-instrumentation samples "
                "(published via MetricsPublisher, not user pushes)"
            )
        return self.push_obs(name, times, values)

    def push_obs(self, name: str, times, values) -> int:
        """Trusted reserved-namespace entry: same WAL-first queueing."""
        n = len(times)
        if n == 0:
            return 0
        shard_id = self.shard_of(name)
        now = self.loop.clock.now()
        self._wals[shard_id].on_push(name, times, values, now)
        stats = self._stats[shard_id]
        stats.wal_bytes += 16 * n
        handle = self._handles[shard_id]
        if not handle.is_alive() or handle.link_down:
            stats.lost_deliveries += 1
            return 0
        offered = handle.deliver(now, name, times, values)
        stats.offered += offered
        return offered

    def advance_all(self, now: Optional[float] = None) -> None:
        """Advance every live worker's private clock (idle-shard ticks)."""
        if now is None:
            now = self.loop.clock.now()
        for handle in self._handles.values():
            if handle.is_alive() and not handle.link_down:
                handle.advance(now)

    # ------------------------------------------------------------------
    # Settling + accounting
    # ------------------------------------------------------------------
    def _wal_samples(self, shard_id: int) -> int:
        return self._stats[shard_id].wal_bytes // 16

    def drain(self, timeout_s: float = 60.0) -> None:
        """Respawn the dead, then block until every worker has ingested
        every sample the WAL holds.

        The drain target is the WAL ledger, not the live-send ledger: a
        respawned worker's ``offered`` covers replayed *and* live
        samples, and the WAL count is exactly that union.
        """
        self.ensure_alive()
        for shard_id in sorted(self._handles):
            self._handles[shard_id].drain(
                self._wal_samples(shard_id), timeout_s=timeout_s
            )
        self.refresh_stats(timeout_s=timeout_s)

    def refresh_stats(self, timeout_s: float = 10.0) -> None:
        """Pull each worker's ingest ledger into the router-side stats."""
        for shard_id, handle in self._handles.items():
            remote = handle.stats(timeout_s=timeout_s)
            stats = self._stats[shard_id]
            stats.offered = int(remote["offered"])
            stats.accepted = int(remote["accepted"])
            stats.dropped_late = int(remote["dropped_late"])

    def shard_stats(self) -> List[SupervisionStats]:
        return [self._stats[i] for i in sorted(self._stats)]

    def totals(self) -> Dict[str, int]:
        """Counters summed across workers, as of the last refresh/drain."""
        out: Dict[str, int] = {}
        for stats in self._stats.values():
            for key, value in stats.as_dict().items():
                out[key] = out.get(key, 0) + value
        return out

    def snapshot_state(self, shard_id: int, timeout_s: float = 30.0) -> dict:
        """Fetch one worker's full data-plane state (ordered past all sends)."""
        return self._handles[shard_id].snapshot_state(timeout_s=timeout_s)

    # ------------------------------------------------------------------
    # Snapshot + WAL rotation
    # ------------------------------------------------------------------
    def state_path(self, shard_id: int) -> Path:
        return self.wal_root / f"shard-{shard_id:02d}.state"

    def snapshot_shard(self, shard_id: int, timeout_s: float = 30.0) -> dict:
        """Snapshot one worker's state and retire its WAL segments.

        The socket's total order makes this safe without a drain: the
        snapshot request is queued behind every delivery already sent,
        so the returned state covers everything the WAL recorded for a
        live link.  (A dead worker cannot snapshot — respawn first.)
        """
        handle = self._handles[shard_id]
        handle.advance(self.loop.clock.now())
        snap = handle.snapshot_state(timeout_s=timeout_s)
        state_path = self.state_path(shard_id)
        tmp = state_path.with_suffix(".state.tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(snap, fh)
        os.replace(tmp, state_path)
        old_writer = self._wals[shard_id]
        path = old_writer.path
        old_writer.close()
        for segment in sorted(path.glob("*.gseg")):
            segment.unlink()
        self._wals[shard_id] = CaptureWriter(
            path, segment_samples=self.segment_samples
        )
        return snap

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout_s: float = 10.0) -> None:
        """Stop monitoring, shut every worker down, seal the WALs."""
        if self._closed:
            return
        self._closed = True
        self.stop()
        for handle in self._handles.values():
            handle.close(timeout_s=timeout_s)
        for wal in self._wals.values():
            wal.close()

    def __enter__(self) -> "ProcessShardSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
