"""Shard supervision: heartbeat failure detection and replay catch-up.

The fault-tolerance story for the sharded telemetry plane.  Each shard's
:class:`~repro.core.manager.ScopeManager` runs inside a
:class:`ShardHost` on a *private* main loop (its own virtual clock), and
a :class:`ShardSupervisor` on the router loop:

* **writes ahead** — every offered push is recorded to the shard's
  :class:`~repro.capture.writer.CaptureWriter` (a per-shard write-ahead
  log) *before* delivery, so samples sent into the void during an
  undetected crash window are never lost, only deferred;
* **detects** — each host beats a heartbeat timer on its private loop;
  a monitor timer on the router loop advances every RUNNING host's loop
  and compares beat counts.  A host whose beats freeze for
  ``miss_threshold`` consecutive monitor ticks (wedged), or that has
  explicitly crashed (fault injection, or an exception quarantined
  during ingest), is declared dead;
* **restarts** — a fresh host is built by the same ``scope_factory``,
  and its entire history is re-driven from the WAL by a
  :class:`~repro.capture.replay.ReplaySource` on the fresh private loop
  from t=0 through the router's current instant.

Byte-identical recovery
-----------------------

The restarted shard is not approximately recovered — its traces,
filtered columns, aggregates and every Section 4.4 accept/late-drop
decision are *byte-identical* to a shard that never failed.  The
argument:

1. A live delivery advances the private loop *through* the router
   instant (:meth:`~repro.eventloop.loop.MainLoop.run_through`) and then
   pushes, so every source due at or before the push instant has
   dispatched first, and the manager reads a clock equal to the router
   clock.
2. The WAL records exactly the offered columns and their push instants
   (the same contract the capture equivalence suite already proves
   replayable bit-for-bit).
3. On restart the :class:`~repro.capture.replay.ReplaySource` re-pushes
   each batch at its recorded instant on the fresh loop.  The source is
   created after the host's own timers, so at any shared instant the
   poll/heartbeat timers dispatch before the replayed push — the same
   (priority, id) order the live path produced in (1).

A *stall* that clears before detection never restarts: deliveries
accumulate in the host's inbox and drain in order at their recorded
instants on :meth:`ShardHost.resume` — the same interleaving again.

Caveat: byte-identity covers signals registered by the
``scope_factory``.  Signals *auto-created* by the server on first
arrival are not re-created by replay (signal registration is not in the
WAL); they resume on their next live arrival instead.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Union

import numpy as np

from repro.capture.reader import CaptureReader
from repro.capture.replay import ReplaySource
from repro.capture.writer import CaptureWriter
from repro.core.manager import ScopeManager
from repro.eventloop.loop import MainLoop
from repro.net.shard import DEFAULT_REPLICAS, HashRing, ShardStats

__all__ = [
    "ShardDown",
    "ShardHost",
    "ShardState",
    "ShardSupervisor",
    "SupervisionStats",
]

#: Builds one shard's scopes/signals on a fresh manager.  Called with
#: ``(manager, shard_id)`` at host construction *and again at every
#: restart* — it must be deterministic, and it should start polling
#: (replay re-drives the polls).
ScopeFactory = Callable[[ScopeManager, int], None]


class ShardState(enum.Enum):
    RUNNING = "running"
    STALLED = "stalled"
    CRASHED = "crashed"


class ShardDown(RuntimeError):
    """Raised when delivering to a crashed shard host."""


@dataclass
class SupervisionStats(ShardStats):
    """:class:`~repro.net.shard.ShardStats` plus failover counters."""

    restarts: int = 0
    missed_beats: int = 0
    lost_deliveries: int = 0  # pushes that hit a crashed host (WAL-covered)
    replayed_samples: int = 0  # samples re-driven by restart catch-up
    last_restart_at: Optional[float] = None

    def as_dict(self) -> Dict[str, int]:
        out = super().as_dict()
        out.update(
            restarts=self.restarts,
            missed_beats=self.missed_beats,
            lost_deliveries=self.lost_deliveries,
            replayed_samples=self.replayed_samples,
        )
        return out


@dataclass
class _Delivery:
    """One push parked in a stalled host's inbox."""

    now: float
    name: str
    times: np.ndarray
    values: np.ndarray


class _HostTarget:
    """Replay adapter: ReplaySource pushes land as host ingests.

    Routing the replayed batches through :meth:`ShardHost.ingest` (not
    the bare manager) rebuilds the shard's offered/accepted/late-drop
    counters exactly as the live traffic built them.
    """

    def __init__(self, host: "ShardHost") -> None:
        self.host = host

    def push_samples(self, name: str, times, values) -> int:
        return self.host.ingest(name, times, values)


class ShardHost:
    """One shard's manager on a private loop, with a heartbeat.

    The host is the supervision unit: it can be stalled (deliveries
    park in an inbox; the private loop — and with it the heartbeat —
    stops advancing), crashed (deliveries raise :class:`ShardDown`), and
    resumed.  The supervisor detects the first two through the beat
    counter and replaces the host wholesale; a stall that clears first
    drains its inbox in recorded order and never diverges.
    """

    def __init__(
        self,
        shard_id: int,
        scope_factory: Optional[ScopeFactory] = None,
        heartbeat_ms: float = 50.0,
        stats: Optional[SupervisionStats] = None,
    ) -> None:
        if heartbeat_ms <= 0:
            raise ValueError(f"heartbeat_ms must be positive: {heartbeat_ms}")
        self.shard_id = shard_id
        self.heartbeat_ms = float(heartbeat_ms)
        self.loop = MainLoop()  # private loop, private virtual clock at 0
        self.beats = 0
        # The heartbeat attaches before the factory's poll timers and
        # before any ReplaySource, so its dispatch order relative to
        # them is the same on the original host and on every restart.
        self._beat_id = self.loop.timeout_add(self.heartbeat_ms, self._beat)
        self.manager = ScopeManager(self.loop)
        if scope_factory is not None:
            scope_factory(self.manager, shard_id)
        self.state = ShardState.RUNNING
        self.stats = stats if stats is not None else SupervisionStats()
        self._inbox: Deque[_Delivery] = deque()
        self.crash_error: Optional[BaseException] = None

    def _beat(self, lost: int = 0) -> bool:
        self.beats += 1
        return True

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def ingest(self, name: str, times, values) -> int:
        """Push at the current private-loop instant, with accounting.

        An exception out of the manager quarantines the host (state →
        CRASHED, error retained) and surfaces as :class:`ShardDown`: a
        poisoned batch must not wedge the router loop, and the WAL-based
        restart gets a chance to re-run history without it being
        re-offered live.
        """
        try:
            accepted = self.manager.push_samples(name, times, values)
        except Exception as exc:
            self.crash(exc)
            raise ShardDown(
                f"shard {self.shard_id} ingest raised: {exc!r}"
            ) from exc
        n = len(times)
        self.stats.offered += n
        self.stats.accepted += accepted
        self.stats.dropped_late += n - accepted
        return accepted

    def deliver(self, now: float, name: str, times, values) -> int:
        """Deliver one routed push at router instant ``now``.

        RUNNING: advance the private loop through ``now`` (polls and
        heartbeats due at or before it dispatch first) and ingest.
        STALLED: park a copy in the inbox — acceptance unknown, report 0
        for now; :meth:`resume` settles the truth.  CRASHED: raise
        :class:`ShardDown` (the caller's WAL already holds the batch).
        """
        if self.state is ShardState.CRASHED:
            raise ShardDown(f"shard {self.shard_id} is down")
        if self.state is ShardState.STALLED:
            self._inbox.append(
                _Delivery(
                    float(now),
                    name,
                    np.array(times, dtype=np.float64, copy=True),
                    np.array(values, dtype=np.float64, copy=True),
                )
            )
            return 0
        self.loop.run_through(now)
        return self.ingest(name, times, values)

    def advance(self, now: float) -> None:
        """Advance the private loop to the router instant (monitor tick).

        Only a RUNNING host advances — that is precisely what makes a
        stalled or crashed host's heartbeat freeze and the failure
        detectable.
        """
        if self.state is ShardState.RUNNING:
            self.loop.run_through(now)

    # ------------------------------------------------------------------
    # Fault injection / recovery hooks
    # ------------------------------------------------------------------
    def stall(self) -> None:
        """Wedge the host: deliveries park, the heartbeat freezes."""
        if self.state is ShardState.RUNNING:
            self.state = ShardState.STALLED

    def resume(self) -> None:
        """Clear a stall, draining parked deliveries in recorded order.

        Each entry replays at its recorded router instant — the loop
        runs through it first, exactly as the live path would have — so
        a survived stall is byte-identical to no stall at all.
        """
        if self.state is not ShardState.STALLED:
            return
        self.state = ShardState.RUNNING
        while self._inbox:
            entry = self._inbox.popleft()
            self.loop.run_through(entry.now)
            self.ingest(entry.name, entry.times, entry.values)

    def crash(self, error: Optional[BaseException] = None) -> None:
        """Kill the host: inbox lost (WAL-covered), deliveries refused."""
        self.state = ShardState.CRASHED
        self.crash_error = error
        self._inbox.clear()


class ShardSupervisor:
    """Routes pushes to supervised shard hosts; detects and heals faults.

    Satisfies the manager protocol a
    :class:`~repro.net.server.ScopeServer` consumes (``push_samples``,
    ``carries``, ``auto_create``, ``topology_version``), so it slots in
    wherever a :class:`~repro.net.shard.ShardedScopeManager` does —
    routing on the same consistent-hash ring — while adding the WAL,
    the heartbeat monitor and replay-catch-up restart.

    Parameters
    ----------
    loop:
        The *router* loop — the one the server, clients and monitor
        share.  Its clock stamps WAL push instants.
    wal_root:
        Directory for the per-shard write-ahead logs
        (``wal_root/shard-NN/``).
    shards:
        Number of shard hosts (ids ``0..shards-1``; ids survive
        restarts, so ring routing never changes under failover).
    scope_factory:
        Deterministic builder ``(manager, shard_id) -> None`` run at
        construction and at every restart.  It should register signals
        and start polling.
    heartbeat_ms / monitor_interval_ms / miss_threshold:
        Failure-detection knobs.  The monitor interval defaults to the
        heartbeat interval and must not be shorter (a healthy host
        advances at least one beat per tick); a host whose beats freeze
        for ``miss_threshold`` consecutive ticks restarts.  Detection
        latency is therefore bounded by
        ``(miss_threshold + 1) * monitor_interval_ms``.
    segment_samples:
        WAL segment flush threshold (smaller = more, smaller segments).
    """

    def __init__(
        self,
        loop: MainLoop,
        wal_root: Union[str, Path],
        shards: int = 4,
        scope_factory: Optional[ScopeFactory] = None,
        heartbeat_ms: float = 50.0,
        monitor_interval_ms: Optional[float] = None,
        miss_threshold: int = 3,
        replicas: int = DEFAULT_REPLICAS,
        segment_samples: int = 1 << 12,
        auto_start: bool = True,
    ) -> None:
        if shards <= 0:
            raise ValueError(f"shards must be positive: {shards}")
        if miss_threshold <= 0:
            raise ValueError(f"miss_threshold must be positive: {miss_threshold}")
        interval = heartbeat_ms if monitor_interval_ms is None else monitor_interval_ms
        if interval < heartbeat_ms:
            raise ValueError(
                "monitor interval shorter than the heartbeat would declare "
                f"healthy hosts dead: {interval} < {heartbeat_ms}"
            )
        self.loop = loop
        self.wal_root = Path(wal_root)
        self.scope_factory = scope_factory
        self.heartbeat_ms = float(heartbeat_ms)
        self.monitor_interval_ms = float(interval)
        self.miss_threshold = int(miss_threshold)
        self.segment_samples = int(segment_samples)
        self._ring = HashRing(range(shards), replicas=replicas)
        self._route_cache: Dict[str, int] = {}
        self._hosts: Dict[int, ShardHost] = {}
        self._wals: Dict[int, CaptureWriter] = {}
        for shard_id in range(shards):
            self._hosts[shard_id] = ShardHost(
                shard_id, scope_factory, self.heartbeat_ms
            )
            self._wals[shard_id] = CaptureWriter(
                self.wal_root / f"shard-{shard_id:02d}",
                segment_samples=self.segment_samples,
            )
        self._beats_seen: Dict[int, int] = {i: 0 for i in self._hosts}
        self._frozen_ticks: Dict[int, int] = {i: 0 for i in self._hosts}
        self._monitor_id: Optional[int] = None
        self._restart_epoch = 0  # bumps topology_version on every restart
        #: Replaced hosts, retained for post-mortem (crash_error, stats).
        self.quarantined: List[ShardHost] = []
        if auto_start:
            self.start()

    # ------------------------------------------------------------------
    # Monitor lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the heartbeat monitor on the router loop."""
        if self._monitor_id is None:
            self._monitor_id = self.loop.timeout_add(
                self.monitor_interval_ms, self._monitor
            )

    def stop(self) -> None:
        """Disarm the monitor (faults go undetected while stopped)."""
        if self._monitor_id is not None:
            self.loop.remove(self._monitor_id)
            self._monitor_id = None

    @property
    def monitoring(self) -> bool:
        return self._monitor_id is not None

    def _monitor(self, lost: int = 0) -> bool:
        now = self.loop.clock.now()
        for shard_id in sorted(self._hosts):
            host = self._hosts[shard_id]
            if host.state is ShardState.CRASHED:
                # Explicit crash (injection or ingest quarantine):
                # no need to wait out missed beats.
                self.restart_shard(shard_id)
                continue
            host.advance(now)
            if host.beats == self._beats_seen[shard_id]:
                host.stats.missed_beats += 1
                self._frozen_ticks[shard_id] += 1
                if self._frozen_ticks[shard_id] >= self.miss_threshold:
                    self.restart_shard(shard_id)
            else:
                self._beats_seen[shard_id] = host.beats
                self._frozen_ticks[shard_id] = 0
        return True

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def restart_shard(self, shard_id: int) -> ShardHost:
        """Replace a dead host and catch it up from the WAL.

        The fresh host is built by the same factory on a fresh private
        loop at t=0; the WAL (flushed first; a torn tail from a real
        process kill is skipped by ``recover_tail``) replays through the
        router's current instant via an exact-timeline
        :class:`~repro.capture.replay.ReplaySource`.  Per the module
        argument, the result is byte-identical to a host that never
        died.  The replaced host moves to :attr:`quarantined`.
        """
        old = self._hosts[shard_id]
        wal = self._wals[shard_id]
        wal.flush_segment()
        now = self.loop.clock.now()
        stats = SupervisionStats(
            restarts=old.stats.restarts + 1,
            missed_beats=old.stats.missed_beats,
            lost_deliveries=old.stats.lost_deliveries,
            last_restart_at=now,
        )
        host = ShardHost(shard_id, self.scope_factory, self.heartbeat_ms, stats=stats)
        if wal.segments_written:
            reader = CaptureReader(wal.path, recover_tail=True)
            source = ReplaySource(reader, _HostTarget(host))
            host.loop.attach(source)
            host.loop.run_through(now)
            stats.replayed_samples = source.delivered_samples
        else:
            host.loop.run_through(now)
        self._hosts[shard_id] = host
        self._beats_seen[shard_id] = host.beats
        self._frozen_ticks[shard_id] = 0
        self._restart_epoch += 1
        self.quarantined.append(old)
        return host

    # ------------------------------------------------------------------
    # Fault injection passthrough (shard-role faults)
    # ------------------------------------------------------------------
    def crash_shard(self, shard_id: int) -> None:
        self._hosts[shard_id].crash()

    def stall_shard(self, shard_id: int) -> None:
        self._hosts[shard_id].stall()

    def resume_shard(self, shard_id: int) -> None:
        self._hosts[shard_id].resume()

    # ------------------------------------------------------------------
    # Routing + manager protocol
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._hosts)

    @property
    def hosts(self) -> List[ShardHost]:
        return [self._hosts[i] for i in sorted(self._hosts)]

    def host(self, shard_id: int) -> ShardHost:
        try:
            return self._hosts[shard_id]
        except KeyError:
            raise ValueError(f"unknown shard id: {shard_id}") from None

    def shard_of(self, name: str) -> int:
        shard_id = self._route_cache.get(name)
        if shard_id is None:
            shard_id = self._ring.locate(name)
            self._route_cache[name] = shard_id
        return shard_id

    @property
    def topology_version(self) -> int:
        """Folds restarts in: a fresh manager invalidates carried caches."""
        return self._restart_epoch * 1_000_003 + sum(
            host.manager.topology_version for host in self._hosts.values()
        )

    def carries(self, name: str) -> bool:
        return self._hosts[self.shard_of(name)].manager.carries(name)

    def auto_create(self, name: str) -> bool:
        return self._hosts[self.shard_of(name)].manager.auto_create(name)

    def push_sample(self, name: str, time_ms: float, value: float) -> int:
        return self.push_samples(name, (time_ms,), (value,))

    def push_samples(self, name: str, times, values) -> int:
        """WAL first, then deliver to the home host.

        A push that lands on a crashed host returns 0 to the caller, but
        the WAL already holds it: the restart replays it into the fresh
        host at this exact instant, so nothing is lost end to end.
        """
        shard_id = self.shard_of(name)
        now = self.loop.clock.now()
        self._wals[shard_id].on_push(name, times, values, now)
        host = self._hosts[shard_id]
        try:
            return host.deliver(now, name, times, values)
        except ShardDown:
            host.stats.lost_deliveries += 1
            return 0

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def states(self) -> Dict[int, ShardState]:
        return {i: self._hosts[i].state for i in sorted(self._hosts)}

    def shard_stats(self) -> List[SupervisionStats]:
        """Per-shard counters in shard-id order (live references)."""
        return [self._hosts[i].stats for i in sorted(self._hosts)]

    def totals(self) -> Dict[str, int]:
        """Counters summed across shards, supervision included."""
        keys = (
            "offered",
            "accepted",
            "dropped_late",
            "restarts",
            "missed_beats",
            "lost_deliveries",
            "replayed_samples",
        )
        out = {key: 0 for key in keys}
        for host in self._hosts.values():
            for key in keys:
                out[key] += getattr(host.stats, key)
        return out

    def close(self) -> None:
        """Stop monitoring and seal the WALs (flushes partial segments)."""
        self.stop()
        for wal in self._wals.values():
            wal.close()
