"""Control algorithms the paper scopes.

Section 1 lists "various control algorithms such as a software
implementation of a phase-lock loop" among the applications gscope was
used to visualize and debug.  :mod:`repro.control.pll` provides that
PLL; its phase error, frequency estimate and lock indicator are natural
scope signals.
"""

from repro.control.pll import PhaseLockLoop, PLLConfig

__all__ = ["PLLConfig", "PhaseLockLoop"]
