"""A software phase-locked loop (second-order, digital).

The classic structure from Franklin/Powell/Workman (the paper's
reference [9]): a numerically controlled oscillator (NCO) tracks a
reference oscillator's phase.  Each sample step:

1. phase detector: error = wrapped difference between reference phase
   and NCO phase,
2. loop filter (PI): frequency correction = kp * error + ki * ∫error,
3. NCO: advance local phase by (nominal + correction) * dt.

The loop's interesting signals — the ones you would put on a scope while
debugging it — are exposed as attributes: phase error, estimated
frequency, and a lock indicator based on a smoothed error magnitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


def wrap_phase(phase: float) -> float:
    """Wrap a phase to (-pi, pi]."""
    wrapped = math.fmod(phase + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


@dataclass
class PLLConfig:
    """Loop parameters.

    ``kp``/``ki`` follow the standard second-order design; the defaults
    give a loop bandwidth well below the sample rate so the dynamics are
    visible at scope polling rates.
    """

    nominal_freq_hz: float = 5.0
    kp: float = 3.0
    ki: float = 8.0
    lock_threshold_rad: float = 0.1
    lock_smoothing: float = 0.95


class PhaseLockLoop:
    """Tracks a reference sinusoid's phase and frequency."""

    def __init__(self, config: Optional[PLLConfig] = None) -> None:
        self.config = config if config is not None else PLLConfig()
        self.local_phase = 0.0
        self.integrator = 0.0
        self.phase_error = 0.0
        self.freq_estimate_hz = self.config.nominal_freq_hz
        self._error_mag = math.pi  # smoothed |error|, starts unlocked
        self.steps = 0

    def step(self, reference_phase: float, dt_s: float) -> float:
        """Advance one sample; returns the phase error (radians).

        ``reference_phase`` is the instantaneous phase of the signal
        being tracked; ``dt_s`` the sample interval.
        """
        if dt_s <= 0:
            raise ValueError(f"dt must be positive: {dt_s}")
        cfg = self.config
        self.phase_error = wrap_phase(reference_phase - self.local_phase)
        self.integrator += self.phase_error * dt_s
        correction = cfg.kp * self.phase_error + cfg.ki * self.integrator
        self.freq_estimate_hz = cfg.nominal_freq_hz + correction / (2.0 * math.pi)
        self.local_phase += 2.0 * math.pi * self.freq_estimate_hz * dt_s
        self.local_phase = math.fmod(self.local_phase, 2.0 * math.pi)
        self._error_mag = (
            cfg.lock_smoothing * self._error_mag
            + (1.0 - cfg.lock_smoothing) * abs(self.phase_error)
        )
        self.steps += 1
        return self.phase_error

    @property
    def locked(self) -> bool:
        """True once the smoothed error magnitude is inside threshold."""
        return self._error_mag < self.config.lock_threshold_rad

    # ------------------------------------------------------------------
    # Scope signal hooks (FUNC-signal friendly)
    # ------------------------------------------------------------------
    def get_phase_error(self, *_: object) -> float:
        return self.phase_error

    def get_freq_estimate(self, *_: object) -> float:
        return self.freq_estimate_hz

    def get_lock(self, *_: object) -> float:
        return 1.0 if self.locked else 0.0


class ReferenceOscillator:
    """A frequency-steppable reference for PLL experiments."""

    def __init__(self, freq_hz: float = 5.0, phase: float = 0.0) -> None:
        if freq_hz <= 0:
            raise ValueError(f"frequency must be positive: {freq_hz}")
        self.freq_hz = float(freq_hz)
        self.phase = float(phase)

    def advance(self, dt_s: float) -> float:
        """Advance and return the current phase."""
        if dt_s < 0:
            raise ValueError(f"dt must be non-negative: {dt_s}")
        self.phase = math.fmod(
            self.phase + 2.0 * math.pi * self.freq_hz * dt_s, 2.0 * math.pi
        )
        return self.phase

    def set_frequency(self, freq_hz: float) -> None:
        """Step the reference frequency (the experiment's disturbance)."""
        if freq_hz <= 0:
            raise ValueError(f"frequency must be positive: {freq_hz}")
        self.freq_hz = float(freq_hz)
