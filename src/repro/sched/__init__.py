"""Proportion-period CPU scheduler substrate.

The paper repeatedly uses one demo application: "we use gscope to view
dynamically changing process proportions as assigned by a CPU
proportion-period scheduler" (Steere et al., OSDI 1999 — the real-rate
feedback allocator).  Here the scheduler and its workload are simulated:

* :mod:`repro.sched.process` — processes with a *desired progress rate*
  (e.g. a video decoder that must consume 30 frames/s) that make
  progress only while allocated CPU.
* :mod:`repro.sched.allocator` — the feedback-driven proportion
  allocator: each period it estimates progress pressure per process and
  reassigns CPU proportions, squeezing them proportionally when demand
  exceeds 100 %.

The allocator's assigned proportions are the signals the scope displays,
one per running process — the paper's example of a signal population
that grows and shrinks dynamically.
"""

from repro.sched.allocator import ProportionAllocator, SchedulerConfig
from repro.sched.process import SimProcess

__all__ = ["ProportionAllocator", "SchedulerConfig", "SimProcess"]
