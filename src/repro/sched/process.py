"""Simulated processes with real-rate progress semantics.

A real-rate process (a video decoder, an audio mixer, a network pump)
has a natural *rate* at which it must make progress; the scheduler's job
is to find the CPU proportion that sustains that rate.  The simulation
reduces a process to:

* ``desired_rate`` — progress units per second it should achieve,
* ``work_factor`` — progress units produced per second of CPU,
* ``progress`` — accumulated work, advanced by :meth:`run_for`,
* a bounded **queue model** — the real-rate paper infers rates from
  timestamps queued between producer/consumer pairs; we model the fill
  level directly: the process's input queue fills at ``desired_rate``
  and drains as it progresses, so ``queue_fill`` is the observable
  pressure signal the allocator feeds back on.
"""

from __future__ import annotations

from typing import Optional


class SimProcess:
    """One schedulable process under the proportion-period scheduler.

    Parameters
    ----------
    name:
        Process name (also the scope signal name).
    desired_rate:
        Required progress in units/second (frames, packets, blocks...).
    work_factor:
        Units of progress per second of CPU time.  The CPU proportion
        that exactly sustains ``desired_rate`` is
        ``desired_rate / work_factor``.
    queue_capacity:
        Bound on the input queue (units).  Fill level is normalised to
        [0, 1] for the controller's setpoint arithmetic.
    """

    def __init__(
        self,
        name: str,
        desired_rate: float,
        work_factor: float,
        queue_capacity: float = 100.0,
    ) -> None:
        if desired_rate <= 0:
            raise ValueError(f"desired_rate must be positive: {desired_rate}")
        if work_factor <= 0:
            raise ValueError(f"work_factor must be positive: {work_factor}")
        if queue_capacity <= 0:
            raise ValueError(f"queue_capacity must be positive: {queue_capacity}")
        self.name = name
        self.desired_rate = float(desired_rate)
        self.work_factor = float(work_factor)
        self.queue_capacity = float(queue_capacity)
        self.queue = queue_capacity / 2.0  # start half full (neutral)
        self.progress = 0.0
        self.cpu_ms_used = 0.0
        self.overflows = 0.0  # units dropped at the full queue
        self.underflows = 0.0  # units of starvation (queue empty)

    @property
    def ideal_proportion(self) -> float:
        """CPU share that exactly sustains the desired rate."""
        return self.desired_rate / self.work_factor

    @property
    def queue_fill(self) -> float:
        """Normalised input-queue fill level in [0, 1].

        0.5 is the controller setpoint: above it the process is falling
        behind (needs more CPU), below it the process is running ahead.
        """
        return self.queue / self.queue_capacity

    def produce(self, period_s: float) -> None:
        """The upstream producer enqueues ``desired_rate`` worth of work."""
        incoming = self.desired_rate * period_s
        space = self.queue_capacity - self.queue
        if incoming > space:
            self.overflows += incoming - space
            incoming = space
        self.queue += incoming

    def run_for(self, cpu_s: float) -> float:
        """Consume queue with ``cpu_s`` seconds of CPU; returns progress
        made this period."""
        if cpu_s < 0:
            raise ValueError(f"cpu time must be non-negative: {cpu_s}")
        capacity = self.work_factor * cpu_s
        done = min(self.queue, capacity)
        if capacity > self.queue:
            self.underflows += capacity - self.queue
        self.queue -= done
        self.progress += done
        self.cpu_ms_used += cpu_s * 1000.0
        return done

    def rate_change(self, new_rate: float) -> None:
        """The workload's needs shift (e.g. scene complexity change)."""
        if new_rate <= 0:
            raise ValueError(f"desired_rate must be positive: {new_rate}")
        self.desired_rate = float(new_rate)

    def __repr__(self) -> str:
        return (
            f"SimProcess({self.name!r}, rate={self.desired_rate}, "
            f"fill={self.queue_fill:.2f})"
        )
