"""The feedback-driven proportion allocator (the real-rate scheduler).

Each scheduling period the allocator:

1. lets every process's producer enqueue one period of work,
2. reads each process's queue fill level — the real-rate *progress
   pressure* signal (0.5 = keeping up exactly),
3. adjusts the process's proportion with a proportional-integral
   controller pushing the fill level back to the setpoint,
4. normalises: if total demand exceeds the CPU, proportions are squeezed
   proportionally (the paper's scheduler guarantees the sum ≤ 1),
5. runs each process for ``proportion * period`` of simulated CPU.

The assigned proportions are what the paper scopes: "These proportions
are assigned at the granularity of the process period and we set the
scope polling period to be same as the process period" (Section 4.2) —
a periodic signal, held between periods, needing no phase alignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sched.process import SimProcess


@dataclass
class SchedulerConfig:
    """Controller and period parameters."""

    period_ms: float = 50.0
    setpoint: float = 0.5  # target queue fill
    kp: float = 0.8  # proportional gain on fill error
    ki: float = 0.15  # integral gain
    integral_limit: float = 0.5  # anti-windup clamp on ki * integral
    min_proportion: float = 0.01
    max_total: float = 1.0  # the whole CPU


class ProportionAllocator:
    """Assigns CPU proportions to processes by queue-fill feedback."""

    def __init__(self, config: Optional[SchedulerConfig] = None) -> None:
        self.config = config if config is not None else SchedulerConfig()
        self._processes: Dict[str, SimProcess] = {}
        self._proportions: Dict[str, float] = {}
        self._integral: Dict[str, float] = {}
        self._squeezed_last = False
        self.periods = 0
        self.squeezes = 0  # periods where demand exceeded the CPU

    # ------------------------------------------------------------------
    # Process management (dynamic, like the paper's signal population)
    # ------------------------------------------------------------------
    def add(self, process: SimProcess, initial_proportion: Optional[float] = None) -> None:
        if process.name in self._processes:
            raise ValueError(f"duplicate process name: {process.name!r}")
        self._processes[process.name] = process
        start = (
            initial_proportion
            if initial_proportion is not None
            else process.ideal_proportion
        )
        self._proportions[process.name] = max(self.config.min_proportion, start)
        self._integral[process.name] = 0.0

    def remove(self, name: str) -> SimProcess:
        process = self._processes.pop(name)
        self._proportions.pop(name)
        self._integral.pop(name)
        return process

    @property
    def processes(self) -> List[SimProcess]:
        return list(self._processes.values())

    def proportion_of(self, name: str) -> float:
        """Current assigned proportion (the scope's signal source)."""
        return self._proportions[name]

    def process(self, name: str) -> SimProcess:
        return self._processes[name]

    @property
    def total_assigned(self) -> float:
        return sum(self._proportions.values())

    # ------------------------------------------------------------------
    # One scheduling period
    # ------------------------------------------------------------------
    def run_period(self) -> Dict[str, float]:
        """Execute one period; returns the proportions used."""
        cfg = self.config
        period_s = cfg.period_ms / 1000.0
        self.periods += 1

        # 1. producers fill queues.
        for process in self._processes.values():
            process.produce(period_s)

        # 2-3. feedback update per process, with anti-windup: while the
        # CPU is over-committed the integral only unwinds (a positive
        # fill error cannot be served anyway, so accumulating it would
        # cause a large overshoot once capacity frees up), and the
        # integral contribution is clamped.
        bound = cfg.integral_limit / cfg.ki if cfg.ki > 0 else float("inf")
        for name, process in self._processes.items():
            error = process.queue_fill - cfg.setpoint  # >0 ⇒ falling behind
            if error < 0 or not self._squeezed_last:
                self._integral[name] += error * period_s
            self._integral[name] = max(-bound, min(bound, self._integral[name]))
            adjust = cfg.kp * error + cfg.ki * self._integral[name]
            target = process.ideal_proportion + adjust
            self._proportions[name] = max(cfg.min_proportion, target)

        # 4. normalise when over-committed.
        total = self.total_assigned
        self._squeezed_last = total > cfg.max_total
        if self._squeezed_last:
            self.squeezes += 1
            scale = cfg.max_total / total
            for name in self._proportions:
                self._proportions[name] *= scale

        # 5. dispatch.
        for name, process in self._processes.items():
            process.run_for(self._proportions[name] * period_s)
        return dict(self._proportions)

    def run_periods(self, count: int) -> None:
        for _ in range(count):
            self.run_period()
