"""Quality-adaptive streaming media player simulation.

The paper motivates gscope with time-sensitive multimedia software and
names "a quality-adaptive streaming media player" (Krasic et al.) among
its users, plus "fill levels of buffers in a pipeline" among the
signals it visualizes.  This package provides that workload:

* :mod:`repro.media.pipeline` — a producer → decoder → renderer
  pipeline of bounded buffers with fill-level signals.
* :mod:`repro.media.player` — the adaptive player: a network source
  with fluctuating bandwidth feeds the pipeline, and a quality
  controller picks the encoding level that keeps the buffers healthy.
"""

from repro.media.pipeline import Pipeline, StageBuffer
from repro.media.player import AdaptivePlayer, PlayerConfig

__all__ = ["AdaptivePlayer", "Pipeline", "PlayerConfig", "StageBuffer"]
