"""The quality-adaptive streaming player.

Models the player of Krasic et al. ("The Case for Streaming Multimedia
with TCP", the paper's reference [14]): the network delivers a variable
bandwidth; the player chooses among encoding quality levels (each with a
bits-per-frame cost) so that the frame rate the network can sustain
keeps the pipeline buffers near a setpoint.  Dropping quality when the
network fades and restoring it when bandwidth returns is the adaptation
the scope makes visible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.media.pipeline import Pipeline


@dataclass
class PlayerConfig:
    """Adaptation and network-model parameters."""

    quality_levels_kbps: List[float] = field(
        default_factory=lambda: [200.0, 400.0, 800.0, 1600.0, 3200.0]
    )
    display_rate_fps: float = 30.0
    upgrade_fill: float = 70.0  # buffer % above which quality steps up
    downgrade_fill: float = 30.0  # buffer % below which quality steps down
    hold_ticks: int = 10  # minimum ticks between quality changes
    mean_bandwidth_kbps: float = 1200.0
    bandwidth_swing: float = 0.6  # relative amplitude of the slow fade
    fade_period_s: float = 20.0
    jitter: float = 0.15  # multiplicative noise per tick
    seed: int = 3


class AdaptivePlayer:
    """Streaming player with buffer-driven quality adaptation."""

    def __init__(self, config: Optional[PlayerConfig] = None) -> None:
        self.config = config if config is not None else PlayerConfig()
        if not self.config.quality_levels_kbps:
            raise ValueError("need at least one quality level")
        self.pipeline = Pipeline(display_rate_fps=self.config.display_rate_fps)
        self.level = len(self.config.quality_levels_kbps) // 2
        self.rng = random.Random(self.config.seed)
        self.time_s = 0.0
        self._hold = 0
        self.quality_changes = 0
        self._frame_credit = 0.0

    # ------------------------------------------------------------------
    # Network model
    # ------------------------------------------------------------------
    def bandwidth_kbps(self) -> float:
        """Slowly fading bandwidth with multiplicative jitter."""
        cfg = self.config
        fade = 1.0 + cfg.bandwidth_swing * math.sin(
            2.0 * math.pi * self.time_s / cfg.fade_period_s
        )
        noise = 1.0 + cfg.jitter * (2.0 * self.rng.random() - 1.0)
        return max(50.0, cfg.mean_bandwidth_kbps * fade * noise)

    # ------------------------------------------------------------------
    # Adaptation
    # ------------------------------------------------------------------
    @property
    def quality_kbps(self) -> float:
        return self.config.quality_levels_kbps[self.level]

    def _adapt(self) -> None:
        cfg = self.config
        if self._hold > 0:
            self._hold -= 1
            return
        fill = self.pipeline.get_network_fill()
        if fill < cfg.downgrade_fill and self.level > 0:
            self.level -= 1
            self.quality_changes += 1
            self._hold = cfg.hold_ticks
        elif fill > cfg.upgrade_fill and self.level < len(cfg.quality_levels_kbps) - 1:
            self.level += 1
            self.quality_changes += 1
            self._hold = cfg.hold_ticks

    # ------------------------------------------------------------------
    # Simulation step
    # ------------------------------------------------------------------
    def tick(self, dt_s: float) -> None:
        """Advance the player by ``dt_s`` seconds."""
        self.time_s += dt_s
        bw = self.bandwidth_kbps()
        bits_per_frame = self.quality_kbps * 1000.0 / self.config.display_rate_fps
        self._frame_credit += bw * 1000.0 * dt_s / bits_per_frame
        frames = int(self._frame_credit)
        self._frame_credit -= frames
        self.pipeline.tick(dt_s, frames)
        self._adapt()

    def run(self, duration_s: float, dt_s: float = 0.1) -> None:
        steps = int(round(duration_s / dt_s))
        for _ in range(steps):
            self.tick(dt_s)

    # ------------------------------------------------------------------
    # Scope signal hooks
    # ------------------------------------------------------------------
    def get_quality_level(self, *_: object) -> float:
        return float(self.level)

    def get_bandwidth(self, *_: object) -> float:
        return self.bandwidth_kbps()

    def get_buffer_fill(self, *_: object) -> float:
        return self.pipeline.get_network_fill()
