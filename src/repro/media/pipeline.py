"""A media pipeline of bounded buffers with fill-level signals.

The canonical gscope workload: data flows producer → decoder → renderer
through bounded queues, and the interesting live signals are the fill
levels — precisely what Section 1 cites ("fill levels of buffers in a
pipeline").  Stages move whole frames; a stage's throughput per tick is
bounded by its rate and by downstream space (back-pressure).
"""

from __future__ import annotations

from typing import Dict, List, Optional


class StageBuffer:
    """A bounded FIFO between two pipeline stages (frame-granular)."""

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.name = name
        self.capacity = int(capacity)
        self.frames = 0
        self.total_in = 0
        self.total_out = 0
        self.overflow_drops = 0

    @property
    def space(self) -> int:
        return self.capacity - self.frames

    @property
    def fill_percent(self) -> float:
        """Fill level 0..100 — the scope signal."""
        return 100.0 * self.frames / self.capacity

    def offer(self, count: int) -> int:
        """Push up to ``count`` frames; returns how many were accepted."""
        if count < 0:
            raise ValueError(f"count must be non-negative: {count}")
        accepted = min(count, self.space)
        self.frames += accepted
        self.total_in += accepted
        self.overflow_drops += count - accepted
        return accepted

    def take(self, count: int) -> int:
        """Pop up to ``count`` frames; returns how many came out."""
        if count < 0:
            raise ValueError(f"count must be non-negative: {count}")
        taken = min(count, self.frames)
        self.frames -= taken
        self.total_out += taken
        return taken


class Pipeline:
    """producer → [network buffer] → decoder → [decoded buffer] → renderer.

    The decoder moves frames between the two buffers at a bounded rate;
    the renderer consumes at the display rate.  The caller injects
    arriving frames per tick (the network side) via :meth:`tick`.
    """

    def __init__(
        self,
        network_capacity: int = 60,
        decoded_capacity: int = 30,
        decode_rate_fps: float = 60.0,
        display_rate_fps: float = 30.0,
    ) -> None:
        if decode_rate_fps <= 0 or display_rate_fps <= 0:
            raise ValueError("stage rates must be positive")
        self.network_buffer = StageBuffer("network", network_capacity)
        self.decoded_buffer = StageBuffer("decoded", decoded_capacity)
        self.decode_rate_fps = float(decode_rate_fps)
        self.display_rate_fps = float(display_rate_fps)
        self.displayed = 0
        self.display_misses = 0  # render ticks with an empty buffer
        self._decode_credit = 0.0
        self._display_credit = 0.0

    def tick(self, dt_s: float, arriving_frames: int) -> None:
        """Advance the pipeline by ``dt_s`` with ``arriving_frames`` in."""
        if dt_s <= 0:
            raise ValueError(f"dt must be positive: {dt_s}")
        self.network_buffer.offer(arriving_frames)

        # Decoder: bounded by rate, input availability and output space.
        self._decode_credit += self.decode_rate_fps * dt_s
        can_decode = int(self._decode_credit)
        moved = min(
            can_decode, self.network_buffer.frames, self.decoded_buffer.space
        )
        self.network_buffer.take(moved)
        self.decoded_buffer.offer(moved)
        self._decode_credit -= moved if moved < can_decode else can_decode

        # Renderer: consumes at the display rate; misses when starved.
        self._display_credit += self.display_rate_fps * dt_s
        want = int(self._display_credit)
        got = self.decoded_buffer.take(want)
        self.displayed += got
        self.display_misses += want - got
        self._display_credit -= want

    # ------------------------------------------------------------------
    # Scope signal hooks
    # ------------------------------------------------------------------
    def get_network_fill(self, *_: object) -> float:
        return self.network_buffer.fill_percent

    def get_decoded_fill(self, *_: object) -> float:
        return self.decoded_buffer.fill_percent

    def buffers(self) -> List[StageBuffer]:
        return [self.network_buffer, self.decoded_buffer]

    def stats(self) -> Dict[str, float]:
        return {
            "displayed": self.displayed,
            "display_misses": self.display_misses,
            "network_drops": self.network_buffer.overflow_drops,
        }
