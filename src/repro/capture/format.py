"""On-disk layout of the segmented columnar capture store.

A capture is a directory of segment files (``00000000.gseg``,
``00000001.gseg``, ...).  Each segment is self-contained — its own
interned name table, its own index — so a writer killed mid-segment
loses at most the segment it was building; every previously completed
segment stays readable.

Segment layout (all integers little-endian, all floats ``float64``)::

    HEADER (60 bytes)
      0   4   magic           "GSCP"
      4   2   version         1
      6   2   reserved        0
      8   4   segment_index   ordinal of this segment in the capture
      12  4   name_count      entries in the name table
      16  4   block_count     entries in the directory
      20  8   t_min           smallest sample timestamp in the segment
      28  8   t_max           largest sample timestamp in the segment
      36  8   now_first       push instant of the first block
      44  8   now_last        push instant of the last block
      52  4   name_table_bytes
      56  4   header_crc      CRC32 of bytes [0, 56)
    NAME TABLE (name_table_bytes)
      name_count x (u32 length + UTF-8 bytes); the n-th entry binds
      name id n for this segment.
    BODY
      one block per recorded push, back to back: ``count`` float64
      timestamps followed by ``count`` float64 values.  Blocks carry no
      inline header — all block metadata lives in the directory.
    DIRECTORY (at dir_offset, block_count x 48 bytes, see DIR_DTYPE)
      name_id u32, count u32, push_now f64, t_min f64, t_max f64,
      offset u64 (absolute file offset of the times column),
      flags u32 (bit 0: timestamps sorted ascending), crc u32
      (CRC32 of the block's times++values bytes).
    TRAILER (16 bytes)
      dir_offset u64, dir_crc u32 (CRC32 of the directory bytes),
      magic "GSCF"

The trailer is written last, so a torn write is detectable by its
missing magic or by the exact-size invariant
``file_size == dir_offset + 48 * block_count + 16``.  The directory
doubles as the segment's time index: ``push_now`` is non-decreasing in
block order (capture clock monotonicity) and the running maximum of
``t_max`` is the monotone key that :meth:`CaptureReader.seek` binary
searches for O(log n) timestamp seeks.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

SEGMENT_SUFFIX = ".gseg"
SEGMENT_MAGIC = b"GSCP"
TRAILER_MAGIC = b"GSCF"
VERSION = 1

#: Header: magic, version, reserved, segment_index, name_count,
#: block_count, t_min, t_max, now_first, now_last, name_table_bytes,
#: header_crc.
HEADER_STRUCT = struct.Struct("<4sHHIIIddddII")
HEADER_SIZE = HEADER_STRUCT.size  # 60
#: The header CRC covers everything before the crc field itself.
HEADER_CRC_SPAN = HEADER_SIZE - 4

#: Trailer: dir_offset, dir_crc, magic.
TRAILER_STRUCT = struct.Struct("<QI4s")
TRAILER_SIZE = TRAILER_STRUCT.size  # 16

#: One directory entry per block (48 bytes).
DIR_DTYPE = np.dtype(
    [
        ("name_id", "<u4"),
        ("count", "<u4"),
        ("push_now", "<f8"),
        ("t_min", "<f8"),
        ("t_max", "<f8"),
        ("offset", "<u8"),
        ("flags", "<u4"),
        ("crc", "<u4"),
    ]
)
DIR_ENTRY_SIZE = DIR_DTYPE.itemsize  # 48

#: Directory flags.
FLAG_TIMES_SORTED = 0x1

_NAME_LEN = struct.Struct("<I")


class CaptureFormatError(ValueError):
    """Raised when a capture segment is malformed, truncated or corrupt.

    Every decoder failure — bad magic, CRC mismatch, impossible counts,
    out-of-range name ids, mid-header EOF — raises this type so callers
    can fail closed without catching bare ``ValueError`` or, worse,
    consuming wrong columns.
    """


def segment_filename(index: int) -> str:
    """Canonical file name of segment ``index`` (zero-padded, sortable)."""
    return f"{index:08d}{SEGMENT_SUFFIX}"


def pack_name_table(names: List[str]) -> bytes:
    """Serialise the interned name table (id = position)."""
    pieces = []
    for name in names:
        raw = name.encode("utf-8")
        pieces.append(_NAME_LEN.pack(len(raw)))
        pieces.append(raw)
    return b"".join(pieces)


def unpack_name_table(raw: bytes, name_count: int) -> List[str]:
    """Decode the name table; raises on truncation or bad UTF-8."""
    names: List[str] = []
    pos = 0
    for _ in range(name_count):
        if pos + _NAME_LEN.size > len(raw):
            raise CaptureFormatError(
                f"name table truncated after {len(names)} of {name_count} names"
            )
        (length,) = _NAME_LEN.unpack_from(raw, pos)
        pos += _NAME_LEN.size
        if pos + length > len(raw):
            raise CaptureFormatError(
                f"name table entry {len(names)} runs past the table "
                f"({length} bytes at offset {pos}, table is {len(raw)})"
            )
        try:
            names.append(raw[pos : pos + length].decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise CaptureFormatError(
                f"name table entry {len(names)} is not valid UTF-8"
            ) from exc
        pos += length
    if pos != len(raw):
        raise CaptureFormatError(
            f"name table has {len(raw) - pos} trailing bytes after "
            f"{name_count} names"
        )
    return names


@dataclass(frozen=True)
class SegmentHeader:
    """Decoded fixed header of one segment file."""

    segment_index: int
    name_count: int
    block_count: int
    t_min: float
    t_max: float
    now_first: float
    now_last: float
    name_table_bytes: int


def pack_header(header: SegmentHeader, header_crc: int) -> bytes:
    return HEADER_STRUCT.pack(
        SEGMENT_MAGIC,
        VERSION,
        0,
        header.segment_index,
        header.name_count,
        header.block_count,
        header.t_min,
        header.t_max,
        header.now_first,
        header.now_last,
        header.name_table_bytes,
        header_crc,
    )


def unpack_header(raw: bytes) -> Tuple[SegmentHeader, int]:
    """Decode the fixed header; returns ``(header, stored_crc)``."""
    if len(raw) < HEADER_SIZE:
        raise CaptureFormatError(
            f"segment header truncated: {len(raw)} bytes < {HEADER_SIZE}"
        )
    (
        magic,
        version,
        _reserved,
        segment_index,
        name_count,
        block_count,
        t_min,
        t_max,
        now_first,
        now_last,
        name_table_bytes,
        header_crc,
    ) = HEADER_STRUCT.unpack_from(raw)
    if magic != SEGMENT_MAGIC:
        raise CaptureFormatError(f"bad segment magic: {magic!r}")
    if version != VERSION:
        raise CaptureFormatError(f"unsupported capture version: {version}")
    header = SegmentHeader(
        segment_index=segment_index,
        name_count=name_count,
        block_count=block_count,
        t_min=t_min,
        t_max=t_max,
        now_first=now_first,
        now_last=now_last,
        name_table_bytes=name_table_bytes,
    )
    return header, header_crc


def pack_trailer(dir_offset: int, dir_crc: int) -> bytes:
    return TRAILER_STRUCT.pack(dir_offset, dir_crc, TRAILER_MAGIC)


def unpack_trailer(raw: bytes) -> Tuple[int, int]:
    """Decode the trailer; returns ``(dir_offset, dir_crc)``."""
    if len(raw) < TRAILER_SIZE:
        raise CaptureFormatError(
            f"segment trailer truncated: {len(raw)} bytes < {TRAILER_SIZE}"
        )
    dir_offset, dir_crc, magic = TRAILER_STRUCT.unpack(raw[-TRAILER_SIZE:])
    if magic != TRAILER_MAGIC:
        raise CaptureFormatError(
            f"bad trailer magic: {magic!r} (torn or unfinished segment)"
        )
    return dir_offset, dir_crc
