"""The capture writer: live columnar batches → segment files.

A :class:`CaptureWriter` is a *tap*: it is callable with the exact
``(name, times, values, now_ms)`` shape that
:meth:`~repro.core.manager.ScopeManager.push_samples` receives, so
attaching one to a manager (``manager.add_tap(writer)``) records every
offered sample — accepted *and* late-dropped — with near-zero hot-path
cost: one truthiness check when no tap is attached, two ``memcpy``-sized
array copies per pushed batch when one is.

Recording the offered stream (with its push instant) rather than the
displayed stream is what makes replay *checkable*: re-pushing the same
columns at the same clock instants reproduces every accept/late-drop
decision bit for bit (see :mod:`repro.capture.replay`).

Blocks accumulate in memory and are flushed as one self-contained
segment file every ``segment_samples`` samples.  Segments are written in
a single ``write`` call with the trailer last, so a writer killed
mid-segment leaves all previously flushed segments readable.
"""

from __future__ import annotations

import math
import time
import zlib
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.cells import Counter, Histogram

from repro.capture.format import (
    HEADER_SIZE,
    FLAG_TIMES_SORTED,
    DIR_DTYPE,
    SEGMENT_SUFFIX,
    SegmentHeader,
    pack_header,
    pack_name_table,
    pack_trailer,
    segment_filename,
)

ArrayLike = Union[Sequence[float], np.ndarray]

#: name, times, values, push instant — one recorded push.
_PendingBlock = Tuple[str, np.ndarray, np.ndarray, float]

#: Writer ledger counters, cell-backed so ``register_metrics`` can mount
#: them; the legacy attributes read the same cells.
_COUNTER_FIELDS = (
    "samples_written",
    "blocks_written",
    "segments_written",
    "bytes_written",
)


def _cell_property(field: str) -> property:
    def _get(self):
        return self._cells[field].value

    def _set(self, value):
        self._cells[field].value = value

    return property(_get, _set)


class CaptureWriter:
    """Writes a segmented columnar capture store to a directory.

    Parameters
    ----------
    path:
        Capture directory (created if missing; must not already contain
        segment files — captures are append-once).
    segment_samples:
        Flush a segment once at least this many samples are pending.
        Blocks are never split across segments, so a segment can exceed
        the threshold by up to one batch.
    default_name:
        Signal name used by the :meth:`record`/:meth:`record_many`
        compatibility API when no name is given (mirrors
        :class:`~repro.core.tuples.Player.default_name`).
    """

    def __init__(
        self,
        path: Union[str, Path],
        segment_samples: int = 1 << 16,
        default_name: str = "signal",
    ) -> None:
        if segment_samples <= 0:
            raise ValueError(f"segment_samples must be positive: {segment_samples}")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        existing = sorted(self.path.glob(f"*{SEGMENT_SUFFIX}"))
        if existing:
            raise ValueError(
                f"capture directory {self.path} already holds segments "
                f"(first: {existing[0].name}); captures are append-once"
            )
        self.segment_samples = int(segment_samples)
        self.default_name = default_name
        self._pending: List[_PendingBlock] = []
        self._pending_samples = 0
        self._next_segment = 0
        self._last_now: Optional[float] = None
        self._closed = False
        # Stats for tests and benchmarks — cell-backed, one source of
        # truth shared with register_metrics.  Flush latency is real
        # wall time, so its histogram is wall=True: scrape-only, never
        # published (publishing it would break bit-replay).
        self._cells = {k: Counter(k) for k in _COUNTER_FIELDS}
        self._flush_ms = Histogram("flush_ms", wall=True)
        self._perf = time.perf_counter

    # Legacy counter attributes, now views over the ledger cells.
    samples_written = _cell_property("samples_written")
    blocks_written = _cell_property("blocks_written")
    segments_written = _cell_property("segments_written")
    bytes_written = _cell_property("bytes_written")

    def register_metrics(self, registry, prefix: str = "capture.") -> None:
        """Mount the writer ledger plus a pending-backlog gauge."""
        for key in _COUNTER_FIELDS:
            registry.mount(prefix + key, self._cells[key])
        registry.mount(f"{prefix}flush_ms", self._flush_ms)
        registry.gauge(
            f"{prefix}pending_samples", fn=lambda: float(self._pending_samples)
        )

    # ------------------------------------------------------------------
    # The tap interface (what managers/scopes call on every push)
    # ------------------------------------------------------------------
    def on_push(
        self, name: str, times: ArrayLike, values: ArrayLike, now_ms: float
    ) -> None:
        """Record one pushed batch at push instant ``now_ms``.

        The columns are copied immediately — producers routinely reuse
        their batch buffers — so the capture is a stable snapshot.
        """
        if self._closed:
            raise ValueError(f"capture writer {self.path} is closed")
        t = np.array(times, dtype=np.float64, copy=True)
        v = np.array(values, dtype=np.float64, copy=True)
        if t.shape != v.shape or t.ndim != 1:
            raise ValueError(
                f"times and values must be equal-length 1-D: {t.shape} vs {v.shape}"
            )
        n = t.shape[0]
        if n == 0:
            return
        now = float(now_ms)
        if not math.isfinite(now):
            # Sample timestamps may be NaN (the buffer accepts them),
            # but the push instant is the replay schedule — a NaN here
            # would become a NaN event-loop deadline.
            raise ValueError(f"push instant must be finite: {now}")
        if self._last_now is not None and now < self._last_now:
            raise ValueError(
                f"push instant {now} precedes previous {self._last_now}; "
                "the capture clock must be monotonic"
            )
        self._last_now = now
        self._pending.append((name, t, v, now))
        self._pending_samples += n
        if self._pending_samples >= self.segment_samples:
            self.flush_segment()

    #: A writer *is* a tap: ``manager.add_tap(writer)`` just works.
    __call__ = on_push

    # ------------------------------------------------------------------
    # Recorder-compatible API (display-stream captures, text import)
    # ------------------------------------------------------------------
    def record(self, time_ms: float, value: float, name: Optional[str] = None) -> None:
        """Append one sample (:meth:`~repro.core.tuples.Recorder.record`).

        The push instant defaults to the sample's own timestamp, which
        replays such a capture as an always-on-time stream.  Non-finite
        timestamps fall back to the previous instant (the schedule must
        stay finite and monotone even where sample times are NaN).
        """
        t = float(time_ms)
        now = t if math.isfinite(t) else float("-inf")
        if self._last_now is not None:
            now = max(now, self._last_now)
        if not math.isfinite(now):
            now = 0.0
        self.on_push(name or self.default_name, (t,), (float(value),), now)

    def record_many(
        self,
        times: Sequence[float],
        values: Sequence[float],
        names: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        """Append a batch (:meth:`~repro.core.tuples.Recorder.record_many`).

        Consecutive same-name runs become one columnar block each, so a
        merged multi-signal recording costs one block per run, not per
        sample.
        """
        n = len(times)
        if n == 0:
            return
        if names is None:
            run_names: Sequence[Optional[str]] = [None] * n
        else:
            run_names = names
        i = 0
        while i < n:
            name = run_names[i] or self.default_name
            j = i + 1
            while j < n and (run_names[j] or self.default_name) == name:
                j += 1
            t = np.asarray(times[i:j], dtype=np.float64)
            finite = t[np.isfinite(t)]
            now = float(finite.max()) if finite.shape[0] else float("-inf")
            if self._last_now is not None:
                now = max(now, self._last_now)
            if not math.isfinite(now):
                now = 0.0
            self.on_push(name, t, np.asarray(values[i:j], dtype=np.float64), now)
            i = j

    # ------------------------------------------------------------------
    # Segment serialisation
    # ------------------------------------------------------------------
    def flush_segment(self) -> Optional[Path]:
        """Serialise pending blocks as one segment file; None when empty."""
        if not self._pending:
            return None
        blocks, self._pending = self._pending, []
        self._pending_samples = 0

        id_of_name = {}
        names: List[str] = []
        directory = np.zeros(len(blocks), dtype=DIR_DTYPE)
        body: List[bytes] = []
        rel_offset = 0
        for i, (name, t, v, now) in enumerate(blocks):
            name_id = id_of_name.get(name)
            if name_id is None:
                name_id = len(names)
                id_of_name[name] = name_id
                names.append(name)
            tb = t.tobytes()
            vb = v.tobytes()
            # NaN timestamps are recordable (the buffer keeps them on
            # the accept side) but must not poison the seek index: a
            # NaN never satisfies `time >= t`, so it is excluded from
            # the block's range (an all-NaN block indexes as -inf and
            # is never a seek target) and disables the sorted fast path.
            non_nan = t[~np.isnan(t)]
            if non_nan.shape[0]:
                t_min, t_max = float(non_nan.min()), float(non_nan.max())
            else:
                t_min = t_max = float("-inf")
            sorted_flag = (
                FLAG_TIMES_SORTED
                if non_nan.shape[0] == t.shape[0]
                and (t.shape[0] < 2 or bool(np.all(t[1:] >= t[:-1])))
                else 0
            )
            directory[i] = (
                name_id,
                t.shape[0],
                now,
                t_min,
                t_max,
                rel_offset,  # rebased below once the table size is known
                sorted_flag,
                zlib.crc32(vb, zlib.crc32(tb)),
            )
            body.append(tb)
            body.append(vb)
            rel_offset += len(tb) + len(vb)

        name_table = pack_name_table(names)
        body_offset = HEADER_SIZE + len(name_table)
        directory["offset"] += body_offset
        dir_bytes = directory.tobytes()
        header = SegmentHeader(
            segment_index=self._next_segment,
            name_count=len(names),
            block_count=len(blocks),
            t_min=float(directory["t_min"].min()),
            t_max=float(directory["t_max"].max()),
            now_first=float(directory["push_now"][0]),
            now_last=float(directory["push_now"][-1]),
            name_table_bytes=len(name_table),
        )
        head_no_crc = pack_header(header, 0)[: HEADER_SIZE - 4]
        payload = b"".join(
            [
                head_no_crc,
                zlib.crc32(head_no_crc).to_bytes(4, "little"),
                name_table,
                *body,
                dir_bytes,
                pack_trailer(body_offset + rel_offset, zlib.crc32(dir_bytes)),
            ]
        )
        # One write, trailer last: a killed writer leaves either a whole
        # segment or a torn one the reader rejects — never a silently
        # half-decoded one.  (Durability against OS crash would need an
        # fsync here; process death is the failure mode we recover.)
        target = self.path / segment_filename(self._next_segment)
        t0 = self._perf()
        with open(target, "wb") as fh:
            fh.write(payload)
        self._flush_ms.observe((self._perf() - t0) * 1000.0)
        self._next_segment += 1
        self._cells["segments_written"].inc()
        self._cells["blocks_written"].inc(len(blocks))
        self._cells["samples_written"].inc(int(directory["count"].sum()))
        self._cells["bytes_written"].inc(len(payload))
        return target

    def close(self) -> None:
        """Flush the partial segment and seal the writer."""
        if self._closed:
            return
        self.flush_segment()
        self._closed = True

    def __enter__(self) -> "CaptureWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def capture_sharded(sharded, root: Union[str, Path], **writer_opts) -> List[CaptureWriter]:
    """Capture a sharded fan-in: one segment stream per shard.

    Attaches one :class:`CaptureWriter` (under ``root/shard-NN/``) as a
    tap on each per-shard manager of a
    :class:`~repro.net.shard.ShardedScopeManager`, so every shard's
    offered stream lands in its own store.  Replay each store into the
    matching (or a fresh) sharded manager — routing is a stable hash of
    the name, so the streams re-partition identically.
    """
    writers: List[CaptureWriter] = []
    for index, manager in enumerate(sharded.managers):
        writer = CaptureWriter(Path(root) / f"shard-{index:02d}", **writer_opts)
        manager.add_tap(writer)
        writers.append(writer)
    return writers
