"""Replay: re-driving a live system from a capture store.

A :class:`ReplaySource` is an event-loop :class:`~repro.eventloop.sources.Source`
that re-pushes a capture's recorded batches into anything exposing the
manager push protocol (``push_samples(name, times, values)`` — a
:class:`~repro.core.manager.ScopeManager`, a
:class:`~repro.net.shard.ShardedScopeManager`, or a single
:class:`~repro.core.scope.Scope`).  It is the Section 3.3 player for the
columnar store: play, pause, resume, seek, rewind, and an arbitrary
replay rate.

Determinism contract
--------------------

At ``rate=1.0`` with no explicit start (the default), batches are
re-pushed at the **exact clock instants** the capture recorded, with the
**exact recorded timestamps** — no arithmetic touches either float64
column.  Driving a fresh manager configured like the original through
``run_until`` therefore reproduces every accept/late-drop decision and
every trace byte for byte (the late-drop predicate compares the same
floats against the same clock values).

``seek`` and ``rewind`` preserve that exactness: on the undisturbed
capture timeline they jump within the original schedule (a position
behind the clock delivers its backlog immediately, like the text
player's ``advance_to`` after ``rewind``).  Any configuration that
leaves the capture timeline — ``rate != 1``, ``start_at=``, ``resume``
after a pause, or a mid-replay ``set_rate`` — maps both push instants
and sample timestamps through one affine transform
``f(x) = anchor_wall + (x - anchor_capture) / rate``, which scales every
inter-sample gap by ``1/rate`` (2x replay halves spacing, 0.5x doubles
it) while keeping each sample's timestamp in lockstep with its delivery
instant.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.capture.reader import CaptureReader, Position
from repro.eventloop.sources import Priority, Source

#: Same readiness epsilon as TimeoutSource, so replay deadlines and
#: timer deadlines landing on one instant dispatch in the same batch.
_READY_EPS = 1e-9


class ReplaySource(Source):
    """Event-loop source that re-pushes captured batches on schedule.

    Parameters
    ----------
    reader:
        The capture store (or a path to one).
    target:
        Receiver of ``push_samples(name, times, values)`` calls.
    rate:
        Playback speed multiplier (2.0 = twice as fast).  Must be > 0.
    start_at:
        Clock instant (ms) at which the first pending batch should
        replay.  None (default) keeps the capture's own timeline.
    """

    def __init__(
        self,
        reader: Union[CaptureReader, str],
        target,
        rate: float = 1.0,
        start_at: Optional[float] = None,
        priority: Priority = Priority.DEFAULT,
    ) -> None:
        super().__init__(self._never_called, priority)
        if rate <= 0:
            raise ValueError(f"replay rate must be positive: {rate}")
        self.reader = (
            reader if isinstance(reader, CaptureReader) else CaptureReader(reader)
        )
        self.target = target
        # Captures can hold recorded `__obs.` telemetry; replaying those
        # rows needs the sink's trusted entry (when it has one).
        self._push_obs = getattr(target, "push_obs", None)
        self._rate = float(rate)
        self._start_at = start_at
        # Flat (segment, block) schedule; data stays mmapped until used.
        self._schedule = [
            (seg_index, block_index)
            for seg_index, segment in enumerate(self.reader.segments)
            for block_index in range(segment.block_count)
        ]
        # Blocks before each segment, so a Position maps to its flat
        # cursor in O(1) and seek stays O(log n) end to end.
        self._block_prefix = [0]
        for segment in self.reader.segments:
            self._block_prefix.append(self._block_prefix[-1] + segment.block_count)
        self._cursor = 0
        self._offset = 0  # intra-block offset (mid-block seek landing)
        self._paused = False
        # Affine time map: wall = anchor_wall + (capture - anchor_capture)/rate.
        # None anchor_wall = anchor lazily at the next probe.  Until a
        # seek/rewind/resume disturbs the timeline, rate-1 playback is an
        # identity map and both columns pass through untouched.
        self._anchor_wall: Optional[float] = None
        self._anchor_capture = 0.0
        self._identity_ok = start_at is None and self._rate == 1.0
        self.delivered_samples = 0
        self.delivered_blocks = 0

    @staticmethod
    def _never_called() -> bool:  # pragma: no cover - dispatch is overridden
        return True

    # ------------------------------------------------------------------
    # Time mapping
    # ------------------------------------------------------------------
    def _anchor(self, now_ms: float) -> None:
        seg, block = self._schedule[self._cursor]
        self._anchor_capture = float(
            self.reader.segments[seg].directory[block]["push_now"]
        )
        if self._start_at is not None:
            self._anchor_wall = float(self._start_at)
            self._start_at = None
        elif self._identity_ok:
            self._anchor_wall = self._anchor_capture
        else:
            self._anchor_wall = float(now_ms)

    @property
    def _exact(self) -> bool:
        return self._anchor_wall == self._anchor_capture and self._rate == 1.0

    def _wall_of(self, capture_ms: float) -> float:
        if self._exact:
            return capture_ms
        assert self._anchor_wall is not None
        return self._anchor_wall + (capture_ms - self._anchor_capture) / self._rate

    def _next_wall(self, now_ms: float) -> Optional[float]:
        if self._paused or self._cursor >= len(self._schedule):
            return None
        if self._anchor_wall is None:
            self._anchor(now_ms)
        seg, block = self._schedule[self._cursor]
        return self._wall_of(
            float(self.reader.segments[seg].directory[block]["push_now"])
        )

    # ------------------------------------------------------------------
    # Source protocol
    # ------------------------------------------------------------------
    def ready(self, now_ms: float) -> bool:
        wall = self._next_wall(now_ms)
        return wall is not None and now_ms >= wall - _READY_EPS

    def next_deadline(self, now_ms: float) -> Optional[float]:
        return self._next_wall(now_ms)

    def dispatch(self, now_ms: float) -> bool:
        """Deliver every batch whose mapped push instant has arrived.

        Returns False — detaching the source — once the schedule is
        exhausted, so a loop with nothing else to do terminates instead
        of polling a source that can never fire again.  After
        :meth:`rewind`/:meth:`seek`, re-``attach`` the source to play
        again.  A *paused* source stays attached: resume revives it.
        """
        while True:
            wall = self._next_wall(now_ms)
            if wall is None:
                return self._paused or not self.exhausted
            if now_ms < wall - _READY_EPS:
                return True
            seg, block_index = self._schedule[self._cursor]
            block = self.reader.segments[seg].block(block_index)
            times, values = block.times, block.values
            if self._offset:
                times = times[self._offset :]
                values = values[self._offset :]
            if not self._exact:
                times = self._anchor_wall + (times - self._anchor_capture) / self._rate
            name = block.name
            if name.startswith("__obs.") and self._push_obs is not None:
                # Recorded self-instrumentation replays through the
                # trusted entry — the manager boundary rejects reserved
                # names on the ordinary push path.
                self._push_obs(name, times, values)
            else:
                self.target.push_samples(name, times, values)
            self.delivered_samples += times.shape[0]
            self.delivered_blocks += 1
            self._cursor += 1
            self._offset = 0

    # ------------------------------------------------------------------
    # Player controls (Section 3.3)
    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._schedule)

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def rate(self) -> float:
        return self._rate

    def pause(self) -> None:
        """Freeze playback; pending batches stay pending."""
        self._paused = True

    def resume(self) -> None:
        """Resume after :meth:`pause`, re-anchored at the current clock.

        The remaining schedule replays with its inter-batch spacing
        intact — paused wall time is not "caught up" in a burst.
        """
        if not self._paused:
            return
        self._paused = False
        self._reanchor()

    def set_rate(self, rate: float) -> None:
        """Change playback speed mid-replay (re-anchors at the clock)."""
        if rate <= 0:
            raise ValueError(f"replay rate must be positive: {rate}")
        self._rate = float(rate)
        self._reanchor()

    def seek(self, t: float) -> Position:
        """Jump so the next delivered sample is the first with time >= ``t``.

        Uses the store's O(log n) directory index.  On the undisturbed
        capture timeline the remaining stream keeps its original push
        instants and timestamps (seeking backwards past the clock
        delivers the backlog immediately); a re-based replay re-anchors
        at the current clock.
        """
        position = self.reader.seek(t)
        self.seek_position(position)
        return position

    def seek_position(self, position: Position) -> None:
        """Jump to an explicit :class:`Position` (e.g. from the reader)."""
        if position.segment >= len(self.reader.segments):
            self._cursor = len(self._schedule)
        else:
            self._cursor = self._block_prefix[position.segment] + position.block
        self._offset = position.offset if not self.exhausted else 0
        self._reanchor(keep_identity=True)

    def rewind(self) -> None:
        """Restart from the first batch (:meth:`~repro.core.tuples.Player.rewind`).

        On the undisturbed capture timeline this matches the text
        player exactly: the whole stream re-delivers with its original
        timestamps, immediately if the clock is already past them —
        just as :meth:`Player.rewind` followed by ``advance_to`` does.
        A re-based replay (rate/seek/resume touched the timeline)
        re-anchors at the current clock and re-paces instead.

        An exhausted source has detached itself from its loop; after
        rewinding, ``loop.attach(source)`` starts the second pass.
        """
        self._cursor = 0
        self._offset = 0
        self._reanchor(keep_identity=True)

    def _reanchor(self, keep_identity: bool = False) -> None:
        self._anchor_wall = None
        if not keep_identity:
            self._identity_ok = False


def catch_up(reader, target, loop, through_ms: float) -> ReplaySource:
    """Replay a capture into ``target`` up to and including ``through_ms``.

    The recovery primitive behind supervised shard restart: attach an
    exact-timeline :class:`ReplaySource` to ``loop`` (typically a fresh
    private loop at t=0) and drive the loop *through* ``through_ms`` —
    inclusive, so a batch recorded exactly at the deadline is delivered,
    and so are any of the target's own sources due at that instant, in
    plain (priority, id) dispatch order.  Because the replayed stream
    re-delivers at the recorded instants with the recorded timestamps,
    the target ends byte-identical to one that lived through the
    original traffic up to ``through_ms``.

    The source is attached *after* the target's existing sources, so at
    any shared instant the target's timers dispatch before the replayed
    push — the same order a live push (run loop, then push) produces.

    Returns the (possibly exhausted) :class:`ReplaySource` so the caller
    can inspect ``delivered_samples`` or keep replaying the tail.
    """
    source = ReplaySource(reader, target)
    loop.attach(source)
    loop.run_through(through_ms)
    return source
