"""Columnar capture store: segmented on-disk recording and replay.

The storage leg of the columnar pipeline (Section 3.3's record/replay at
binary-wire speed):

* :class:`CaptureWriter` — a push *tap* writing segmented, CRC-protected
  columnar segment files (:mod:`repro.capture.format`).
* :class:`CaptureReader` — mmapped, validated access with indexed
  O(log n) timestamp seek.
* :class:`ReplaySource` — an event-loop source that re-drives a manager,
  sharded manager or scope from a store: play / pause / seek / rewind /
  rate, bit-exact at rate 1.
* :func:`export_text` / :func:`import_text` — the Section 3.3 tuple text
  format as a lossless interchange codec for the same data.
* :func:`capture_sharded` — one segment stream per shard of a
  :class:`~repro.net.shard.ShardedScopeManager`.
"""

from repro.capture.convert import export_text, import_text
from repro.capture.format import CaptureFormatError
from repro.capture.reader import Block, CaptureReader, Position
from repro.capture.replay import ReplaySource, catch_up
from repro.capture.writer import CaptureWriter, capture_sharded

__all__ = [
    "Block",
    "CaptureFormatError",
    "CaptureReader",
    "CaptureWriter",
    "Position",
    "ReplaySource",
    "capture_sharded",
    "catch_up",
    "export_text",
    "import_text",
]
