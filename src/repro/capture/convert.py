"""Text ↔ capture conversion: the Section 3.3 tuple format as a codec.

The textual ``time value name`` format stays the interchange and
compatibility representation of recorded data (human-readable files,
old clients, ``recorded_signals.tuples``); the binary segment store is
the performance representation.  These adapters move between them
losslessly: text rendering is ``repr``-exact for float64 (see
:func:`repro.core.tuples.format_tuple`), so a capture exported to text
and re-imported reproduces the identical columns.
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import IO, Iterable, Union

from repro.capture.reader import CaptureReader
from repro.capture.writer import CaptureWriter
from repro.core.tuples import Recorder, parse_stream


def export_text(
    reader: Union[CaptureReader, str, Path],
    sink: Union[IO[str], str],
    single_signal: bool = False,
    header: bool = True,
) -> int:
    """Write a capture store as a tuple-format text file; returns tuples written.

    The text format requires non-decreasing times, while a captured
    *offered* stream may jitter backwards (samples stamped slightly in
    the past), so tuples are emitted in timestamp order with stream
    order breaking ties.  Returns the number of tuples written.
    """
    if not isinstance(reader, CaptureReader):
        reader = CaptureReader(reader)
    times, values, ids = reader.sorted_columns()
    names = reader.names
    recorder = Recorder(sink, single_signal=single_signal)
    try:
        if header:
            recorder.comment(
                f"exported from capture store {reader.path.name}: "
                f"{times.shape[0]} samples, {len(names)} signals"
            )
        recorder.record_many(
            times.tolist(),
            values.tolist(),
            [names[i] for i in ids.tolist()],
        )
    finally:
        recorder.close()
    return int(times.shape[0])


def import_text(
    source: Union[IO[str], str, Iterable[str]],
    dest: Union[str, Path],
    **writer_opts,
) -> CaptureWriter:
    """Build a capture store from a tuple-format text source.

    ``source`` is a path to an existing tuple file, inline tuple text,
    an open file, or a line iterable.  Each tuple's push instant is its
    own timestamp, so replaying the imported store presents every
    sample exactly on time — the semantics of playback-mode acquisition.
    Returns the closed :class:`CaptureWriter` (for its stats).
    """
    if isinstance(source, str) and "\n" not in source and os.path.exists(source):
        with open(source) as fh:
            lines: Iterable[str] = fh.read().splitlines()
    elif isinstance(source, str):
        lines = source.splitlines()
    elif isinstance(source, io.IOBase) or hasattr(source, "read"):
        lines = source.read().splitlines()  # type: ignore[union-attr]
    else:
        lines = source
    with CaptureWriter(dest, **writer_opts) as writer:
        parsed = list(parse_stream(lines))
        writer.record_many(
            [p.time_ms for p in parsed],
            [p.value for p in parsed],
            [p.name for p in parsed],
        )
    return writer
