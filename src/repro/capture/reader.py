"""The capture reader: mmapped segments, indexed O(log n) seek.

A :class:`CaptureReader` opens every segment of a capture directory,
validates its structure up front (magics, header CRC, directory CRC,
exact-size invariant, name-id and offset bounds) and memory-maps the
bodies, so reading a block is ``np.frombuffer`` over the mapping — no
parsing, no copies.  Block payload CRCs are verified lazily, once, on
first access.

Seeking by timestamp uses the directory as an index.  Captured sample
timestamps are *not* globally sorted (a jittered producer stamps samples
slightly in the past), but the running maximum of per-block ``t_max`` is
monotone in stream order, so "the first tuple with time >= t" is found
with two binary searches — segments, then blocks — plus one bounded
in-block scan: O(log n + block size).

Every structural failure raises the typed
:class:`~repro.capture.format.CaptureFormatError`; the reader never
returns wrong columns.  ``recover_tail=True`` additionally skips a
torn/corrupt *final* segment — the crash-recovery mode for stores whose
writer died mid-flush.
"""

from __future__ import annotations

import mmap
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.capture.format import (
    DIR_DTYPE,
    DIR_ENTRY_SIZE,
    FLAG_TIMES_SORTED,
    HEADER_CRC_SPAN,
    HEADER_SIZE,
    SEGMENT_SUFFIX,
    TRAILER_SIZE,
    CaptureFormatError,
    SegmentHeader,
    unpack_header,
    unpack_name_table,
    unpack_trailer,
)


@dataclass(frozen=True, order=True)
class Position:
    """A seekable point in the capture stream.

    ``offset`` indexes into the block at ``(segment, block)`` — seeks
    can land mid-block, in which case replay delivers the block's tail.
    """

    segment: int = 0
    block: int = 0
    offset: int = 0


@dataclass(frozen=True)
class Block:
    """One recorded push: a signal's columns plus the push instant."""

    name: str
    times: np.ndarray
    values: np.ndarray
    push_now: float

    def __len__(self) -> int:
        return int(self.times.shape[0])


class Segment:
    """One validated, mmapped segment file."""

    def __init__(self, path: Path, expected_index: int) -> None:
        self.path = path
        size = path.stat().st_size
        if size < HEADER_SIZE + TRAILER_SIZE:
            raise CaptureFormatError(
                f"{path.name}: segment truncated to {size} bytes "
                f"(minimum is {HEADER_SIZE + TRAILER_SIZE})"
            )
        self._fh = open(path, "rb")
        self._base: Optional[np.ndarray] = None  # lazy uint8 view of _mm
        try:
            self._mm = mmap.mmap(self._fh.fileno(), 0, access=mmap.ACCESS_READ)
        except BaseException:
            self._fh.close()
            raise
        try:
            self.header = self._validate(expected_index, size)
        except BaseException:
            self.close()
            raise

    def _validate(self, expected_index: int, size: int) -> SegmentHeader:
        mm = self._mm
        header, stored_crc = unpack_header(mm[:HEADER_SIZE])
        actual_crc = zlib.crc32(mm[:HEADER_CRC_SPAN])
        if stored_crc != actual_crc:
            raise CaptureFormatError(
                f"{self.path.name}: header CRC mismatch "
                f"(stored {stored_crc:#010x}, computed {actual_crc:#010x})"
            )
        if header.segment_index != expected_index:
            raise CaptureFormatError(
                f"{self.path.name}: header claims segment "
                f"{header.segment_index}, expected {expected_index}"
            )
        if header.block_count == 0:
            raise CaptureFormatError(f"{self.path.name}: segment has no blocks")
        dir_offset, dir_crc = unpack_trailer(mm[-TRAILER_SIZE:])
        expected_size = dir_offset + header.block_count * DIR_ENTRY_SIZE + TRAILER_SIZE
        if expected_size != size:
            raise CaptureFormatError(
                f"{self.path.name}: size {size} does not match directory "
                f"({header.block_count} blocks at offset {dir_offset} "
                f"imply {expected_size}) — truncated or bogus block count"
            )
        table_end = HEADER_SIZE + header.name_table_bytes
        if table_end + TRAILER_SIZE > size or table_end > dir_offset:
            raise CaptureFormatError(
                f"{self.path.name}: name table ({header.name_table_bytes} bytes) "
                "runs past the segment body"
            )
        self.names = unpack_name_table(
            mm[HEADER_SIZE:table_end], header.name_count
        )
        dir_bytes = mm[dir_offset : dir_offset + header.block_count * DIR_ENTRY_SIZE]
        actual_dir_crc = zlib.crc32(dir_bytes)
        if actual_dir_crc != dir_crc:
            raise CaptureFormatError(
                f"{self.path.name}: directory CRC mismatch "
                f"(stored {dir_crc:#010x}, computed {actual_dir_crc:#010x})"
            )
        directory = np.frombuffer(dir_bytes, dtype=DIR_DTYPE).copy()
        counts = directory["count"].astype(np.int64)
        offsets = directory["offset"].astype(np.int64)
        if counts.min() < 1:
            raise CaptureFormatError(f"{self.path.name}: zero-sample block")
        if int(directory["name_id"].max()) >= header.name_count:
            raise CaptureFormatError(
                f"{self.path.name}: block references name id "
                f"{int(directory['name_id'].max())} but the table holds "
                f"{header.name_count} names"
            )
        # Blocks must tile [table_end, dir_offset) exactly, in order.
        ends = offsets + 16 * counts
        starts_ok = offsets[0] == table_end and bool(np.all(offsets[1:] == ends[:-1]))
        if not starts_ok or ends[-1] != dir_offset:
            raise CaptureFormatError(
                f"{self.path.name}: block offsets/counts do not tile the "
                "segment body — bogus count or offset"
            )
        push_now = directory["push_now"]
        if not bool(np.all(np.isfinite(push_now))):
            raise CaptureFormatError(
                f"{self.path.name}: non-finite push instant "
                "(would become a NaN replay deadline)"
            )
        if bool(np.any(push_now[1:] < push_now[:-1])):
            raise CaptureFormatError(
                f"{self.path.name}: push instants go backwards"
            )
        self.directory = directory
        #: Monotone seek key: running max of block t_max in stream order.
        self.cum_t_max = np.maximum.accumulate(directory["t_max"])
        self._verified = np.zeros(header.block_count, dtype=bool)
        return header

    # -- access --------------------------------------------------------
    @property
    def block_count(self) -> int:
        return int(self.header.block_count)

    @property
    def sample_count(self) -> int:
        return int(self.directory["count"].sum())

    def verify_block(self, index: int) -> None:
        """Check block ``index``'s payload CRC once (cached thereafter).

        The CRC runs over a memoryview of the mapping — no slice copy.
        """
        if self._verified[index]:
            return
        entry = self.directory[index]
        count = int(entry["count"])
        offset = int(entry["offset"])
        stored = int(entry["crc"])
        actual = zlib.crc32(memoryview(self._mm)[offset : offset + 16 * count])
        if stored != actual:
            raise CaptureFormatError(
                f"{self.path.name}: block {index} payload CRC mismatch "
                f"(stored {stored:#010x}, computed {actual:#010x})"
            )
        self._verified[index] = True

    def block(self, index: int) -> Block:
        """Decode block ``index``, verifying its payload CRC once.

        The returned columns are read-only ``frombuffer`` views of the
        mapping — no copy; they stay valid until :meth:`close`.
        """
        self.verify_block(index)
        entry = self.directory[index]
        count = int(entry["count"])
        offset = int(entry["offset"])
        times = np.frombuffer(self._mm, dtype="<f8", count=count, offset=offset)
        values = np.frombuffer(
            self._mm, dtype="<f8", count=count, offset=offset + 8 * count
        )
        return Block(
            name=self.names[int(entry["name_id"])],
            times=times,
            values=values,
            push_now=float(entry["push_now"]),
        )

    def gather(
        self,
        indices: np.ndarray,
        out_t: np.ndarray,
        out_v: np.ndarray,
        start: int,
    ) -> int:
        """Copy blocks ``indices`` (stream order) into the output columns.

        CRC verification and the payload copy run as **one native pass**
        over the segment (:func:`repro.query.kernels.gather_verify`,
        which calls zlib's ``crc32`` from C) when a compiled backend
        exists — no per-block Python loop on the hot read path.
        Already-verified blocks skip their check either way.  Without a
        native backend: per-block ``zlib.crc32`` plus numpy assignments.
        Returns the cursor after the copied samples.
        """
        from repro.query import kernels

        entries = self.directory[indices]
        counts = entries["count"].astype(np.int64)
        if self._base is None:
            self._base = np.frombuffer(self._mm, dtype=np.uint8)
        verified = self._verified[indices]
        crcs = np.where(verified, -1, entries["crc"].astype(np.int64))
        rc = kernels.gather_verify(
            self._base,
            entries["offset"].astype(np.int64),
            counts,
            crcs,
            out_t,
            out_v,
            start,
        )
        if rc is not None:
            if rc < 0:
                bad = int(indices[-rc - 1])
                raise CaptureFormatError(
                    f"{self.path.name}: block {bad} payload CRC mismatch"
                )
            self._verified[indices] = True
            return start + rc
        # No -lz-linked kernel: verify per block, then copy (natively
        # when at least the base support library built, else numpy).
        for index in indices:
            self.verify_block(int(index))
        copied = kernels.gather_blocks(
            self._base,
            entries["offset"].astype(np.int64),
            counts,
            out_t,
            out_v,
            start,
        )
        if copied is None:
            # Pure-numpy copy: slice the mapping directly per block
            # (CRCs were verified above; no Block objects, no
            # re-verification on this path).
            base = self._base
            cursor = start
            for offset, count in zip(
                entries["offset"].tolist(), entries["count"].tolist()
            ):
                stop = cursor + count
                mid = offset + 8 * count
                out_t[cursor:stop] = base[offset:mid].view(np.float64)
                out_v[cursor:stop] = base[mid : mid + 8 * count].view(
                    np.float64
                )
                cursor = stop
            return cursor
        return start + copied

    def seek_block(self, t: float) -> Optional[Tuple[int, int]]:
        """First (block, offset) whose sample time is >= ``t``, else None."""
        index = int(np.searchsorted(self.cum_t_max, t, side="left"))
        while index < self.block_count:
            entry = self.directory[index]
            if entry["t_max"] >= t:
                block = self.block(index)
                if int(entry["flags"]) & FLAG_TIMES_SORTED:
                    offset = int(np.searchsorted(block.times, t, side="left"))
                    found = offset < len(block)
                else:
                    hits = np.flatnonzero(block.times >= t)
                    found = hits.size > 0
                    offset = int(hits[0]) if found else len(block)
                if found:
                    return index, offset
                # The directory promised a sample >= t that the payload
                # does not hold.  The one benign way here is the all-NaN
                # sentinel (t_max == -inf matched a -inf seek); anything
                # else is forged/corrupt metadata and must fail closed.
                if np.isfinite(entry["t_max"]) or np.isfinite(t):
                    raise CaptureFormatError(
                        f"{self.path.name}: block {index} directory t_max "
                        f"{float(entry['t_max'])} promises a sample >= {t} "
                        "the payload does not contain"
                    )
            index += 1
        return None

    def close(self) -> None:
        self._base = None
        try:
            self._mm.close()
        except BufferError:
            # Live zero-copy column views still reference the mapping;
            # it is unmapped when the last view is garbage-collected.
            pass
        self._fh.close()


class CaptureReader:
    """Reads a segmented capture directory.

    Parameters
    ----------
    path:
        The capture directory written by a
        :class:`~repro.capture.writer.CaptureWriter`.
    recover_tail:
        When True, a structurally invalid *final* segment (the one a
        killed writer may have torn) is skipped instead of raising; its
        file name is recorded in :attr:`skipped_tail`.  Corruption in
        any earlier segment always raises — recovery never hides damage
        in the middle of a store.
    """

    def __init__(self, path: Union[str, Path], recover_tail: bool = False) -> None:
        self.path = Path(path)
        if not self.path.is_dir():
            raise CaptureFormatError(f"no capture directory at {self.path}")
        files = sorted(self.path.glob(f"*{SEGMENT_SUFFIX}"))
        self.segments: List[Segment] = []
        self.skipped_tail: Optional[str] = None
        for ordinal, file in enumerate(files):
            try:
                try:
                    stem = int(file.stem)
                except ValueError:
                    raise CaptureFormatError(
                        f"{file.name}: segment file name is not an ordinal"
                    ) from None
                if stem != ordinal:
                    raise CaptureFormatError(
                        f"{file.name}: expected segment {ordinal} next — "
                        "the capture's segment sequence has a gap"
                    )
                self.segments.append(Segment(file, ordinal))
            except CaptureFormatError:
                if recover_tail and ordinal == len(files) - 1:
                    self.skipped_tail = file.name
                    break
                self.close()
                raise
            except BaseException:
                self.close()
                raise
        if self.segments:
            self._seg_cum_t_max = np.maximum.accumulate(
                np.array([s.cum_t_max[-1] for s in self.segments])
            )
        else:
            self._seg_cum_t_max = np.empty(0, dtype=np.float64)

    # ------------------------------------------------------------------
    # Store-level metadata
    # ------------------------------------------------------------------
    @property
    def sample_count(self) -> int:
        return sum(s.sample_count for s in self.segments)

    @property
    def block_count(self) -> int:
        return sum(s.block_count for s in self.segments)

    @property
    def names(self) -> List[str]:
        """Distinct signal names, in first-appearance (stream) order."""
        seen: List[str] = []
        for segment in self.segments:
            for name in segment.names:
                if name not in seen:
                    seen.append(name)
        return seen

    @property
    def start_time_ms(self) -> float:
        """Earliest sample timestamp (0.0 for an empty capture)."""
        if not self.segments:
            return 0.0
        return min(s.header.t_min for s in self.segments)

    @property
    def end_time_ms(self) -> float:
        if not self.segments:
            return 0.0
        return max(s.header.t_max for s in self.segments)

    @property
    def duration_ms(self) -> float:
        """Timestamp span (:attr:`~repro.core.tuples.Player.duration_ms`)."""
        if not self.segments:
            return 0.0
        return self.end_time_ms - self.start_time_ms

    def end_position(self) -> Position:
        return Position(segment=len(self.segments), block=0, offset=0)

    # ------------------------------------------------------------------
    # Indexed seek
    # ------------------------------------------------------------------
    def seek(self, t: float) -> Position:
        """Position of the first sample (stream order) with time >= ``t``.

        Two binary searches (segments, then blocks within the segment)
        over running-max ``t_max`` keys, then one in-block search:
        O(log n) in the store size.  Returns :meth:`end_position` when
        every sample is older than ``t``.
        """
        start = int(np.searchsorted(self._seg_cum_t_max, t, side="left"))
        for seg_index in range(start, len(self.segments)):
            hit = self.segments[seg_index].seek_block(t)
            if hit is not None:
                block, offset = hit
                return Position(segment=seg_index, block=block, offset=offset)
        return self.end_position()

    # ------------------------------------------------------------------
    # Stream access
    # ------------------------------------------------------------------
    def iter_blocks(
        self,
        start: Optional[Position] = None,
        names: Optional[Iterable[str]] = None,
    ) -> Iterator[Tuple[Position, Block]]:
        """Yield ``(position, block)`` in stream (push) order from ``start``.

        A mid-block start position yields that block sliced from its
        offset; all later blocks come whole.  ``names`` restricts the
        stream to those signals — blocks of other signals are skipped
        *before* decoding (the directory alone decides), so a narrow
        read never pays payload CRC for signals it ignores.
        """
        pos = start or Position()
        want = None if names is None else set(names)
        for seg_index in range(pos.segment, len(self.segments)):
            segment = self.segments[seg_index]
            if want is not None:
                want_ids = {
                    i for i, name in enumerate(segment.names) if name in want
                }
                if not want_ids:
                    continue
            first_block = pos.block if seg_index == pos.segment else 0
            for block_index in range(first_block, segment.block_count):
                if (
                    want is not None
                    and int(segment.directory[block_index]["name_id"])
                    not in want_ids
                ):
                    continue
                block = segment.block(block_index)
                offset = (
                    pos.offset
                    if seg_index == pos.segment and block_index == pos.block
                    else 0
                )
                if offset:
                    if offset >= len(block):
                        continue
                    block = Block(
                        name=block.name,
                        times=block.times[offset:],
                        values=block.values[offset:],
                        push_now=block.push_now,
                    )
                yield Position(seg_index, block_index, offset), block

    def signal_sample_counts(self) -> Dict[str, int]:
        """Per-signal sample totals, straight from the directories.

        No payload is touched: each segment's directory already carries
        per-block name ids and counts, so this is metadata arithmetic.
        """
        counts: Dict[str, int] = {}
        for segment in self.segments:
            ids = segment.directory["name_id"]
            per_id = np.bincount(
                ids.astype(np.int64),
                weights=segment.directory["count"].astype(np.float64),
                minlength=len(segment.names),
            )
            for name_id, name in enumerate(segment.names):
                counts[name] = counts.get(name, 0) + int(per_id[name_id])
        return counts

    def columns_for(
        self, names: Iterable[str]
    ) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """Several signals' ``(times, values)`` columns in one pass.

        The block list per signal comes from the directories alone
        (payloads of other signals are never touched, nor CRC-checked).
        A signal recorded in a **single block** comes back as the
        direct read-only mmap views of that block — zero copy; the
        views stay valid even after :meth:`close` (the mapping is
        unmapped when the last view is garbage-collected).  A signal
        spanning several blocks is copied once into preallocated
        columns — natively in one pass per segment
        (:func:`repro.query.kernels.gather_blocks`) when a compiled
        backend exists.  Signals absent from the capture come back as
        empty columns (matching :meth:`read_signal`).  This is the
        batch query executor's read path.
        """
        want = list(dict.fromkeys(names))  # de-dup, preserve order
        # Directory-only pass: each signal's blocks, in stream order.
        locs: Dict[str, List[Tuple[Segment, np.ndarray]]] = {
            name: [] for name in want
        }
        totals = {name: 0 for name in want}
        for segment in self.segments:
            id_of = {n: i for i, n in enumerate(segment.names)}
            ids = segment.directory["name_id"]
            for name in want:
                name_id = id_of.get(name)
                if name_id is None:
                    continue
                hits = np.flatnonzero(ids == name_id)
                if hits.size:
                    locs[name].append((segment, hits))
                    totals[name] += int(segment.directory["count"][hits].sum())
        out: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for name in want:
            blocks = locs[name]
            if len(blocks) == 1 and blocks[0][1].size == 1:
                segment, hits = blocks[0]
                block = segment.block(int(hits[0]))
                out[name] = (block.times, block.values)
                continue
            times = np.empty(totals[name], dtype=np.float64)
            values = np.empty(totals[name], dtype=np.float64)
            cursor = 0
            for segment, hits in blocks:
                cursor = segment.gather(hits, times, values, cursor)
            out[name] = (times, values)
        return out

    def read_signal(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        """All of one signal's ``(times, values)`` in stream order.

        The longitudinal re-query path: one streaming pass over the
        matching blocks into preallocated columns (see
        :meth:`columns_for`).
        """
        return self.columns_for((name,))[name]

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Whole-capture ``(times, values, name_indices)`` in stream order.

        ``name_indices`` indexes into :attr:`names`.
        """
        names = self.names
        index_of = {name: i for i, name in enumerate(names)}
        times: List[np.ndarray] = []
        values: List[np.ndarray] = []
        ids: List[np.ndarray] = []
        for _, block in self.iter_blocks():
            times.append(block.times)
            values.append(block.values)
            ids.append(np.full(len(block), index_of[block.name], dtype=np.int64))
        if not times:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty.copy(), np.empty(0, dtype=np.int64)
        return np.concatenate(times), np.concatenate(values), np.concatenate(ids)

    def sorted_columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`columns` ordered by timestamp, stream order breaking ties.

        The one canonical tuple ordering of a capture — what
        :func:`repro.capture.export_text` writes and what
        :meth:`repro.core.tuples.Player.from_capture` loads, so the two
        adapters can never drift apart.
        """
        times, values, ids = self.columns()
        order = np.argsort(times, kind="stable")
        return times[order], values[order], ids[order]

    def close(self) -> None:
        for segment in self.segments:
            segment.close()
        self.segments = []

    def __enter__(self) -> "CaptureReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
