"""Frequency-domain display — the scope's other view of a signal.

Section 3.1: "Polled signals can be displayed in the time or frequency
domain."  The :class:`SpectrumWidget` renders the magnitude spectrum of
one channel's trace as a bar plot: x is frequency from DC to Nyquist,
y is normalised magnitude, with a ruler row and the peak frequency
annotated — the software equivalent of flipping a digital scope into
FFT mode.
"""

from __future__ import annotations

from typing import Optional

from repro.core.channel import Channel
from repro.core.frequency import Spectrum, spectrum
from repro.gui.canvas import Canvas
from repro.gui.color import color_rgb
from repro.gui.geometry import Rect
from repro.gui.widget import Widget

TITLE_H = 12
RULER_H = 10


class SpectrumWidget(Widget):
    """Renders a channel's spectrum to a canvas.

    Parameters
    ----------
    channel:
        The channel whose trace is transformed.
    period_ms:
        The scope's polling period (sets the frequency axis).
    width, height:
        Plot dimensions in pixels.
    window:
        FFT taper passed through to :func:`repro.core.frequency.spectrum`.
    max_samples:
        Only the most recent ``max_samples`` trace points are
        transformed, like a scope's FFT record length.
    """

    def __init__(
        self,
        channel: Channel,
        period_ms: float,
        width: int = 256,
        height: int = 100,
        window: str = "hann",
        max_samples: int = 512,
    ) -> None:
        if max_samples < 2:
            raise ValueError(f"need at least 2 samples: {max_samples}")
        super().__init__(
            Rect(0, 0, width, TITLE_H + height + RULER_H),
            name=f"spectrum:{channel.name}",
        )
        self.channel = channel
        self.period_ms = float(period_ms)
        self.plot_rect = Rect(0, TITLE_H, width, height)
        self.window = window
        self.max_samples = int(max_samples)
        self.last_spectrum: Optional[Spectrum] = None

    def compute(self) -> Optional[Spectrum]:
        """Transform the current trace; None if it is too short."""
        values = self.channel.values()[-self.max_samples :]
        if len(values) < 2:
            return None
        self.last_spectrum = spectrum(values, self.period_ms, window=self.window)
        return self.last_spectrum

    def render(self, canvas: Optional[Canvas] = None) -> Canvas:
        if canvas is None:
            canvas = Canvas(self.rect.width, self.rect.height)
        self.draw(canvas)
        return canvas

    def draw(self, canvas: Canvas) -> None:
        spec = self.compute()
        canvas.fill_rect(Rect(0, 0, self.rect.width, TITLE_H), (30, 30, 30))
        title = f"{self.channel.name} spectrum"
        canvas.text(4, 2, title, color_rgb("white"))
        canvas.fill_rect(self.plot_rect, (0, 0, 0))
        canvas.frame_rect(self.plot_rect, (90, 90, 90))
        if spec is None or len(spec.magnitudes) < 2:
            canvas.text(
                self.plot_rect.x + 4,
                self.plot_rect.y + 4,
                "no data",
                color_rgb("grey"),
            )
            return

        mags = spec.magnitudes
        peak_mag = float(mags.max()) or 1.0
        plot = self.plot_rect
        bins = len(mags)
        bar_color = color_rgb("green")
        for px in range(plot.width):
            # Map pixel column -> frequency bin (nearest).
            b = min(bins - 1, round(px / max(1, plot.width - 1) * (bins - 1)))
            h = int(round(mags[b] / peak_mag * (plot.height - 2)))
            if h > 0:
                canvas.vline(
                    plot.x + px, plot.bottom - 1 - h, plot.bottom - 2, bar_color
                )

        # Ruler: a tick every 10% of Nyquist, peak annotated.
        ruler_y = plot.bottom + 1
        for i in range(11):
            x = plot.x + i * (plot.width - 1) // 10
            canvas.vline(x, ruler_y, ruler_y + 2, (200, 200, 200))
        try:
            peak_freq, _ = spec.peak()
            canvas.text(
                plot.x + 4,
                ruler_y + 2,
                f"peak {peak_freq:.2f}Hz / ny {spec.nyquist_hz:.1f}Hz",
                color_rgb("lightgrey"),
            )
        except ValueError:
            pass
