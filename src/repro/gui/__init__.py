"""Headless GUI substrate — the GTK/Gnome stand-in.

The paper's gscope renders into a GTK canvas under X11.  This package
reproduces the visual layer without a display server:

* :mod:`repro.gui.geometry` — rectangles and the zoom/bias value-to-pixel
  transform.
* :mod:`repro.gui.color` — named colors and the default signal palette.
* :mod:`repro.gui.canvas` — a numpy RGB framebuffer with line, polyline,
  ruler and text-block primitives.
* :mod:`repro.gui.widget` — a minimal widget tree with click routing
  (left-click toggles a signal, right-click opens its parameter window —
  Figure 1's interactions).
* :mod:`repro.gui.scope_widget` — the ``GtkScope`` composite: canvas with
  traces drawn one pixel per polling period, x ruler in seconds, y ruler
  0..100, zoom/bias/period/delay widgets and per-signal rows.
* :mod:`repro.gui.windows` — the signal-parameters window (Figure 2) and
  control-parameters window (Figure 3) as editable models.
* :mod:`repro.gui.render` — ASCII rendering for terminals and PPM/PGM
  writers so every "screenshot" in the paper can be regenerated as a
  file.
"""

from repro.gui.canvas import Canvas
from repro.gui.color import PALETTE, color_rgb
from repro.gui.geometry import Rect, ValueTransform
from repro.gui.render import ascii_render, write_pgm, write_ppm
from repro.gui.scope_widget import ScopeWidget
from repro.gui.widget import ClickButton, Label, SpinWidget, Widget
from repro.gui.windows import ControlParametersWindow, SignalParametersWindow

__all__ = [
    "Canvas",
    "ClickButton",
    "ControlParametersWindow",
    "Label",
    "PALETTE",
    "Rect",
    "ScopeWidget",
    "SignalParametersWindow",
    "SpinWidget",
    "ValueTransform",
    "Widget",
    "ascii_render",
    "color_rgb",
    "write_pgm",
    "write_ppm",
]
