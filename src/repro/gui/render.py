"""Output backends: ASCII art for terminals, PPM/PGM files for disk.

The paper's figures are X11 screenshots; headlessly we regenerate them
as portable pixmap files (viewable anywhere, no codec dependencies) and
as ASCII art (so benchmark harnesses can show the display inline).
"""

from __future__ import annotations

from typing import IO, Union

import numpy as np

from repro.gui.canvas import Canvas

#: Luminance ramp for ASCII rendering, dark to bright.
_RAMP = " .:-=+*#%@"


def ascii_render(
    canvas: Canvas,
    max_width: int = 100,
    max_height: int = 40,
) -> str:
    """Downsample the framebuffer to an ASCII-art string.

    Pixels are grouped into cells and mapped to :data:`_RAMP` characters
    by mean luminance.  Aspect compensation doubles cell height since
    terminal glyphs are roughly twice as tall as wide.
    """
    if max_width <= 0 or max_height <= 0:
        raise ValueError("ascii dimensions must be positive")
    cell_w = max(1, -(-canvas.width // max_width))  # ceil division
    cell_h = max(1, -(-canvas.height // max_height))
    cell_h = max(cell_h, 2 * cell_w)  # terminal aspect correction
    # Luminance (ITU-R 601 weights).
    lum = (
        0.299 * canvas.pixels[:, :, 0].astype(float)
        + 0.587 * canvas.pixels[:, :, 1].astype(float)
        + 0.114 * canvas.pixels[:, :, 2].astype(float)
    )
    # One vectorised block-reduce instead of a Python loop per cell:
    # NaN-pad ragged edges so partial cells average only real pixels.
    pad_h = (-canvas.height) % cell_h
    pad_w = (-canvas.width) % cell_w
    if pad_h or pad_w:
        lum = np.pad(lum, ((0, pad_h), (0, pad_w)), constant_values=np.nan)
    blocks = lum.reshape(
        lum.shape[0] // cell_h, cell_h, lum.shape[1] // cell_w, cell_w
    )
    # Mean underweights thin 1px traces; bias toward max.
    level = 0.5 * np.nanmean(blocks, axis=(1, 3)) + 0.5 * np.nanmax(blocks, axis=(1, 3))
    idx = np.minimum(len(_RAMP) - 1, (level / 256.0 * len(_RAMP)).astype(np.int64))
    return "\n".join("".join(_RAMP[i] for i in row) for row in idx)


def write_ppm(canvas: Canvas, sink: Union[str, IO[bytes]]) -> None:
    """Write the framebuffer as a binary PPM (P6) image."""
    header = f"P6\n{canvas.width} {canvas.height}\n255\n".encode("ascii")
    body = canvas.pixels.astype(np.uint8).tobytes()
    if isinstance(sink, str):
        with open(sink, "wb") as fh:
            fh.write(header)
            fh.write(body)
    else:
        sink.write(header)
        sink.write(body)


def write_pgm(canvas: Canvas, sink: Union[str, IO[bytes]]) -> None:
    """Write the framebuffer as a greyscale PGM (P5) image."""
    lum = (
        0.299 * canvas.pixels[:, :, 0].astype(float)
        + 0.587 * canvas.pixels[:, :, 1].astype(float)
        + 0.114 * canvas.pixels[:, :, 2].astype(float)
    ).astype(np.uint8)
    header = f"P5\n{canvas.width} {canvas.height}\n255\n".encode("ascii")
    if isinstance(sink, str):
        with open(sink, "wb") as fh:
            fh.write(header)
            fh.write(lum.tobytes())
    else:
        sink.write(header)
        sink.write(lum.tobytes())


def read_ppm(source: Union[str, IO[bytes]]) -> Canvas:
    """Read a binary PPM back into a canvas (round-trip for tests)."""
    if isinstance(source, str):
        with open(source, "rb") as fh:
            data = fh.read()
    else:
        data = source.read()
    parts = data.split(b"\n", 3)
    if parts[0] != b"P6":
        raise ValueError(f"not a binary PPM: magic {parts[0]!r}")
    width, height = (int(v) for v in parts[1].split())
    maxval = int(parts[2])
    if maxval != 255:
        raise ValueError(f"unsupported maxval: {maxval}")
    body = parts[3][: width * height * 3]
    canvas = Canvas(width, height)
    canvas.pixels = np.frombuffer(body, dtype=np.uint8).reshape(height, width, 3).copy()
    return canvas
