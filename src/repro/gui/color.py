"""Colors for signal traces.

The ``GtkScopeSig`` struct carries an optional color name; unset signals
get successive colors from a default palette, like the C library cycling
GDK colors.  Colors are (r, g, b) byte triples for the framebuffer.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

RGB = Tuple[int, int, int]

_NAMED: Dict[str, RGB] = {
    "black": (0, 0, 0),
    "white": (255, 255, 255),
    "red": (220, 50, 47),
    "green": (64, 160, 43),
    "blue": (38, 102, 210),
    "yellow": (230, 190, 20),
    "cyan": (42, 161, 152),
    "magenta": (211, 54, 130),
    "orange": (203, 95, 22),
    "violet": (108, 113, 196),
    "grey": (128, 128, 128),
    "gray": (128, 128, 128),
    "darkgrey": (64, 64, 64),
    "darkgray": (64, 64, 64),
    "lightgrey": (192, 192, 192),
    "lightgray": (192, 192, 192),
}

#: Default trace color rotation for signals with no explicit color.
PALETTE: Tuple[str, ...] = (
    "green",
    "red",
    "blue",
    "yellow",
    "cyan",
    "magenta",
    "orange",
    "violet",
)


def color_rgb(name: str) -> RGB:
    """Resolve a color name or ``#rrggbb`` hex string to an RGB triple."""
    key = name.strip().lower()
    if key in _NAMED:
        return _NAMED[key]
    if key.startswith("#") and len(key) == 7:
        try:
            return (int(key[1:3], 16), int(key[3:5], 16), int(key[5:7], 16))
        except ValueError:
            pass
    raise ValueError(f"unknown color: {name!r}")


def palette_color(index: int) -> RGB:
    """The ``index``-th default trace color (wraps around)."""
    return color_rgb(PALETTE[index % len(PALETTE)])


def palette_cycle() -> Iterator[RGB]:
    """Endless iterator over the default palette."""
    i = 0
    while True:
        yield palette_color(i)
        i += 1
