"""The two parameter windows of Figures 2 and 3, as editable models.

* :class:`SignalParametersWindow` — opened by right-clicking a signal
  name (Figure 2).  Edits the live per-signal parameters: color, min,
  max, line mode, hidden flag and filter alpha.  Edits take effect on
  the channel immediately, exactly like the GTK dialog.
* :class:`ControlParametersWindow` — the application/control parameter
  window (Figure 3), backed by a
  :class:`~repro.core.params.ParameterStore`.  Each row shows a
  parameter with its value; writes go through the store so listeners
  (and the application) observe them.

Both windows can render themselves onto a canvas so the reproduction can
regenerate the paper's screenshots headlessly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.core.channel import Channel
from repro.core.lowpass import LowPassFilter
from repro.core.params import ParameterStore
from repro.core.signal import LineMode
from repro.gui.canvas import Canvas
from repro.gui.color import color_rgb

ROW_H = 12


class SignalParametersWindow:
    """Figure 2: per-signal parameter editor.

    The window presents the mutable subset of ``GtkScopeSig``.  Setting a
    field validates it the same way the spec constructor does and applies
    it to the live channel.
    """

    FIELDS = ("color", "min", "max", "line", "hidden", "filter")

    def __init__(self, channel: Channel) -> None:
        self.channel = channel
        self.applied: List[str] = []  # audit trail of edited fields

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def values(self) -> Dict[str, object]:
        spec = self.channel.spec
        return {
            "name": spec.name,
            "color": spec.color,
            "min": spec.min,
            "max": spec.max,
            "line": spec.line.value,
            "hidden": not self.channel.visible,
            "filter": spec.filter,
        }

    # ------------------------------------------------------------------
    # Edits (validated, applied live)
    # ------------------------------------------------------------------
    def set_color(self, color: Optional[str]) -> None:
        if color is not None:
            color_rgb(color)  # validate before applying
        self.channel.spec = replace(self.channel.spec, color=color)
        self.applied.append("color")

    def set_range(self, minimum: float, maximum: float) -> None:
        """min and max change together; the pair must stay ordered."""
        self.channel.spec = replace(self.channel.spec, min=minimum, max=maximum)
        self.applied.append("range")

    def set_line(self, mode: LineMode) -> None:
        self.channel.spec = replace(self.channel.spec, line=mode)
        self.applied.append("line")

    def set_hidden(self, hidden: bool) -> None:
        self.channel.visible = not hidden
        self.channel.spec = replace(self.channel.spec, hidden=hidden)
        self.applied.append("hidden")

    def set_filter(self, alpha: float) -> None:
        """Changing alpha swaps the channel's filter, preserving its
        current output so the trace does not jump."""
        new_filter = LowPassFilter(alpha)  # validates alpha
        current = self.channel.filter.value
        if current is not None and alpha > 0.0:
            new_filter.apply(current)
        self.channel.spec = replace(self.channel.spec, filter=alpha)
        self.channel.filter = new_filter
        self.applied.append("filter")

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, width: int = 220) -> Canvas:
        rows = self.values()
        canvas = Canvas(width, ROW_H * (len(rows) + 1), background=(24, 24, 24))
        canvas.text(4, 2, f"signal: {rows['name']}", color_rgb("white"))
        y = ROW_H
        for key in self.FIELDS:
            canvas.text(4, y + 2, f"{key} = {rows[key]}", color_rgb("lightgrey"))
            y += ROW_H
        return canvas


class ControlParametersWindow:
    """Figure 3: the application/control parameters window.

    Parameters are displayed with spin-button semantics (step up/down)
    and direct entry; all writes flow through the backing store.
    """

    def __init__(self, store: ParameterStore, title: str = "Application Parameters") -> None:
        self.store = store
        self.title = title

    def rows(self) -> Dict[str, float]:
        """Name → current value for every parameter, in store order."""
        return {name: self.store.get(name) for name in self.store.names()}

    def set(self, name: str, value: float) -> float:
        """Direct entry into a parameter's field."""
        return self.store.set(name, value)

    def step_up(self, name: str, steps: int = 1) -> float:
        return self.store.adjust(name, steps)

    def step_down(self, name: str, steps: int = 1) -> float:
        return self.store.adjust(name, -steps)

    def render(self, width: int = 260) -> Canvas:
        rows = self.rows()
        canvas = Canvas(width, ROW_H * (len(rows) + 1), background=(24, 24, 24))
        canvas.text(4, 2, self.title, color_rgb("white"))
        y = ROW_H
        for name, value in rows.items():
            param = self.store.parameter(name)
            bounds = ""
            if param.minimum is not None or param.maximum is not None:
                bounds = f" [{param.minimum}, {param.maximum}]"
            canvas.text(4, y + 2, f"{name} = {value:g}{bounds}", color_rgb("lightgrey"))
            y += ROW_H
        return canvas
