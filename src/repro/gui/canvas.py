"""A numpy-framebuffer canvas with the primitives the scope needs.

The GTK canvas the paper draws into is replaced by an RGB byte array.
Primitives: pixels, horizontal/vertical lines, Bresenham segments,
polylines (for LINE traces), steps (for sample-and-hold STEP traces),
rulers with ticks, filled rectangles and a 5x7 bitmap-font text blit for
labels and value readouts.  All drawing clips to the canvas; nothing
raises on out-of-range coordinates, because a scope trace routinely runs
off the display edge.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.gui.color import RGB, color_rgb
from repro.gui.font import glyph_rows
from repro.gui.geometry import Rect


class Canvas:
    """RGB framebuffer of shape (height, width, 3), dtype uint8."""

    def __init__(
        self,
        width: int,
        height: int,
        background: RGB = (0, 0, 0),
    ) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"canvas size must be positive: {width}x{height}")
        self.width = int(width)
        self.height = int(height)
        self.background = background
        self.pixels = np.zeros((self.height, self.width, 3), dtype=np.uint8)
        self.clear()

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------
    def clear(self, color: Optional[RGB] = None) -> None:
        self.pixels[:, :] = color if color is not None else self.background

    def in_bounds(self, x: int, y: int) -> bool:
        return 0 <= x < self.width and 0 <= y < self.height

    def set_pixel(self, x: int, y: int, color: RGB) -> None:
        if self.in_bounds(x, y):
            self.pixels[y, x] = color

    def get_pixel(self, x: int, y: int) -> RGB:
        if not self.in_bounds(x, y):
            raise IndexError(f"pixel ({x}, {y}) outside {self.width}x{self.height}")
        r, g, b = self.pixels[y, x]
        return (int(r), int(g), int(b))

    # ------------------------------------------------------------------
    # Lines
    # ------------------------------------------------------------------
    def hline(self, x0: int, x1: int, y: int, color: RGB) -> None:
        if not 0 <= y < self.height:
            return
        lo, hi = sorted((x0, x1))
        lo, hi = max(0, lo), min(self.width - 1, hi)
        if lo <= hi:
            self.pixels[y, lo : hi + 1] = color

    def vline(self, x: int, y0: int, y1: int, color: RGB) -> None:
        if not 0 <= x < self.width:
            return
        lo, hi = sorted((y0, y1))
        lo, hi = max(0, lo), min(self.height - 1, hi)
        if lo <= hi:
            self.pixels[lo : hi + 1, x] = color

    def line(self, x0: int, y0: int, x1: int, y1: int, color: RGB) -> None:
        """Bresenham segment, clipped to the canvas."""
        dx = abs(x1 - x0)
        dy = -abs(y1 - y0)
        sx = 1 if x0 < x1 else -1
        sy = 1 if y0 < y1 else -1
        err = dx + dy
        x, y = x0, y0
        while True:
            self.set_pixel(x, y, color)
            if x == x1 and y == y1:
                break
            e2 = 2 * err
            if e2 >= dy:
                err += dy
                x += sx
            if e2 <= dx:
                err += dx
                y += sy

    def polyline(self, points: Sequence[Tuple[int, int]], color: RGB) -> None:
        """Connect successive points (LINE trace mode)."""
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            self.line(x0, y0, x1, y1, color)

    def steps(self, points: Sequence[Tuple[int, int]], color: RGB) -> None:
        """Sample-and-hold staircase (STEP trace mode)."""
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            self.hline(x0, x1, y0, color)  # hold the previous level...
            self.vline(x1, y0, y1, color)  # ...then jump at the new sample
        if points:
            self.set_pixel(points[-1][0], points[-1][1], color)

    def points(self, points: Iterable[Tuple[int, int]], color: RGB) -> None:
        """One pixel per sample (POINTS trace mode)."""
        for x, y in points:
            self.set_pixel(x, y, color)

    # ------------------------------------------------------------------
    # Areas and rulers
    # ------------------------------------------------------------------
    def fill_rect(self, rect: Rect, color: RGB) -> None:
        x0, y0 = max(0, rect.x), max(0, rect.y)
        x1, y1 = min(self.width, rect.right), min(self.height, rect.bottom)
        if x0 < x1 and y0 < y1:
            self.pixels[y0:y1, x0:x1] = color

    def frame_rect(self, rect: Rect, color: RGB) -> None:
        self.hline(rect.x, rect.right - 1, rect.y, color)
        self.hline(rect.x, rect.right - 1, rect.bottom - 1, color)
        self.vline(rect.x, rect.y, rect.bottom - 1, color)
        self.vline(rect.right - 1, rect.y, rect.bottom - 1, color)

    def grid(
        self,
        rect: Rect,
        x_step: int,
        y_step: int,
        color: RGB = (40, 40, 40),
    ) -> None:
        """Graticule lines every ``x_step``/``y_step`` pixels."""
        if x_step <= 0 or y_step <= 0:
            raise ValueError("grid steps must be positive")
        for x in range(rect.x, rect.right, x_step):
            self.vline(x, rect.y, rect.bottom - 1, color)
        for y in range(rect.y, rect.bottom, y_step):
            self.hline(rect.x, rect.right - 1, y, color)

    def ruler_x(
        self,
        rect: Rect,
        tick_every_px: int,
        color: RGB = (200, 200, 200),
        tick_len: int = 4,
    ) -> None:
        """Bottom-edge tick marks (the x ruler, sized in seconds)."""
        if tick_every_px <= 0:
            raise ValueError("tick spacing must be positive")
        y = rect.bottom - 1
        for x in range(rect.x, rect.right, tick_every_px):
            self.vline(x, y - tick_len + 1, y, color)

    def ruler_y(
        self,
        rect: Rect,
        tick_every_px: int,
        color: RGB = (200, 200, 200),
        tick_len: int = 4,
    ) -> None:
        """Left-edge tick marks (the y ruler, scaled 0 to 100)."""
        if tick_every_px <= 0:
            raise ValueError("tick spacing must be positive")
        for y in range(rect.y, rect.bottom, tick_every_px):
            self.hline(rect.x, rect.x + tick_len - 1, y, color)

    # ------------------------------------------------------------------
    # Text
    # ------------------------------------------------------------------
    def text(self, x: int, y: int, string: str, color: RGB) -> int:
        """Blit ``string`` with the 5x7 bitmap font; returns end x."""
        cx = x
        for ch in string:
            rows = glyph_rows(ch)
            for dy, row in enumerate(rows):
                for dx in range(5):
                    if row & (1 << (4 - dx)):
                        self.set_pixel(cx + dx, y + dy, color)
            cx += 6  # 5 px glyph + 1 px spacing
        return cx

    def text_width(self, string: str) -> int:
        return 6 * len(string)

    # ------------------------------------------------------------------
    # Analysis helpers (used heavily by tests)
    # ------------------------------------------------------------------
    def count_pixels(self, color: RGB) -> int:
        """How many pixels exactly match ``color``."""
        target = np.array(color, dtype=np.uint8)
        return int(np.all(self.pixels == target, axis=-1).sum())

    def column_rows(self, x: int, color: RGB) -> list:
        """Rows in column ``x`` that match ``color`` (top to bottom)."""
        if not 0 <= x < self.width:
            raise IndexError(f"column {x} outside width {self.width}")
        target = np.array(color, dtype=np.uint8)
        mask = np.all(self.pixels[:, x] == target, axis=-1)
        return [int(i) for i in np.nonzero(mask)[0]]


def named_color(name: str) -> RGB:
    """Convenience passthrough so canvas users need one import."""
    return color_rgb(name)
