"""Geometry helpers: rectangles and the zoom/bias transform.

The scope canvas maps signal values to pixel rows through three stages
(Section 2): the signal's own ``min``/``max`` normalise the value into
the 0..100 y-ruler range, then the scope-wide *zoom* scales and *bias*
translates it, then the result lands on the canvas, y inverted because
framebuffers grow downward.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Rect:
    """Integer pixel rectangle (x, y = top-left corner)."""

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"rect must have positive size: {self}")

    @property
    def right(self) -> int:
        return self.x + self.width

    @property
    def bottom(self) -> int:
        return self.y + self.height

    def contains(self, px: int, py: int) -> bool:
        return self.x <= px < self.right and self.y <= py < self.bottom

    def inset(self, margin: int) -> "Rect":
        """Shrink the rect by ``margin`` on every side."""
        if 2 * margin >= min(self.width, self.height):
            raise ValueError(f"margin {margin} swallows rect {self}")
        return Rect(
            self.x + margin,
            self.y + margin,
            self.width - 2 * margin,
            self.height - 2 * margin,
        )


@dataclass(frozen=True)
class ValueTransform:
    """Signal-value → canvas-row mapping with zoom and bias.

    Parameters
    ----------
    vmin, vmax:
        The signal's displayed range at default zoom/bias (the spec's
        ``min``/``max``; the y ruler shows this as 0..100).
    zoom:
        Vertical scale factor; 1.0 maps [vmin, vmax] onto full height.
    bias:
        Vertical translation in percent-of-range units (positive moves
        the trace up).
    height:
        Canvas height in pixels.
    """

    vmin: float
    vmax: float
    zoom: float = 1.0
    bias: float = 0.0
    height: int = 256

    def __post_init__(self) -> None:
        if self.vmax <= self.vmin:
            raise ValueError(f"vmax must exceed vmin: [{self.vmin}, {self.vmax}]")
        if self.zoom <= 0:
            raise ValueError(f"zoom must be positive: {self.zoom}")
        if self.height <= 0:
            raise ValueError(f"height must be positive: {self.height}")

    def to_percent(self, value: float) -> float:
        """Normalise a value into y-ruler percent (0..100), pre-clip."""
        span = self.vmax - self.vmin
        norm = (value - self.vmin) / span * 100.0
        return norm * self.zoom + self.bias

    def to_row(self, value: float) -> int:
        """Map a value to a framebuffer row (0 = top), clipped in range."""
        percent = self.to_percent(value)
        # percent 0 -> bottom row, percent 100 -> top row.
        row = round((1.0 - percent / 100.0) * (self.height - 1))
        return max(0, min(self.height - 1, row))

    def to_rows(self, values: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`to_row` over a column of values.

        ``np.rint`` rounds half-to-even like Python's ``round``, so the
        result matches the scalar mapping pixel for pixel.
        """
        arr = np.asarray(values, dtype=np.float64)
        span = self.vmax - self.vmin
        percent = (arr - self.vmin) / span * 100.0 * self.zoom + self.bias
        rows = np.rint((1.0 - percent / 100.0) * (self.height - 1)).astype(np.int64)
        return np.clip(rows, 0, self.height - 1)

    def from_row(self, row: int) -> float:
        """Inverse mapping: framebuffer row back to a signal value.

        Used by tests to verify the transform and by cursor readouts.
        """
        percent = (1.0 - row / (self.height - 1)) * 100.0
        norm = (percent - self.bias) / self.zoom
        return self.vmin + norm / 100.0 * (self.vmax - self.vmin)

    def visible(self, value: float) -> bool:
        """Whether the value lands inside the canvas without clipping."""
        return 0.0 <= self.to_percent(value) <= 100.0
