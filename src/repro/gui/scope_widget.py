"""The ``GtkScope`` widget: everything Figure 1 shows, headless.

Layout (top to bottom), mirroring the screenshot in the paper:

* title bar with the scope name,
* the canvas: traces drawn one pixel per polling period at default zoom,
  graticule grid, x ruler sized in seconds, y ruler scaled 0 to 100,
* the zoom / bias / sampling-period / delay spin widgets,
* one row per signal: the signal-name button (left-click toggles the
  trace, right-click opens the signal-parameters window) and the
  ``Value`` button that toggles a live value readout.

The widget renders a :class:`~repro.core.scope.Scope` into a
:class:`~repro.gui.canvas.Canvas`; nothing here mutates acquisition
state except through the scope's public API, so GUI and programmatic
control stay equivalent (a design goal the paper states explicitly).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.channel import Channel
from repro.core.scope import AcquisitionMode, Scope
from repro.core.signal import LineMode
from repro.gui.canvas import Canvas
from repro.gui.color import RGB, color_rgb, palette_color
from repro.gui.geometry import Rect, ValueTransform
from repro.gui.widget import ClickButton, MouseButton, SpinWidget, Widget
from repro.gui.windows import SignalParametersWindow

TITLE_H = 12
CONTROLS_H = 14
SIGNAL_ROW_H = 12
RULER_MARGIN = 6


class ScopeWidget(Widget):
    """Renders a scope and routes Figure 1's click interactions."""

    def __init__(self, scope: Scope, px_per_period: int = 1) -> None:
        if px_per_period <= 0:
            raise ValueError(f"px_per_period must be positive: {px_per_period}")
        self.scope = scope
        self.px_per_period = int(px_per_period)
        total_h = self._total_height()
        super().__init__(Rect(0, 0, scope.width, total_h), name=f"scope:{scope.name}")
        self.canvas_rect = Rect(0, TITLE_H, scope.width, scope.height)
        self.open_windows: List[SignalParametersWindow] = []
        self._rebuild_children()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _total_height(self) -> int:
        return (
            TITLE_H
            + self.scope.height
            + CONTROLS_H
            + SIGNAL_ROW_H * max(1, len(self.scope.channels))
        )

    def _rebuild_children(self) -> None:
        """(Re)create the control and per-signal widgets.

        Called on construction and whenever the signal list changes
        (signals can be added and removed dynamically).
        """
        self.children.clear()
        scope = self.scope
        y = TITLE_H + scope.height + 2
        quarter = scope.width // 4
        self.zoom_widget = SpinWidget(
            Rect(0, y, quarter, CONTROLS_H - 2),
            "zoom",
            get=lambda: scope.zoom,
            set_=scope.set_zoom,
            step=0.25,
            minimum=0.25,
        )
        self.bias_widget = SpinWidget(
            Rect(quarter, y, quarter, CONTROLS_H - 2),
            "bias",
            get=lambda: scope.bias,
            set_=scope.set_bias,
            step=5.0,
        )
        self.period_widget = SpinWidget(
            Rect(2 * quarter, y, quarter, CONTROLS_H - 2),
            "period",
            get=lambda: scope.period_ms,
            set_=scope.set_period,
            step=10.0,
            minimum=1.0,
        )
        self.delay_widget = SpinWidget(
            Rect(3 * quarter, y, scope.width - 3 * quarter, CONTROLS_H - 2),
            "delay",
            get=lambda: scope.buffer.delay_ms,
            set_=scope.set_delay,
            step=50.0,
            minimum=0.0,
        )
        for w in (self.zoom_widget, self.bias_widget, self.period_widget, self.delay_widget):
            self.add(w)

        self._name_buttons: Dict[str, ClickButton] = {}
        self._value_buttons: Dict[str, ClickButton] = {}
        row_y = TITLE_H + scope.height + CONTROLS_H
        for channel in scope.channels:
            name_rect = Rect(2, row_y + 1, max(6 * len(channel.name) + 6, 20), SIGNAL_ROW_H - 2)
            value_rect = Rect(name_rect.right + 4, row_y + 1, 42, SIGNAL_ROW_H - 2)
            name_btn = ClickButton(
                name_rect,
                channel.name,
                on_left=channel.toggle_visible,
                on_right=lambda ch=channel: self.open_signal_window(ch.name),
                color=self._channel_color_name(channel),
            )
            value_btn = ClickButton(
                value_rect,
                "Value",
                on_left=channel.toggle_value_readout,
                color="lightgrey",
            )
            self._name_buttons[channel.name] = self.add(name_btn)  # type: ignore[assignment]
            self._value_buttons[channel.name] = self.add(value_btn)  # type: ignore[assignment]
            row_y += SIGNAL_ROW_H

    def refresh_layout(self) -> None:
        """Re-sync widget rows after dynamic signal add/remove."""
        self.rect = Rect(0, 0, self.scope.width, self._total_height())
        self._rebuild_children()

    # ------------------------------------------------------------------
    # Colors
    # ------------------------------------------------------------------
    def _channel_color_name(self, channel: Channel) -> str:
        return channel.spec.color if channel.spec.color else "white"

    def channel_color(self, channel: Channel) -> RGB:
        """Trace color: explicit spec color, else palette by position."""
        if channel.spec.color:
            return color_rgb(channel.spec.color)
        index = [c.name for c in self.scope.channels].index(channel.name)
        return palette_color(index)

    # ------------------------------------------------------------------
    # Interactions (Figure 1)
    # ------------------------------------------------------------------
    def click_signal_name(self, name: str, button: MouseButton = MouseButton.LEFT) -> None:
        """Simulate a click on a signal's name label."""
        btn = self._name_buttons.get(name)
        if btn is None:
            raise KeyError(f"no signal row for {name!r}")
        btn.on_click(button)

    def click_value_button(self, name: str) -> None:
        btn = self._value_buttons.get(name)
        if btn is None:
            raise KeyError(f"no signal row for {name!r}")
        btn.on_click(MouseButton.LEFT)

    def open_signal_window(self, name: str) -> SignalParametersWindow:
        """Right-click on the signal name: open its parameters window."""
        window = SignalParametersWindow(self.scope.channel(name))
        self.open_windows.append(window)
        return window

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def transform_for(self, channel: Channel) -> ValueTransform:
        return ValueTransform(
            vmin=channel.spec.min,
            vmax=channel.spec.max,
            zoom=self.scope.zoom,
            bias=self.scope.bias,
            height=self.scope.height,
        )

    def trace_pixels(self, channel: Channel) -> List[Tuple[int, int]]:
        """Map a channel's trace to canvas pixels.

        The newest sample sits at the right edge; each polling period is
        ``px_per_period`` pixels (1 at default zoom), so a tuple file
        with points 100 ms apart shown at a 50 ms period puts them 2
        pixels apart — the Section 3.3 rule.
        """
        scope = self.scope
        if not channel.trace:
            return []
        transform = self.transform_for(channel)
        t_ref = self.display_time_ms()
        right = self.canvas_rect.right - 1
        # Columnar fast path: the trace ring hands back whole columns, so
        # the time→x and value→y mappings vectorise over the trace.
        times = channel.trace.times_array()
        values = channel.trace.values_array()
        periods_ago = (t_ref - times) / scope.period_ms
        xs = right - np.rint(periods_ago * self.px_per_period).astype(np.int64)
        visible = xs >= self.canvas_rect.x
        xs = xs[visible]
        ys = self.canvas_rect.y + transform.to_rows(values[visible])
        return list(zip(xs.tolist(), ys.tolist()))

    def display_time_ms(self) -> float:
        """The time of the right edge of the display."""
        if self.scope.mode is AcquisitionMode.PLAYBACK:
            return self.scope._playback_time
        return self.scope.loop.clock.now()

    def render(self, canvas: Optional[Canvas] = None) -> Canvas:
        """Draw the whole widget and return the canvas."""
        if canvas is None:
            canvas = Canvas(self.rect.width, self.rect.height)
        self.draw(canvas)
        return canvas

    def draw(self, canvas: Canvas) -> None:
        scope = self.scope
        # Title bar.
        canvas.fill_rect(Rect(0, 0, self.rect.width, TITLE_H), (30, 30, 30))
        canvas.text(4, 2, scope.name, color_rgb("white"))

        # Canvas background, graticule, rulers.
        canvas.fill_rect(self.canvas_rect, (0, 0, 0))
        canvas.grid(self.canvas_rect, x_step=max(10, self.rect.width // 10),
                    y_step=max(10, scope.height // 10))
        # One x tick per second of displayed time.
        px_per_second = max(1, round(1000.0 / scope.period_ms * self.px_per_period))
        canvas.ruler_x(self.canvas_rect, px_per_second)
        # y ruler: a tick every 10 "percent" of the 0..100 scale.
        canvas.ruler_y(self.canvas_rect, max(1, scope.height // 10))
        canvas.frame_rect(self.canvas_rect, (90, 90, 90))

        # Traces.
        for channel in scope.channels:
            if not channel.visible:
                continue
            pixels = self.trace_pixels(channel)
            if not pixels:
                continue
            color = self.channel_color(channel)
            mode = channel.spec.line
            if mode is LineMode.POINTS:
                canvas.points(pixels, color)
            elif mode is LineMode.STEP:
                canvas.steps(pixels, color)
            else:
                canvas.polyline(pixels, color)

        # Controls and signal rows (children draw themselves).
        for child in self.children:
            child.draw(canvas)

        # Live value readouts for toggled `Value` buttons.
        for name, btn in self._value_buttons.items():
            channel = scope.channel(name)
            if channel.show_value and channel.last_value is not None:
                canvas.text(
                    btn.rect.right + 6,
                    btn.rect.y + 2,
                    f"{channel.last_value:g}",
                    self.channel_color(channel),
                )
