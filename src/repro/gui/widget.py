"""A minimal widget tree with the interactions Figure 1 shows.

The paper's scope window is a GTK composite: a canvas, zoom/bias spin
widgets, a sampling-period widget, a delay widget, and a row per signal
whose *name label* responds to clicks (left toggles display, right opens
the parameters window) next to a ``Value`` toggle button.

This module provides just enough widget machinery to model that headlessly:
a tree of rectangles that routes click events to handlers.  Rendering is
the responsibility of each widget's ``draw(canvas)``.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from repro.gui.canvas import Canvas
from repro.gui.color import RGB, color_rgb
from repro.gui.geometry import Rect


class MouseButton(enum.Enum):
    """Which mouse button a click used (GTK button numbers 1 and 3)."""

    LEFT = 1
    RIGHT = 3


class Widget:
    """A rectangle in the window that can draw itself and take clicks."""

    def __init__(self, rect: Rect, name: str = "") -> None:
        self.rect = rect
        self.name = name
        self.children: List["Widget"] = []
        self.visible = True

    def add(self, child: "Widget") -> "Widget":
        """Attach a child widget; children draw and hit-test after the
        parent, so they appear on top."""
        self.children.append(child)
        return child

    def draw(self, canvas: Canvas) -> None:
        """Draw this widget; the base class draws children only."""
        if not self.visible:
            return
        for child in self.children:
            child.draw(canvas)

    def hit(self, x: int, y: int) -> Optional["Widget"]:
        """Deepest visible widget under (x, y), or None."""
        if not self.visible or not self.rect.contains(x, y):
            return None
        for child in reversed(self.children):
            found = child.hit(x, y)
            if found is not None:
                return found
        return self

    def click(self, x: int, y: int, button: MouseButton = MouseButton.LEFT) -> bool:
        """Route a click to the widget under (x, y).

        Returns True when some widget consumed the click.
        """
        target = self.hit(x, y)
        while target is not None:
            if target.on_click(button):
                return True
            target = self._parent_of(target)
        return False

    def _parent_of(self, widget: "Widget") -> Optional["Widget"]:
        if widget is self:
            return None
        for child in self.children:
            if child is widget:
                return self
            found = child._parent_of(widget)
            if found is not None:
                return found
        return None

    def on_click(self, button: MouseButton) -> bool:
        """Handle a click; return True when consumed.  Base: ignore."""
        return False


class Label(Widget):
    """Static or computed text."""

    def __init__(
        self,
        rect: Rect,
        text: str = "",
        color: str = "white",
        supplier: Optional[Callable[[], str]] = None,
    ) -> None:
        super().__init__(rect, name=f"label:{text}")
        self.text = text
        self.color: RGB = color_rgb(color)
        self.supplier = supplier

    def current_text(self) -> str:
        return self.supplier() if self.supplier is not None else self.text

    def draw(self, canvas: Canvas) -> None:
        if not self.visible:
            return
        canvas.text(self.rect.x, self.rect.y, self.current_text(), self.color)
        super().draw(canvas)


class ClickButton(Widget):
    """A labelled region with separate left/right click handlers.

    Models the signal-name label (left toggles display, right opens the
    parameter window) and the ``Value`` button.
    """

    def __init__(
        self,
        rect: Rect,
        text: str,
        on_left: Optional[Callable[[], object]] = None,
        on_right: Optional[Callable[[], object]] = None,
        color: str = "white",
    ) -> None:
        super().__init__(rect, name=f"button:{text}")
        self.text = text
        self.color: RGB = color_rgb(color)
        self.on_left = on_left
        self.on_right = on_right
        self.presses = 0

    def on_click(self, button: MouseButton) -> bool:
        handler = self.on_left if button is MouseButton.LEFT else self.on_right
        if handler is None:
            return False
        self.presses += 1
        handler()
        return True

    def draw(self, canvas: Canvas) -> None:
        if not self.visible:
            return
        canvas.frame_rect(self.rect, self.color)
        canvas.text(self.rect.x + 2, self.rect.y + 2, self.text, self.color)
        super().draw(canvas)


class SpinWidget(Widget):
    """Value adjuster modelling the zoom/bias/period/delay widgets.

    Left-click increments, right-click decrements; the programmatic
    interface is :meth:`spin` and :meth:`set`.
    """

    def __init__(
        self,
        rect: Rect,
        label: str,
        get: Callable[[], float],
        set_: Callable[[float], None],
        step: float = 1.0,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
    ) -> None:
        super().__init__(rect, name=f"spin:{label}")
        self.label = label
        self._get = get
        self._set = set_
        self.step = step
        self.minimum = minimum
        self.maximum = maximum

    @property
    def value(self) -> float:
        return self._get()

    def set(self, value: float) -> float:
        if self.minimum is not None:
            value = max(self.minimum, value)
        if self.maximum is not None:
            value = min(self.maximum, value)
        self._set(value)
        return self.value

    def spin(self, steps: int) -> float:
        return self.set(self.value + steps * self.step)

    def on_click(self, button: MouseButton) -> bool:
        self.spin(1 if button is MouseButton.LEFT else -1)
        return True

    def draw(self, canvas: Canvas) -> None:
        if not self.visible:
            return
        text = f"{self.label}: {self.value:g}"
        canvas.text(self.rect.x, self.rect.y, text, color_rgb("lightgrey"))
        super().draw(canvas)
