"""Clocks for the event loop.

All times in this package are floating-point **milliseconds**, matching the
tuple format of the paper (Section 3.3: "its value is in milliseconds").

Three clocks are provided:

* :class:`VirtualClock` — a deterministic clock that only moves when told
  to.  The main loop advances it to the next timer deadline, so tests and
  simulations run instantaneously and reproducibly.
* :class:`SystemClock` — wall-clock time from :func:`time.monotonic`, used
  by the overhead benchmarks (Section 4.6 of the paper measures real CPU
  consumption).
* :class:`KernelTimerModel` — a decorator clock that models the kernel
  timer interrupt: wakeups are quantised to a tick (10 ms on 2002 Linux,
  Section 4.5) and an optional scheduling-latency model can delay wakeups
  further, producing the "lost timeouts" the paper compensates for.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Optional


class Clock:
    """Abstract time source for :class:`~repro.eventloop.loop.MainLoop`.

    Subclasses must implement :meth:`now` and :meth:`wait_until`.
    """

    def now(self) -> float:
        """Return the current time in milliseconds."""
        raise NotImplementedError

    def wait_until(self, deadline_ms: float) -> None:
        """Block (or jump) until ``deadline_ms``.

        A virtual clock jumps; a system clock sleeps.  Waiting for a
        deadline in the past is a no-op.
        """
        raise NotImplementedError

    def wakeup_time(self, deadline_ms: float) -> float:
        """Return the time the clock will actually deliver a wakeup
        requested for ``deadline_ms``.

        The base clocks are ideal (the wakeup lands exactly on the
        deadline); :class:`KernelTimerModel` overrides this to model tick
        quantisation and scheduling latency.
        """
        return deadline_ms


class VirtualClock(Clock):
    """Deterministic clock under test control.

    Time starts at ``start_ms`` and only moves via :meth:`advance` or
    :meth:`wait_until`.  Moving backwards raises :class:`ValueError`,
    guaranteeing monotonicity.
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now = float(start_ms)

    def now(self) -> float:
        return self._now

    def advance(self, delta_ms: float) -> float:
        """Move time forward by ``delta_ms`` and return the new time."""
        if delta_ms < 0:
            raise ValueError(f"cannot advance by negative time: {delta_ms}")
        self._now += delta_ms
        return self._now

    def wait_until(self, deadline_ms: float) -> None:
        if deadline_ms > self._now:
            self._now = float(deadline_ms)


class SystemClock(Clock):
    """Wall-clock time based on :func:`time.monotonic`.

    The epoch is captured at construction so times start near zero, which
    keeps recorded tuple files readable.
    """

    def __init__(self) -> None:
        self._epoch = time.monotonic()

    def now(self) -> float:
        return (time.monotonic() - self._epoch) * 1000.0

    def wait_until(self, deadline_ms: float) -> None:
        delay_s = (deadline_ms - self.now()) / 1000.0
        if delay_s > 0:
            time.sleep(delay_s)


LatencyModel = Callable[[float], float]
"""Maps a wakeup time (ms) to an added scheduling latency (ms, >= 0)."""


class KernelTimerModel(Clock):
    """Clock decorator reproducing Section 4.5 of the paper.

    The POSIX ``select`` timeout accepts microsecond arguments but the
    kernel only wakes processes on the timer interrupt, so every wakeup is
    rounded **up** to the next multiple of ``tick_ms`` (10 ms on the
    paper's Linux, capping polling at 100 Hz).  Under load, scheduling
    latency delays wakeups further; pass ``latency`` to model that and
    exercise gscope's lost-timeout compensation.
    """

    def __init__(
        self,
        base: Clock,
        tick_ms: float = 10.0,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        if tick_ms <= 0:
            raise ValueError(f"tick must be positive: {tick_ms}")
        self.base = base
        self.tick_ms = float(tick_ms)
        self.latency = latency

    def now(self) -> float:
        return self.base.now()

    def _quantise(self, deadline_ms: float) -> float:
        ticks = math.ceil(deadline_ms / self.tick_ms - 1e-9)
        return ticks * self.tick_ms

    def wakeup_time(self, deadline_ms: float) -> float:
        woken = self._quantise(deadline_ms)
        if self.latency is not None:
            extra = self.latency(woken)
            if extra < 0:
                raise ValueError(f"latency model returned negative delay: {extra}")
            woken += extra
        return woken

    def wait_until(self, deadline_ms: float) -> None:
        self.base.wait_until(self.wakeup_time(deadline_ms))

    # Convenience passthrough so tests can drive a wrapped VirtualClock.
    def advance(self, delta_ms: float) -> float:
        advance = getattr(self.base, "advance", None)
        if advance is None:
            raise TypeError("underlying clock does not support advance()")
        return advance(delta_ms)
