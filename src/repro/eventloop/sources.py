"""Event sources, modelled on glib's ``GSource``.

Gscope uses three glib source kinds and so do we:

* :class:`TimeoutSource` — ``g_timeout_add``: fires every ``interval_ms``.
  Used for scope polling (Section 3.4: ``gtk_scope_set_polling_mode``).
* :class:`IdleSource` — ``g_idle_add``: fires when nothing else is ready.
  Used for canvas refresh.
* :class:`IOWatch` — ``g_io_add_watch``: fires when a channel is readable
  or writable.  Used by the client-server library (Section 4.4) and by the
  I/O-driven application style of Figure 6.

All callbacks follow the glib convention: return ``True`` to keep the
source installed, anything falsy to remove it.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Optional, Protocol, runtime_checkable


class Priority(enum.IntEnum):
    """Dispatch priority; lower value runs first (glib convention)."""

    HIGH = -100
    DEFAULT = 0
    HIGH_IDLE = 100
    DEFAULT_IDLE = 200
    LOW = 300


_source_ids = itertools.count(1)


class Source:
    """Base class for event sources attached to a main loop."""

    __slots__ = ("id", "callback", "priority", "attached", "destroyed")

    def __init__(self, callback: Callable[..., Any], priority: Priority = Priority.DEFAULT) -> None:
        if not callable(callback):
            raise TypeError(f"callback must be callable, got {callback!r}")
        self.id = next(_source_ids)
        self.callback = callback
        self.priority = priority
        self.attached = False
        self.destroyed = False

    def ready(self, now_ms: float) -> bool:
        """Return True when the source wants to be dispatched at ``now_ms``."""
        raise NotImplementedError

    def next_deadline(self, now_ms: float) -> Optional[float]:
        """Earliest time (ms) this source could become ready, or None.

        ``None`` means the source has no time-based readiness (e.g. an I/O
        watch); the loop must poll it rather than sleep toward it.
        """
        return None

    def dispatch(self, now_ms: float) -> bool:
        """Invoke the callback; return True to keep the source installed."""
        return bool(self.callback())

    def destroy(self) -> None:
        """Mark the source for removal regardless of callback returns."""
        self.destroyed = True


class TimeoutSource(Source):
    """Periodic timer source (``g_timeout_add`` equivalent).

    The first dispatch happens one full interval after attachment.  If
    dispatching falls behind (coarse ticks, scheduling latency), the
    deadline advances by whole intervals and :attr:`missed` accumulates the
    number of skipped firings.  This is the accounting gscope's scope
    refresh uses to "advance the scope appropriately" (Section 4.5).
    """

    __slots__ = ("interval_ms", "deadline", "missed", "fired")

    def __init__(
        self,
        interval_ms: float,
        callback: Callable[..., Any],
        priority: Priority = Priority.DEFAULT,
    ) -> None:
        super().__init__(callback, priority)
        if interval_ms <= 0:
            raise ValueError(f"interval must be positive: {interval_ms}")
        self.interval_ms = float(interval_ms)
        self.deadline: Optional[float] = None
        self.missed = 0
        self.fired = 0

    def start(self, now_ms: float) -> None:
        self.deadline = now_ms + self.interval_ms

    def ready(self, now_ms: float) -> bool:
        return self.deadline is not None and now_ms >= self.deadline - 1e-9

    def next_deadline(self, now_ms: float) -> Optional[float]:
        return self.deadline

    def dispatch(self, now_ms: float) -> bool:
        assert self.deadline is not None
        late_by = now_ms - self.deadline
        lost = int(late_by // self.interval_ms) if late_by > 0 else 0
        self.missed += lost
        self.fired += 1
        # Next deadline stays phase-aligned with the original schedule.
        self.deadline += (lost + 1) * self.interval_ms
        return bool(self.callback(lost))


class IdleSource(Source):
    """Source dispatched whenever an iteration finds no timer/IO work."""

    __slots__ = ()

    def __init__(
        self,
        callback: Callable[..., Any],
        priority: Priority = Priority.DEFAULT_IDLE,
    ) -> None:
        super().__init__(callback, priority)

    def ready(self, now_ms: float) -> bool:
        return True

    def dispatch(self, now_ms: float) -> bool:
        return bool(self.callback())


@runtime_checkable
class Pollable(Protocol):
    """Anything an :class:`IOWatch` can watch.

    Real sockets and in-memory transports both satisfy this by exposing
    ``readable()`` / ``writable()`` predicates.
    """

    def readable(self) -> bool: ...

    def writable(self) -> bool: ...


class IOCondition(enum.Flag):
    """Which channel condition the watch waits for (``G_IO_IN``/``OUT``)."""

    IN = enum.auto()
    OUT = enum.auto()


class IOWatch(Source):
    """Channel readiness source (``g_io_add_watch`` equivalent).

    The callback receives the channel and the condition that fired, like
    glib's ``GIOFunc(source, condition, data)`` minus the user-data pointer
    (closures cover that in Python).
    """

    __slots__ = ("channel", "condition", "_fired_cache")

    def __init__(
        self,
        channel: Pollable,
        condition: IOCondition,
        callback: Callable[..., Any],
        priority: Priority = Priority.DEFAULT,
    ) -> None:
        super().__init__(callback, priority)
        if not isinstance(channel, Pollable):
            raise TypeError(
                f"channel must expose readable()/writable(), got {channel!r}"
            )
        self.channel = channel
        self.condition = condition
        self._fired_cache: Optional[IOCondition] = None

    def _fired_condition(self) -> IOCondition:
        fired = IOCondition(0)
        if IOCondition.IN in self.condition and self.channel.readable():
            fired |= IOCondition.IN
        if IOCondition.OUT in self.condition and self.channel.writable():
            fired |= IOCondition.OUT
        return fired

    def ready(self, now_ms: float) -> bool:
        # The probed condition is cached for the dispatch that follows in
        # the same iteration — glib likewise hands dispatch the revents
        # gathered at poll time.  On real sockets each probe is a
        # select() syscall, so re-probing in dispatch would double the
        # per-wakeup syscall cost of the wire hot path.
        fired = self._fired_condition()
        self._fired_cache = fired
        return bool(fired)

    def dispatch(self, now_ms: float) -> bool:
        fired = self._fired_cache
        self._fired_cache = None
        if fired is None:  # dispatched without a ready() probe
            fired = self._fired_condition()
        return bool(self.callback(self.channel, fired))
