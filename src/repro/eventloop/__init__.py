"""Event-loop substrate: a from-scratch replacement for the glib main loop.

Gscope (Goel & Walpole, USENIX FREENIX 2002) sits on the glib main loop:
its polling is a glib timeout source, its GUI refresh is an idle source and
its distributed client/server library is driven by I/O watches.  This
package rebuilds those pieces in pure Python with the same source
semantics (callbacks return ``True`` to stay installed, ``False`` to be
removed) plus two additions the reproduction needs:

* a pluggable :class:`~repro.eventloop.clock.Clock` so tests and benchmarks
  can run on a deterministic :class:`~repro.eventloop.clock.VirtualClock`
  or on the real :class:`~repro.eventloop.clock.SystemClock`, and
* a :class:`~repro.eventloop.clock.KernelTimerModel` that reproduces the
  coarse kernel timer quantisation (10 ms on 2002-era Linux) and the
  scheduling-latency-induced lost timeouts discussed in Section 4.5 of the
  paper.
"""

from repro.eventloop.clock import (
    Clock,
    KernelTimerModel,
    SystemClock,
    VirtualClock,
)
from repro.eventloop.loop import MainLoop
from repro.eventloop.sources import (
    IdleSource,
    IOWatch,
    Priority,
    Source,
    TimeoutSource,
)

__all__ = [
    "Clock",
    "IOWatch",
    "IdleSource",
    "KernelTimerModel",
    "MainLoop",
    "Priority",
    "Source",
    "SystemClock",
    "TimeoutSource",
    "VirtualClock",
]
