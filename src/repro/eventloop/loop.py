"""The main loop: prepare → poll → dispatch, like glib's ``GMainLoop``.

One iteration:

1. collect ready sources (timers past deadline, readable/writable
   channels),
2. if none are ready and idle sources exist, dispatch idles,
3. if still nothing, wait on the clock until the earliest timer deadline
   (a :class:`~repro.eventloop.clock.VirtualClock` jumps; a
   :class:`~repro.eventloop.clock.SystemClock` sleeps; a
   :class:`~repro.eventloop.clock.KernelTimerModel` rounds the wakeup up
   to the next kernel tick and may add scheduling latency),
4. dispatch ready sources in priority order; callbacks returning falsy are
   removed (glib semantics).

Indexed scheduler
-----------------

Sources are partitioned at attach time instead of being rescanned every
iteration:

* **timers** (plain :class:`TimeoutSource`) keep their deadlines in a
  lazy-invalidation heap: each source has at most one live heap entry;
  removal or restart marks the old entry dead in place and dead entries
  are discarded when they surface at the top.  Finding the earliest
  deadline and collecting the ready batch are O(log n) per ready source
  rather than O(total sources).
* **idles** live in their own id-indexed dict; an iteration with timer or
  I/O work never touches them.
* **polled** sources (I/O watches and any custom :class:`Source`
  subclass) keep predicate readiness: they are the only partition the
  loop still probes per iteration, so a thousand quiet timers no longer
  tax an I/O poll and vice versa.
* **hinted** I/O watches split off from the polled partition: an IN
  watch whose channel can notify on the readable edge (the zero-delay
  in-memory transport — see
  :meth:`~repro.net.transport.MemoryEndpoint.add_ready_listener`) is
  probed only after a hint fires, the in-process analogue of moving
  from ``select()`` to ``epoll``.  A loop tick is then O(ready), not
  O(watches) — the property that lets one server carry a thousand
  quiet subscriber connections for free.  Channels that cannot promise
  the edge (real sockets, delayed links, fault-injected links) stay
  level-polled with unchanged semantics.

``attach``/``remove`` are O(1) dict operations.  Dispatch semantics are
unchanged from the scan implementation: ready sources run in
(priority, id) order, callbacks returning falsy are detached, lost
timeout intervals are accounted by :class:`TimeoutSource.dispatch`, and
``run_until`` leaves the clock exactly at its deadline.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional

from repro.eventloop.clock import Clock, VirtualClock
from repro.eventloop.sources import (
    IdleSource,
    IOCondition,
    IOWatch,
    Pollable,
    Priority,
    Source,
    TimeoutSource,
)

# Heap entries are mutable: [deadline_ms, push_seq, source | None].
# ``source is None`` marks a dead entry (the source was removed or its
# deadline changed).  The tiebreaker is a per-loop monotonic push
# sequence, NOT the source id: a dead entry and a live one can share an
# id (remove + re-attach at one instant), and equal (deadline, id)
# prefixes would make heapq compare Source with None.
_HeapEntry = List[Any]

_READY_EPS = 1e-9


def _dispatch_key(source: Source) -> tuple:
    return (source.priority, source.id)


class _LoopObs:
    """Instrument bundle mounted by :meth:`MainLoop.observe`.

    Holds direct cell references so the per-dispatch cost with
    observation on is a dict get plus an integer add; with observation
    off (``loop._obs is None``, the default) the dispatch loop pays a
    single pointer compare.
    """

    __slots__ = (
        "by_priority",
        "other",
        "timer_lag",
        "slow_threshold_ms",
        "slow_callbacks",
        "callback_wall_ms",
        "perf",
    )

    def __init__(
        self,
        by_priority: Dict[int, Any],
        other: Any,
        timer_lag: Any,
        slow_threshold_ms: Optional[float],
        slow_callbacks: Any,
        callback_wall_ms: Any,
        perf: Callable[[], float],
    ) -> None:
        self.by_priority = by_priority
        self.other = other
        self.timer_lag = timer_lag
        self.slow_threshold_ms = slow_threshold_ms
        self.slow_callbacks = slow_callbacks
        self.callback_wall_ms = callback_wall_ms
        self.perf = perf


class MainLoop:
    """Event loop multiplexing timeouts, idles and I/O watches.

    Parameters
    ----------
    clock:
        Time source.  Defaults to a fresh :class:`VirtualClock` so unit
        tests are deterministic; pass :class:`SystemClock` for real-time
        runs and benchmarks.
    max_io_poll_ms:
        When only I/O watches are installed there is no deadline to sleep
        toward; the loop re-polls channels at this granularity to avoid a
        busy spin on a system clock.
    """

    def __init__(self, clock: Optional[Clock] = None, max_io_poll_ms: float = 1.0) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.max_io_poll_ms = float(max_io_poll_ms)
        # All attached sources, id -> source, in attach order (dict
        # preserves insertion), so `sources` matches the old list.
        self._by_id: Dict[int, Source] = {}
        # Partitions (disjoint, also id -> source, attach-ordered).
        self._timers: Dict[int, TimeoutSource] = {}
        self._idles: Dict[int, Source] = {}
        self._polled: Dict[int, Source] = {}
        self._io_count = 0  # IOWatch instances inside _polled
        # Hinted I/O watches: channels that notify on the readable edge
        # (in-memory transports) instead of being probed every iteration.
        # An iteration only probes members of the _hinted set — with a
        # thousand quiet subscriber connections this is what keeps one
        # loop tick O(ready), not O(watches).
        self._hint_polled: Dict[int, Source] = {}
        self._hinted: set = set()
        self._hint_remove: Dict[int, Callable[[], None]] = {}
        # Timer index: heap of live entries + id -> its current entry.
        self._timer_heap: List[_HeapEntry] = []
        self._timer_entry: Dict[int, _HeapEntry] = {}
        self._heap_seq = 0  # heap tiebreaker; bumped on every push
        self._running = False
        self.iterations = 0
        self.dispatches = 0
        self._obs: Optional[_LoopObs] = None  # see observe()

    # ------------------------------------------------------------------
    # Source management
    # ------------------------------------------------------------------
    def attach(self, source: Source) -> int:
        """Attach a source and return its id.  O(1) (O(log n) for timers)."""
        if source.attached:
            raise ValueError(f"source {source.id} already attached")
        source.attached = True
        source.destroyed = False
        sid = source.id
        self._by_id[sid] = source
        # Exact-type check: TimeoutSource subclasses may override the
        # deadline discipline the heap relies on, so they stay predicate-
        # polled like any other custom source.
        if type(source) is TimeoutSource:
            source.start(self.clock.now())
            self._timers[sid] = source
            self._push_timer(source)
        elif isinstance(source, TimeoutSource):
            source.start(self.clock.now())
            self._polled[sid] = source
        elif isinstance(source, IdleSource):
            self._idles[sid] = source
        else:
            if isinstance(source, IOWatch) and self._try_hint(source):
                return sid
            self._polled[sid] = source
            if isinstance(source, IOWatch):
                self._io_count += 1
        return sid

    def _try_hint(self, source: IOWatch) -> bool:
        """Move an IN watch to the hinted partition when its channel can
        notify on the readable edge; False keeps it level-polled."""
        if source.condition != IOCondition.IN:
            return False
        register = getattr(source.channel, "add_ready_listener", None)
        if register is None:
            return False
        sid = source.id
        hint = self._hinted.add

        def on_edge() -> None:
            hint(sid)

        if not register(on_edge):
            return False
        self._hint_polled[sid] = source
        self._hint_remove[sid] = lambda: source.channel.remove_ready_listener(
            on_edge
        )
        # Probe once at attach: bytes may already be queued in the link.
        self._hinted.add(sid)
        return True

    def remove(self, source_id: int) -> bool:
        """Detach the source with ``source_id``; True if it was present."""
        source = self._by_id.get(source_id)
        if source is None:
            return False
        source.destroy()
        self._detach(source)
        return True

    def _detach(self, source: Source) -> None:
        """Drop an attached source from every index (idempotent)."""
        sid = source.id
        if self._by_id.pop(sid, None) is None:
            return
        source.attached = False
        if self._timers.pop(sid, None) is not None:
            entry = self._timer_entry.pop(sid, None)
            if entry is not None:
                entry[2] = None  # lazy invalidation; discarded on surfacing
        elif self._idles.pop(sid, None) is None:
            if self._hint_polled.pop(sid, None) is not None:
                self._hinted.discard(sid)
                self._hint_remove.pop(sid)()
            else:
                removed = self._polled.pop(sid, None)
                if removed is not None and isinstance(removed, IOWatch):
                    self._io_count -= 1

    def _push_timer(self, source: TimeoutSource) -> None:
        """(Re)index a timer at its current deadline.

        Idempotent reconciliation: an existing entry already at the
        source's deadline is kept; a stale one is invalidated in place
        and replaced.
        """
        old = self._timer_entry.pop(source.id, None)
        if old is not None:
            if old[0] == source.deadline:
                self._timer_entry[source.id] = old
                return
            old[2] = None
        self._heap_seq += 1
        entry: _HeapEntry = [source.deadline, self._heap_seq, source]
        self._timer_entry[source.id] = entry
        heapq.heappush(self._timer_heap, entry)

    def timeout_add(
        self,
        interval_ms: float,
        callback: Callable[..., Any],
        priority: Priority = Priority.DEFAULT,
    ) -> int:
        """``g_timeout_add``: run ``callback(lost)`` every ``interval_ms``.

        ``lost`` is the number of intervals skipped since the previous
        dispatch (0 when on schedule) — the hook gscope uses to advance
        the display after lost timeouts.
        """
        return self.attach(TimeoutSource(interval_ms, callback, priority))

    def idle_add(
        self,
        callback: Callable[..., Any],
        priority: Priority = Priority.DEFAULT_IDLE,
    ) -> int:
        """``g_idle_add``: run ``callback()`` when the loop is otherwise idle."""
        return self.attach(IdleSource(callback, priority))

    def io_add_watch(
        self,
        channel: Pollable,
        condition: IOCondition,
        callback: Callable[..., Any],
        priority: Priority = Priority.DEFAULT,
    ) -> int:
        """``g_io_add_watch``: run ``callback(channel, condition)`` on readiness."""
        return self.attach(IOWatch(channel, condition, callback, priority))

    # ------------------------------------------------------------------
    # Self-instrumentation
    # ------------------------------------------------------------------
    def observe(
        self,
        registry,
        prefix: str = "loop.",
        slow_callback_ms: Optional[float] = None,
    ) -> bool:
        """Mount event-loop instruments into a metrics registry.

        Installs per-priority dispatch counters, a timer-lag histogram
        (loop-clock milliseconds past the deadline — deterministic, so
        the publisher may export it) and, when ``slow_callback_ms`` is
        given, a wall-clock callback profiler: every dispatched
        callback's real duration feeds ``callback_wall_ms`` and those at
        or over the threshold bump ``slow_callbacks`` (both ``wall``
        instruments: scrape-only, never published).

        Returns False — mounting nothing and leaving dispatch untouched
        — when the obs plane is unavailable or disabled (``REPRO_OBS=0``).
        """
        try:
            from repro.obs import metrics as _metrics
        except ImportError:  # obs plane absent: stay dark
            return False
        if not _metrics.enabled():
            return False
        import time as _time

        by_priority = {
            int(p): registry.counter(f"{prefix}dispatch.{p.name.lower()}")
            for p in Priority
        }
        registry.gauge(f"{prefix}sources", fn=lambda: float(len(self._by_id)))
        registry.gauge(f"{prefix}timers", fn=lambda: float(len(self._timers)))
        self._obs = _LoopObs(
            by_priority=by_priority,
            other=registry.counter(f"{prefix}dispatch.other"),
            timer_lag=registry.histogram(f"{prefix}timer_lag_ms"),
            slow_threshold_ms=(
                float(slow_callback_ms) if slow_callback_ms is not None else None
            ),
            slow_callbacks=registry.counter(f"{prefix}slow_callbacks", wall=True),
            callback_wall_ms=registry.histogram(
                f"{prefix}callback_wall_ms", wall=True
            ),
            perf=_time.perf_counter,
        )
        return True

    def unobserve(self) -> None:
        """Detach loop instruments; cells stay mounted in the registry."""
        self._obs = None

    @property
    def sources(self) -> List[Source]:
        return list(self._by_id.values())

    @property
    def timer_count(self) -> int:
        """Heap-indexed timer sources currently attached."""
        return len(self._timers)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def _pop_ready_timers(self, now: float) -> List[Source]:
        """Pop every live timer entry due at ``now`` off the heap.

        Popped timers are *in flight*: they have no heap entry until
        :meth:`_dispatch` re-indexes the ones that stay attached.
        """
        heap = self._timer_heap
        ready: List[Source] = []
        if not heap:
            return ready
        entries = self._timer_entry
        pop = heapq.heappop
        # Same float expression as TimeoutSource.ready so heap collection
        # is bit-identical to the scan it replaces.
        while heap and now >= heap[0][0] - _READY_EPS:
            entry = pop(heap)
            source = entry[2]
            if source is None or entries.get(source.id) is not entry:
                continue  # dead or superseded entry
            del entries[source.id]
            ready.append(source)
        return ready

    def _ready_sources(self, now: float, include_idle: bool) -> List[Source]:
        ready = self._pop_ready_timers(now)
        if self._polled:
            ready.extend(s for s in self._polled.values() if s.ready(now))
        if self._hinted:
            # Probe only the hinted watches; a hint that probes dry is
            # cleared (the next send on the channel re-arms it), one
            # that probes ready stays armed — level-triggered semantics
            # for a callback that does not fully drain the channel.
            for sid in list(self._hinted):
                source = self._hint_polled.get(sid)
                if source is None:
                    self._hinted.discard(sid)
                elif source.ready(now):
                    ready.append(source)
                else:
                    self._hinted.discard(sid)
        if not ready and include_idle and self._idles:
            ready = list(self._idles.values())
        if len(ready) > 1:
            ready.sort(key=_dispatch_key)
        return ready

    def _earliest_deadline(self, now: float) -> Optional[float]:
        heap = self._timer_heap
        while heap and heap[0][2] is None:
            heapq.heappop(heap)  # shed dead entries as they surface
        best: Optional[float] = heap[0][0] if heap else None
        if self._polled:
            for source in self._polled.values():
                deadline = source.next_deadline(now)
                if deadline is not None and (best is None or deadline < best):
                    best = deadline
        return best

    def _dispatch(self, ready: List[Source], now: float) -> int:
        count = 0
        timers = self._timers
        entries = self._timer_entry
        heap = self._timer_heap
        push = heapq.heappush
        obs = self._obs
        try:
            for src in ready:
                if src.destroyed or not src.attached:
                    continue
                if obs is not None:
                    cell = obs.by_priority.get(src.priority, obs.other)
                    cell.inc()
                    if src.id in timers:
                        # Deadline read *before* dispatch advances it:
                        # lag is pure loop-clock arithmetic, so it stays
                        # deterministic (and publishable) on a
                        # VirtualClock.
                        obs.timer_lag.observe(now - src.deadline)
                    if obs.slow_threshold_ms is not None:
                        t0 = obs.perf()
                        keep = src.dispatch(now)
                        wall_ms = (obs.perf() - t0) * 1000.0
                        obs.callback_wall_ms.observe(wall_ms)
                        if wall_ms >= obs.slow_threshold_ms:
                            obs.slow_callbacks.inc()
                    else:
                        keep = src.dispatch(now)
                else:
                    keep = src.dispatch(now)
                count += 1
                sid = src.id
                if not keep or src.destroyed:
                    self._detach(src)
                elif sid in timers:
                    entry = entries.get(sid)
                    if entry is None:
                        # In flight (popped ready): index the new deadline.
                        self._heap_seq += 1
                        entry = [src.deadline, self._heap_seq, src]
                        entries[sid] = entry
                        push(heap, entry)
                    elif entry[0] != src.deadline:
                        # The callback detached and re-attached this very
                        # timer: attach indexed the pre-dispatch deadline,
                        # dispatch then advanced it.  Reconcile.
                        self._push_timer(src)
        except BaseException:
            # A raising callback must not strand the rest of the popped
            # batch: re-index any in-flight timer left undispatched.
            for src in ready:
                if src.attached and src.id in timers:
                    self._push_timer(src)
            self.dispatches += count
            raise
        self.dispatches += count
        return count

    def iteration(self, may_block: bool = True) -> bool:
        """Run one loop iteration; return True if anything was dispatched.

        With ``may_block=False`` the iteration only dispatches work that is
        already ready (plus idles) and never waits on the clock.
        """
        self.iterations += 1
        now = self.clock.now()
        ready = self._ready_sources(now, include_idle=True)
        if ready:
            return self._dispatch(ready, now) > 0
        if not may_block:
            return False
        deadline = self._earliest_deadline(now)
        has_io = self._io_count > 0 or bool(self._hint_polled)
        if deadline is None and not has_io:
            return False  # nothing will ever become ready
        if deadline is None or (has_io and deadline - now > self.max_io_poll_ms):
            deadline = now + self.max_io_poll_ms
        self.clock.wait_until(deadline)
        now = self.clock.now()
        ready = self._ready_sources(now, include_idle=False)
        return self._dispatch(ready, now) > 0

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, max_iterations: Optional[int] = None) -> None:
        """Run until :meth:`quit` or until no source can ever fire again.

        ``max_iterations`` is a safety valve for tests.
        """
        self._running = True
        done = 0
        while self._running and self._by_id:
            # Partition counts replace the per-iteration rebuild of the
            # timed-or-io list: blocking is allowed exactly when a
            # non-idle source exists.
            self.iteration(
                may_block=bool(self._timers or self._polled or self._hint_polled)
            )
            done += 1
            if max_iterations is not None and done >= max_iterations:
                break
        self._running = False

    def run_until(self, deadline_ms: float) -> None:
        """Run iterations until the clock reaches ``deadline_ms``.

        Primarily for :class:`VirtualClock` runs: the loop processes every
        event with a deadline at or before ``deadline_ms`` and leaves the
        clock exactly at ``deadline_ms``.
        """
        self._running = True
        clock_now = self.clock.now
        while self._running:
            now = clock_now()
            if now >= deadline_ms:
                break
            ready = self._ready_sources(now, include_idle=False)
            if ready:
                self._dispatch(ready, now)
                continue
            next_deadline = self._earliest_deadline(now)
            if self._io_count:
                step = min(
                    next_deadline if next_deadline is not None else deadline_ms,
                    now + self.max_io_poll_ms,
                    deadline_ms,
                )
            elif next_deadline is None or next_deadline > deadline_ms:
                self.clock.wait_until(deadline_ms)
                break
            else:
                step = next_deadline
            self.clock.wait_until(max(step, now))
        self._running = False

    def run_for(self, duration_ms: float) -> None:
        """Run for ``duration_ms`` from the current clock time."""
        self.run_until(self.clock.now() + duration_ms)

    def run_through(self, deadline_ms: float) -> None:
        """Like :meth:`run_until`, but *inclusive* of the deadline.

        ``run_until(t)`` leaves sources whose deadline is exactly ``t``
        undispatched (the clock lands on ``t`` and the loop exits).
        ``run_through(t)`` additionally dispatches everything due at
        ``t`` itself — in the same (priority, id) order an ongoing run
        would use — and leaves the clock at ``t``.  This is the
        catch-up primitive: advancing a shard's private loop to the
        router clock *through* ``t`` guarantees that any work scheduled
        at ``t`` (a poll, a heartbeat, a replayed push) has happened
        before the caller applies state at ``t``, so a live delivery
        and a replayed one observe identical orderings.

        Idle sources are not dispatched by the inclusive drain: they
        are fallback work, not deadline work, and draining them here
        would make catch-up diverge from a plain ``run_until`` ride.
        """
        self.run_until(deadline_ms)
        now = self.clock.now()
        while True:
            ready = self._ready_sources(now, include_idle=False)
            if not ready:
                break
            self._dispatch(ready, now)

    def quit(self) -> None:
        """Stop :meth:`run` / :meth:`run_until` after the current iteration."""
        self._running = False

    @property
    def running(self) -> bool:
        return self._running
