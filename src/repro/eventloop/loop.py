"""The main loop: prepare → poll → dispatch, like glib's ``GMainLoop``.

One iteration:

1. collect ready sources (timers past deadline, readable/writable
   channels),
2. if none are ready and idle sources exist, dispatch idles,
3. if still nothing, wait on the clock until the earliest timer deadline
   (a :class:`~repro.eventloop.clock.VirtualClock` jumps; a
   :class:`~repro.eventloop.clock.SystemClock` sleeps; a
   :class:`~repro.eventloop.clock.KernelTimerModel` rounds the wakeup up
   to the next kernel tick and may add scheduling latency),
4. dispatch ready sources in priority order; callbacks returning falsy are
   removed (glib semantics).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.eventloop.clock import Clock, VirtualClock
from repro.eventloop.sources import (
    IdleSource,
    IOCondition,
    IOWatch,
    Pollable,
    Priority,
    Source,
    TimeoutSource,
)


class MainLoop:
    """Event loop multiplexing timeouts, idles and I/O watches.

    Parameters
    ----------
    clock:
        Time source.  Defaults to a fresh :class:`VirtualClock` so unit
        tests are deterministic; pass :class:`SystemClock` for real-time
        runs and benchmarks.
    max_io_poll_ms:
        When only I/O watches are installed there is no deadline to sleep
        toward; the loop re-polls channels at this granularity to avoid a
        busy spin on a system clock.
    """

    def __init__(self, clock: Optional[Clock] = None, max_io_poll_ms: float = 1.0) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.max_io_poll_ms = float(max_io_poll_ms)
        self._sources: List[Source] = []
        self._running = False
        self.iterations = 0
        self.dispatches = 0

    # ------------------------------------------------------------------
    # Source management
    # ------------------------------------------------------------------
    def attach(self, source: Source) -> int:
        """Attach a source and return its id."""
        if source.attached:
            raise ValueError(f"source {source.id} already attached")
        source.attached = True
        source.destroyed = False
        if isinstance(source, TimeoutSource):
            source.start(self.clock.now())
        self._sources.append(source)
        return source.id

    def remove(self, source_id: int) -> bool:
        """Detach the source with ``source_id``; True if it was present."""
        for src in self._sources:
            if src.id == source_id:
                src.destroy()
                src.attached = False
                self._sources.remove(src)
                return True
        return False

    def timeout_add(
        self,
        interval_ms: float,
        callback: Callable[..., Any],
        priority: Priority = Priority.DEFAULT,
    ) -> int:
        """``g_timeout_add``: run ``callback(lost)`` every ``interval_ms``.

        ``lost`` is the number of intervals skipped since the previous
        dispatch (0 when on schedule) — the hook gscope uses to advance
        the display after lost timeouts.
        """
        return self.attach(TimeoutSource(interval_ms, callback, priority))

    def idle_add(
        self,
        callback: Callable[..., Any],
        priority: Priority = Priority.DEFAULT_IDLE,
    ) -> int:
        """``g_idle_add``: run ``callback()`` when the loop is otherwise idle."""
        return self.attach(IdleSource(callback, priority))

    def io_add_watch(
        self,
        channel: Pollable,
        condition: IOCondition,
        callback: Callable[..., Any],
        priority: Priority = Priority.DEFAULT,
    ) -> int:
        """``g_io_add_watch``: run ``callback(channel, condition)`` on readiness."""
        return self.attach(IOWatch(channel, condition, callback, priority))

    @property
    def sources(self) -> List[Source]:
        return list(self._sources)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def _ready_sources(self, now: float, include_idle: bool) -> List[Source]:
        ready = [
            s
            for s in self._sources
            if not isinstance(s, IdleSource) and s.ready(now)
        ]
        if not ready and include_idle:
            ready = [s for s in self._sources if isinstance(s, IdleSource)]
        return sorted(ready, key=lambda s: (s.priority, s.id))

    def _earliest_deadline(self, now: float) -> Optional[float]:
        deadlines = [
            d
            for s in self._sources
            if (d := s.next_deadline(now)) is not None
        ]
        return min(deadlines) if deadlines else None

    def _dispatch(self, ready: List[Source], now: float) -> int:
        count = 0
        for src in ready:
            if src.destroyed or not src.attached:
                continue
            keep = src.dispatch(now)
            count += 1
            if (not keep or src.destroyed) and src in self._sources:
                src.attached = False
                self._sources.remove(src)
        self.dispatches += count
        return count

    def iteration(self, may_block: bool = True) -> bool:
        """Run one loop iteration; return True if anything was dispatched.

        With ``may_block=False`` the iteration only dispatches work that is
        already ready (plus idles) and never waits on the clock.
        """
        self.iterations += 1
        now = self.clock.now()
        ready = self._ready_sources(now, include_idle=True)
        if ready:
            return self._dispatch(ready, now) > 0
        if not may_block:
            return False
        deadline = self._earliest_deadline(now)
        has_io = any(isinstance(s, IOWatch) for s in self._sources)
        if deadline is None and not has_io:
            return False  # nothing will ever become ready
        if deadline is None or (has_io and deadline - now > self.max_io_poll_ms):
            deadline = now + self.max_io_poll_ms
        self.clock.wait_until(deadline)
        now = self.clock.now()
        ready = self._ready_sources(now, include_idle=False)
        return self._dispatch(ready, now) > 0

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, max_iterations: Optional[int] = None) -> None:
        """Run until :meth:`quit` or until no source can ever fire again.

        ``max_iterations`` is a safety valve for tests.
        """
        self._running = True
        done = 0
        while self._running and self._sources:
            timed_or_io = [s for s in self._sources if not isinstance(s, IdleSource)]
            self.iteration(may_block=bool(timed_or_io))
            done += 1
            if max_iterations is not None and done >= max_iterations:
                break
        self._running = False

    def run_until(self, deadline_ms: float) -> None:
        """Run iterations until the clock reaches ``deadline_ms``.

        Primarily for :class:`VirtualClock` runs: the loop processes every
        event with a deadline at or before ``deadline_ms`` and leaves the
        clock exactly at ``deadline_ms``.
        """
        self._running = True
        while self._running and self.clock.now() < deadline_ms:
            now = self.clock.now()
            ready = self._ready_sources(now, include_idle=False)
            if ready:
                self._dispatch(ready, now)
                continue
            next_deadline = self._earliest_deadline(now)
            has_io = any(isinstance(s, IOWatch) for s in self._sources)
            if has_io:
                step = min(
                    next_deadline if next_deadline is not None else deadline_ms,
                    now + self.max_io_poll_ms,
                    deadline_ms,
                )
            elif next_deadline is None or next_deadline > deadline_ms:
                self.clock.wait_until(deadline_ms)
                break
            else:
                step = next_deadline
            self.clock.wait_until(max(step, now))
        self._running = False

    def run_for(self, duration_ms: float) -> None:
        """Run for ``duration_ms`` from the current clock time."""
        self.run_until(self.clock.now() + duration_ms)

    def quit(self) -> None:
        """Stop :meth:`run` / :meth:`run_until` after the current iteration."""
        self._running = False

    @property
    def running(self) -> bool:
        return self._running
