"""Tokenizer for the derived-signal expression language.

A deliberately small surface: numbers (with optional time-unit
suffixes), identifiers, arithmetic and comparison operators,
parentheses, commas, ``=`` for definitions and ``;``/newlines as
statement separators.

Time units attach directly to a number literal and normalise to the
engine's native milliseconds, so ``resample(load, 10ms)``,
``sum_over(pkts, 1s)`` and ``resample(x, 500us)`` all read naturally::

    10ms -> 10.0      1s -> 1000.0      500us -> 0.5
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.query.errors import QuerySyntaxError


class TokenKind(enum.Enum):
    NUMBER = "number"
    NAME = "name"
    OP = "op"  # + - * / < <= > >= == !=
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    ASSIGN = "="
    SEMI = ";"
    END = "end"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    pos: int
    value: float = 0.0  # numeric payload for NUMBER tokens, in ms for units


#: Unit suffix -> multiplier into milliseconds.
_UNITS = {"us": 1e-3, "ms": 1.0, "s": 1000.0}

_NUMBER = re.compile(r"\d+(?:\.\d*)?(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?")
_NAME = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")
_UNIT = re.compile(r"us|ms|s(?![A-Za-z0-9_.])")

#: Two-character operators must be tried before their one-char prefixes.
_OPERATORS = ("<=", ">=", "==", "!=", "<", ">", "+", "-", "*", "/")


def tokenize(text: str) -> List[Token]:
    """Lex ``text`` into tokens, ending with one END token."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r":
            i += 1
            continue
        if ch == "\n":
            yield Token(TokenKind.SEMI, ";", i)
            i += 1
            continue
        if ch == ";":
            yield Token(TokenKind.SEMI, ";", i)
            i += 1
            continue
        if ch == "#":  # comment to end of line
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "(":
            yield Token(TokenKind.LPAREN, "(", i)
            i += 1
            continue
        if ch == ")":
            yield Token(TokenKind.RPAREN, ")", i)
            i += 1
            continue
        if ch == ",":
            yield Token(TokenKind.COMMA, ",", i)
            i += 1
            continue
        m = _NUMBER.match(text, i)
        if m:
            raw = m.group()
            end = m.end()
            value = float(raw)
            um = _UNIT.match(text, end)
            if um:
                value *= _UNITS[um.group()]
                end = um.end()
            yield Token(TokenKind.NUMBER, text[i:end], i, value)
            i = end
            continue
        m = _NAME.match(text, i)
        if m:
            yield Token(TokenKind.NAME, m.group(), i)
            i = m.end()
            continue
        op = next((op for op in _OPERATORS if text.startswith(op, i)), None)
        if op is not None:  # "==" is an operator; it precedes the "=" check
            yield Token(TokenKind.OP, op, i)
            i += len(op)
            continue
        if ch == "=":
            yield Token(TokenKind.ASSIGN, "=", i)
            i += 1
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r}", i)
    yield Token(TokenKind.END, "", n)
