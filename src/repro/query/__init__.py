"""Derived-signal query engine: compiled operator DAGs over streams.

The paper presents signals as composable scope inputs; this subsystem
makes composition first-class.  A small expression language —

.. code-block:: text

    throughput = rate(bytes_in)
    smooth     = ewma(queue, 0.9)
    headroom   = clip(cwnd - 0.5 * rtt, 0, 1e6)
    per_tick   = sum_over(pkts, 50ms)
    on_grid    = resample(load, 10ms)
    stalls     = edges(queue, 80, rising)

— parses to an AST (:mod:`repro.query.parser`), compiles to a
vectorized operator DAG (:mod:`repro.query.compile`,
:mod:`repro.query.ops`) and executes in two modes with byte-identical
results:

* **incremental** (:class:`LiveQuery`) — attached as a manager/shard
  tap, consuming the same columnar batches the capture writer records
  and pushing derived samples back in as ordinary signals;
* **batch** (:func:`execute`) — over the columns of a
  :class:`~repro.capture.reader.CaptureReader`, so analyses of recorded
  runs are re-runnable and reproduce the live derived traces exactly.

Typical use::

    from repro.query import LiveQuery, execute, compile_query

    live = LiveQuery("load = ewma(cpu, 0.9)", manager)   # online
    ...
    cols = execute(CaptureReader("run.capture"), "load = ewma(cpu, 0.9)")
"""

from repro.query.batch import execute
from repro.query.compile import (
    Plan,
    PlanNode,
    bind_params,
    compile_query,
    plan_key,
)
from repro.query.errors import QueryCompileError, QueryError, QuerySyntaxError
from repro.query.live import LiveQuery
from repro.query.ops import Runtime
from repro.query.parser import Program, parse

__all__ = [
    "LiveQuery",
    "Plan",
    "PlanNode",
    "Program",
    "QueryCompileError",
    "QueryError",
    "QuerySyntaxError",
    "Runtime",
    "bind_params",
    "compile_query",
    "execute",
    "parse",
    "plan_key",
]
