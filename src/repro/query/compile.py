"""Compile a parsed query program into a vectorized operator plan.

The compiler lowers the AST into a flat, topologically ordered list of
:class:`PlanNode`\\ s — the operator DAG.  Lowering does real work:

* **name resolution** — a :class:`~repro.query.parser.Ref` is another
  definition in the program (its DAG is shared, not duplicated) or,
  failing that, a *source signal*;
* **cycle detection** — definitions may reference each other in any
  order, but a reference cycle (``a = b; b = a``) is a compile error;
* **constant folding** — any all-constant subexpression collapses to a
  literal (folded with the same numpy scalar ops the runtime uses, so
  ``x / 0`` and ``x / (1 - 1)`` behave identically);
* **parameter extraction** — operator parameters (filter alpha, window
  and resample periods, trigger level) must fold to constants and are
  validated here, not at run time;
* **hash-consing** — structurally identical subexpressions become one
  shared node, so ``ewma(q, .9) - (q - ewma(q, .9))`` computes the
  filter once;
* **fusion** — a binary op with one constant side becomes a single
  elementwise map node; only signal-with-signal ops need the
  time-aligning join operator.

After lowering, a second **fusion pass** (:func:`fuse_plan`) collapses
maximal chains of elementwise and simple stateful operators (``map1``,
``maps``, ``clip``, ``ewma``, ``rate``, ``delta``) into single
``fused`` nodes executed in one pass per batch by
:mod:`repro.query.kernels` — generated C through the
:mod:`repro.core.native` seam, numba behind a feature gate, or the
original per-operator numpy chain as the always-on fallback and
oracle.  Fusion never crosses a *barrier* (``source``, ``join``,
``window``, ``resample``, ``edges``): those operators change the
timeline or need cross-input alignment and always keep their own
nodes.  A node consumed by more than one downstream operator, or
published as an output, ends its chain — its emission is shared.
``REPRO_NATIVE=0`` disables the pass entirely, restoring the pure
per-operator numpy plan; fusion choice never changes output bytes.

The :class:`Plan` is immutable and stateless; each execution
(incremental or batch) instantiates fresh operator state from it via
:class:`~repro.query.ops.Runtime`.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.aggregate import AggregateKind
from repro.core.trigger import Edge
from repro.query.errors import QueryCompileError
from repro.query.parser import (
    Binary,
    Call,
    Expr,
    Num,
    Program,
    Ref,
    Unary,
    parse,
)

#: Binary-operator names the runtime's elementwise table understands.
ARITH_OPS = ("add", "sub", "mul", "div", "min", "max")
CMP_OPS = ("lt", "le", "gt", "ge", "eq", "ne")

#: The seven windowed aggregates, mapped onto Section 4.2's kinds.
WINDOW_FUNCS = {
    "sum_over": AggregateKind.SUM,
    "min_over": AggregateKind.MINIMUM,
    "max_over": AggregateKind.MAXIMUM,
    "avg_over": AggregateKind.AVERAGE,
    "rate_over": AggregateKind.RATE,
    "events_over": AggregateKind.EVENTS,
    "any_over": AggregateKind.ANY_EVENT,
}

_EDGE_KINDS = {"rising": Edge.RISING, "falling": Edge.FALLING, "either": Edge.EITHER}


@dataclass(frozen=True)
class PlanNode:
    """One operator in the compiled DAG.

    ``op`` selects the operator class (see :mod:`repro.query.ops`),
    ``params`` carries its compile-time constants, and ``inputs`` are
    upstream node ids.  Nodes are listed in topological order, so an
    input id is always smaller than the node's own id.
    """

    id: int
    op: str
    params: Tuple
    inputs: Tuple[int, ...]


@dataclass(frozen=True)
class Plan:
    """A compiled, stateless operator DAG.

    ``sources`` maps each required input signal name to its source node;
    ``outputs`` maps each derived-signal name to the node whose emissions
    it publishes.  Definitions whose names start with ``_`` are
    intermediates: shared inside the DAG but not published.
    """

    nodes: Tuple[PlanNode, ...]
    sources: Dict[str, int]
    outputs: Dict[str, int]
    text: str

    @property
    def source_names(self) -> List[str]:
        """Required input signals, in first-reference order."""
        return list(self.sources)

    @property
    def output_names(self) -> List[str]:
        """Published derived signals, in definition order."""
        return list(self.outputs)

    def explain(self) -> str:
        """Human-readable plan listing (``python -m repro query --explain``).

        Shows every node, its inputs, and — for ``fused`` nodes — the
        collapsed operator chain and which backend will execute it.
        """
        from repro.core import native
        from repro.query import kernels

        source_of = {node_id: name for name, node_id in self.sources.items()}
        outputs_of: Dict[int, List[str]] = {}
        for name, node_id in self.outputs.items():
            outputs_of.setdefault(node_id, []).append(name)
        lines = [
            f"plan: {len(self.nodes)} node(s), backend={native.mode()}, "
            f"fusion={'on' if any(n.op == 'fused' for n in self.nodes) else 'off'}"
        ]
        for node in self.nodes:
            if node.op == "source":
                desc = f"source {source_of.get(node.id, node.params[0])!r}"
            elif node.op == "fused":
                steps = node.params[0]
                chain = " | ".join(_step_text(op, params) for op, params in steps)
                kernel = kernels.get_fused(steps)
                backend = kernel.backend if kernel is not None else "numpy"
                desc = f"fused[{backend}] {chain}"
            else:
                desc = _step_text(node.op, node.params)
            arrow = (
                " <- " + ", ".join(f"n{i}" for i in node.inputs)
                if node.inputs
                else ""
            )
            names = outputs_of.get(node.id)
            suffix = f"   => {', '.join(names)}" if names else ""
            lines.append(f"  n{node.id}: {desc}{arrow}{suffix}")
        return "\n".join(lines)


#: Compile-time value: a folded constant or a DAG node id.
_Value = Union[float, int]


class _Const(float):
    """Marker type so a folded constant is distinguishable from an id."""


def _numpy_fold(op: str, a: float, b: float) -> float:
    """Fold a constant binary op with the runtime's own numpy semantics."""
    from repro.query.ops import BINARY_FNS

    with np.errstate(divide="ignore", invalid="ignore"):
        return float(BINARY_FNS[op](np.float64(a), np.float64(b)))


class _Compiler:
    def __init__(self, program: Program, default_name: str) -> None:
        self.program = program
        self.default_name = default_name
        self.nodes: List[PlanNode] = []
        self.sources: Dict[str, int] = {}
        self.outputs: Dict[str, int] = {}
        self._memo: Dict[Tuple, int] = {}  # hash-consing: structure -> id
        self._defs: Dict[str, Expr] = {}
        self._def_value: Dict[str, _Value] = {}
        self._building: List[str] = []  # definition DFS stack for cycles

    # -- node construction --------------------------------------------
    def _node(self, op: str, params: Tuple, inputs: Tuple[int, ...]) -> int:
        key = (op, params, inputs)
        found = self._memo.get(key)
        if found is not None:
            return found
        node = PlanNode(id=len(self.nodes), op=op, params=params, inputs=inputs)
        self.nodes.append(node)
        self._memo[key] = node.id
        return node.id

    def _source(self, name: str) -> int:
        node_id = self.sources.get(name)
        if node_id is None:
            node_id = self._node("source", (name,), ())
            self.sources[name] = node_id
        return node_id

    # -- program ------------------------------------------------------
    def compile(self) -> Plan:
        anonymous = 0
        ordered: List[str] = []
        for stmt in self.program.stmts:
            name = stmt.name
            if name is None:
                anonymous += 1
                if anonymous > 1:
                    raise QueryCompileError(
                        "a program may hold at most one anonymous expression; "
                        "name the others (e.g. 'load = ewma(cpu, 0.9)')"
                    )
                name = self.default_name
            if name.startswith("__obs."):
                # Reading `__obs.*` sources is the point of the obs
                # plane; *defining* into it is forbidden — a definition
                # resolves def-first, shadowing the live telemetry
                # signal, and a published output would feed derived
                # values back into the reserved namespace the publisher
                # owns (a self-loop).
                raise QueryCompileError(
                    f"derived signal {name!r} lands in the reserved '__obs.' "
                    "namespace; queries may read __obs.* signals but never "
                    "define them"
                )
            if name in self._defs:
                raise QueryCompileError(f"duplicate definition of {name!r}")
            self._defs[name] = stmt.expr
            ordered.append(name)
        for name in ordered:
            value = self._resolve_def(name)
            if name.startswith("_"):
                continue  # intermediate: shared in the DAG, not published
            if isinstance(value, _Const):
                raise QueryCompileError(
                    f"derived signal {name!r} is a constant ({float(value)}); "
                    "a query must read at least one signal"
                )
            self.outputs[name] = value
        if not self.outputs:
            raise QueryCompileError(
                "query publishes nothing: every definition is an "
                "underscore-prefixed intermediate"
            )
        # Note: an output can never shadow one of its own sources — every
        # definition name (the anonymous one included) resolves def-first,
        # so `rate(query)` under default name "query" is caught as the
        # cycle `query -> query` rather than silently looping a live tap.
        return Plan(
            nodes=tuple(self.nodes),
            sources=self.sources,
            outputs=self.outputs,
            text=self.program.text,
        )

    def _resolve_def(self, name: str) -> _Value:
        cached = self._def_value.get(name)
        if cached is not None:
            return cached
        if name in self._building:
            chain = " -> ".join(self._building[self._building.index(name):] + [name])
            raise QueryCompileError(f"cyclic definition: {chain}")
        self._building.append(name)
        try:
            value = self._build(self._defs[name])
        finally:
            self._building.pop()
        self._def_value[name] = value
        return value

    # -- expressions ---------------------------------------------------
    def _build(self, expr: Expr) -> _Value:
        if isinstance(expr, Num):
            return _Const(expr.value)
        if isinstance(expr, Ref):
            if expr.name in self._defs:
                return self._resolve_def(expr.name)
            return self._source(expr.name)
        if isinstance(expr, Unary):
            operand = self._build(expr.operand)
            if isinstance(operand, _Const):
                return _Const(-float(operand))
            return self._node("map1", ("neg",), (operand,))
        if isinstance(expr, Binary):
            return self._binary(expr.op, expr.left, expr.right)
        if isinstance(expr, Call):
            return self._call(expr)
        raise QueryCompileError(f"unhandled expression node: {expr!r}")

    def _binary(self, op: str, left_expr: Expr, right_expr: Expr) -> _Value:
        left = self._build(left_expr)
        right = self._build(right_expr)
        if isinstance(left, _Const) and isinstance(right, _Const):
            return _Const(_numpy_fold(op, float(left), float(right)))
        if isinstance(right, _Const):
            return self._node("maps", (op, float(right), False), (left,))
        if isinstance(left, _Const):
            return self._node("maps", (op, float(left), True), (right,))
        return self._node("join", (op,), (left, right))

    # -- function calls ------------------------------------------------
    def _call(self, call: Call) -> _Value:
        name, args = call.func, call.args
        builder = _FUNCTIONS.get(name)
        if builder is None:
            raise QueryCompileError(
                f"unknown function {name!r} (available: "
                f"{', '.join(sorted(_FUNCTIONS))})"
            )
        return builder(self, call)

    def _arity(self, call: Call, low: int, high: Optional[int] = None) -> None:
        high = low if high is None else high
        n = len(call.args)
        if not low <= n <= high:
            want = str(low) if low == high else f"{low}-{high}"
            raise QueryCompileError(
                f"{call.func}() takes {want} argument(s), got {n}"
            )

    def _stream_arg(self, call: Call, index: int) -> int:
        value = self._build(call.args[index])
        if isinstance(value, _Const):
            raise QueryCompileError(
                f"{call.func}() argument {index + 1} must be a signal "
                f"expression, got the constant {float(value)}"
            )
        return value

    def _const_arg(self, call: Call, index: int, what: str) -> float:
        value = self._build(call.args[index])
        if not isinstance(value, _Const):
            raise QueryCompileError(
                f"{call.func}() {what} (argument {index + 1}) must be a "
                "constant expression"
            )
        return float(value)


# ----------------------------------------------------------------------
# Function table
# ----------------------------------------------------------------------
def _fn_abs(c: _Compiler, call: Call) -> _Value:
    c._arity(call, 1)
    value = c._build(call.args[0])
    if isinstance(value, _Const):
        return _Const(abs(float(value)))
    return c._node("map1", ("abs",), (value,))


def _fn_minmax(op: str):
    def build(c: _Compiler, call: Call) -> _Value:
        c._arity(call, 2)
        return c._binary(op, call.args[0], call.args[1])

    return build


def _fn_clip(c: _Compiler, call: Call) -> _Value:
    c._arity(call, 3)
    stream = c._stream_arg(call, 0)
    lo = c._const_arg(call, 1, "lower bound")
    hi = c._const_arg(call, 2, "upper bound")
    if hi < lo:
        raise QueryCompileError(f"clip() bounds are inverted: [{lo}, {hi}]")
    return c._node("clip", (lo, hi), (stream,))


def _fn_rate(c: _Compiler, call: Call) -> _Value:
    c._arity(call, 1)
    return c._node("rate", (), (c._stream_arg(call, 0),))


def _fn_delta(c: _Compiler, call: Call) -> _Value:
    c._arity(call, 1)
    return c._node("delta", (), (c._stream_arg(call, 0),))


def _fn_ewma(c: _Compiler, call: Call) -> _Value:
    c._arity(call, 2)
    stream = c._stream_arg(call, 0)
    alpha = c._const_arg(call, 1, "filter alpha")
    if not 0.0 <= alpha <= 1.0:
        raise QueryCompileError(f"{call.func}() alpha must be in [0, 1]: {alpha}")
    return c._node("ewma", (alpha,), (stream,))


def _fn_resample(c: _Compiler, call: Call) -> _Value:
    c._arity(call, 2)
    stream = c._stream_arg(call, 0)
    period = c._const_arg(call, 1, "period")
    if not period > 0:
        raise QueryCompileError(f"resample() period must be positive: {period}")
    return c._node("resample", (period,), (stream,))


def _fn_window(kind: AggregateKind):
    def build(c: _Compiler, call: Call) -> _Value:
        c._arity(call, 2)
        stream = c._stream_arg(call, 0)
        window = c._const_arg(call, 1, "window")
        if not window > 0:
            raise QueryCompileError(
                f"{call.func}() window must be positive: {window}"
            )
        return c._node("window", (kind.value, window), (stream,))

    return build


def _fn_edges(c: _Compiler, call: Call) -> _Value:
    c._arity(call, 2, 3)
    stream = c._stream_arg(call, 0)
    level = c._const_arg(call, 1, "trigger level")
    edge = "rising"
    if len(call.args) == 3:
        arg = call.args[2]
        if not isinstance(arg, Ref) or arg.name not in _EDGE_KINDS:
            raise QueryCompileError(
                "edges() direction must be one of: "
                + ", ".join(sorted(_EDGE_KINDS))
            )
        edge = arg.name
    return c._node("edges", (level, edge), (stream,))


_FUNCTIONS = {
    "abs": _fn_abs,
    "min": _fn_minmax("min"),
    "max": _fn_minmax("max"),
    "clip": _fn_clip,
    "rate": _fn_rate,
    "delta": _fn_delta,
    "ewma": _fn_ewma,
    "lowpass": _fn_ewma,  # the Section 3.1 name for the same one-pole IIR
    "resample": _fn_resample,
    "edges": _fn_edges,
    **{name: _fn_window(kind) for name, kind in WINDOW_FUNCS.items()},
}


def _step_text(op: str, params: Tuple) -> str:
    """One operator rendered compactly for :meth:`Plan.explain`."""
    if op == "map1":
        return params[0]
    if op == "maps":
        fn, scalar, on_left = params
        return f"{scalar!r} {fn} ." if on_left else f". {fn} {scalar!r}"
    if op == "clip":
        return f"clip[{params[0]!r}, {params[1]!r}]"
    if op == "ewma":
        return f"ewma[{params[0]!r}]"
    if op == "join":
        return f"join[{params[0]}]"
    if op == "window":
        return f"window[{params[0]}, {params[1]!r}]"
    if op == "resample":
        return f"resample[{params[0]!r}]"
    if op == "edges":
        return f"edges[{params[0]!r}, {params[1]}]"
    return op if not params else f"{op}{params!r}"


def fuse_plan(plan: Plan) -> Plan:
    """Collapse maximal fusable chains into single ``fused`` nodes.

    A chain is a path of fusable operators (see
    :data:`repro.query.kernels.FUSABLE_OPS`) where every interior node
    has exactly one consumer and is not a published output — its
    emission is private to the next step, so the intermediate column
    never needs to exist.  Barriers (``source``, ``join``, ``window``,
    ``resample``, ``edges``) are never absorbed; a shared or published
    node ends its chain.  Even single-operator "chains" become fused
    nodes so the whole elementwise tier runs through one backend.

    The rewrite preserves topological order and renumbers node ids
    densely.  It is purely structural: whether a fused node later runs
    a compiled kernel or the original numpy operator chain is decided
    per-signature at runtime (:func:`repro.query.kernels.get_fused`).
    """
    from repro.query.kernels import FUSABLE_OPS

    consumers: Dict[int, int] = {node.id: 0 for node in plan.nodes}
    for node in plan.nodes:
        for input_id in node.inputs:
            consumers[input_id] += 1
    published = set(plan.outputs.values())
    fusable = {node.id for node in plan.nodes if node.op in FUSABLE_OPS}
    consumer_of: Dict[int, int] = {}
    for node in plan.nodes:
        if node.id in fusable:
            for input_id in node.inputs:
                consumer_of[input_id] = node.id
    # A node is absorbed into its single fusable consumer when nothing
    # else (another node or a published name) observes its emission.
    absorbed = {
        node.id
        for node in plan.nodes
        if node.id in fusable
        and node.id not in published
        and consumers[node.id] == 1
        and consumer_of.get(node.id) is not None
    }

    nodes_by_id = {node.id: node for node in plan.nodes}
    new_nodes: List[PlanNode] = []
    id_map: Dict[int, int] = {}
    for node in plan.nodes:
        if node.id in absorbed:
            continue  # represented by its chain's tail node
        if node.id in fusable:
            chain = [node]
            while chain[0].inputs[0] in absorbed:
                chain.insert(0, nodes_by_id[chain[0].inputs[0]])
            steps = tuple((n.op, n.params) for n in chain)
            new_id = len(new_nodes)
            new_nodes.append(
                PlanNode(
                    id=new_id,
                    op="fused",
                    params=(steps,),
                    inputs=(id_map[chain[0].inputs[0]],),
                )
            )
        else:
            new_id = len(new_nodes)
            new_nodes.append(
                PlanNode(
                    id=new_id,
                    op=node.op,
                    params=node.params,
                    inputs=tuple(id_map[i] for i in node.inputs),
                )
            )
        id_map[node.id] = new_id
    return Plan(
        nodes=tuple(new_nodes),
        sources={name: id_map[i] for name, i in plan.sources.items()},
        outputs={name: id_map[i] for name, i in plan.outputs.items()},
        text=plan.text,
    )


def compile_query(
    query: Union[str, Program],
    default_name: str = "query",
    fuse: Optional[bool] = None,
) -> Plan:
    """Compile query text (or a parsed :class:`Program`) into a :class:`Plan`.

    ``default_name`` names the program's single anonymous expression, if
    it has one.  ``fuse`` controls the fusion pass: None (default)
    follows the environment (:func:`repro.core.native.fusion_enabled`,
    i.e. on unless ``REPRO_NATIVE=0``), True/False force it.
    """
    program = parse(query) if isinstance(query, str) else query
    plan = _Compiler(program, default_name).compile()
    if fuse is None:
        from repro.core import native

        fuse = native.fusion_enabled()
    return fuse_plan(plan) if fuse else plan


# ----------------------------------------------------------------------
# Bind-time parameters and the canonical plan key (the subscribe plane)
# ----------------------------------------------------------------------

#: ``$name`` placeholders in query text, bound before compilation.
_PARAM_RE = re.compile(r"\$([A-Za-z_][A-Za-z0-9_]*)")


def bind_params(
    text: str, params: Optional[Mapping[str, float]] = None
) -> str:
    """Substitute ``$name`` placeholders with numeric literals.

    One query template serves many per-user instantiations:
    ``"smooth = ewma(load, $alpha)"`` bound with ``{"alpha": 0.9}``
    becomes ordinary query text.  Values must be finite numbers — they
    land where the compiler demands constants (operator parameters,
    thresholds), and constant folding erases any arithmetic around
    them.  Binding is purely textual and happens *before* the lexer, so
    an unbound ``$`` can never reach it; a missing or unused parameter
    is a :class:`~repro.query.errors.QueryCompileError` (catching both
    typo directions).
    """
    supplied = dict(params or {})
    used = set()

    def _sub(match: "re.Match[str]") -> str:
        name = match.group(1)
        if name not in supplied:
            raise QueryCompileError(f"unbound query parameter ${name}")
        used.add(name)
        try:
            value = float(supplied[name])
        except (TypeError, ValueError):
            raise QueryCompileError(
                f"query parameter ${name} must be a number: "
                f"{supplied[name]!r}"
            ) from None
        if not math.isfinite(value):
            raise QueryCompileError(
                f"query parameter ${name} must be finite: {value!r}"
            )
        # Parenthesized so a negative value keeps its sign regardless
        # of the surrounding expression; folding erases the parens.
        return f"({value!r})"

    bound = _PARAM_RE.sub(_sub, text)
    unused = sorted(set(supplied) - used)
    if unused:
        raise QueryCompileError(
            f"unused query parameter(s): {', '.join(unused)}"
        )
    return bound


def plan_key(plan: Plan) -> Tuple:
    """Canonical identity of a compiled plan (the dedup key).

    Two queries share a key exactly when they compiled to the same DAG
    publishing the same outputs from the same sources — whitespace,
    comments, intermediate naming and parameter spelling differences
    all vanish in compilation, while different bound parameter values
    yield different folded constants and therefore different keys.  The
    subscription plane keys shared evaluations on this, so N
    subscribers to one derived view cost one
    :class:`~repro.query.live.LiveQuery`.
    """
    return (
        plan.nodes,
        tuple(sorted(plan.sources.items())),
        tuple(sorted(plan.outputs.items())),
    )
