"""Vectorized streaming operators and the DAG runtime.

Every operator consumes and emits ``(times, values)`` float64 column
pairs and keeps **bounded state** between batches, so one operator set
serves both execution modes: the incremental runtime feeds live tap
batches of arbitrary (jittered) sizes, the batch runtime feeds whole
capture columns — and the emitted columns are *byte-identical* either
way.  Three disciplines make that hold:

* **Strictly monotone streams.**  Source operators drop any sample
  whose timestamp does not strictly exceed the last accepted one (the
  Section 4.4 late-drop rule applied at the query boundary; drops are
  counted, never hidden).  Every downstream operator can then rely on
  strictly increasing per-stream times, which makes merging, windowing
  and resampling deterministic under any batch split.
* **Watermarked joins.**  A two-input operator only emits up to the
  minimum of its inputs' last-seen times (``safe``): every future
  sample must arrive strictly later, so the sample-and-hold merge of
  Section 4.2 is final the moment it is emitted.  :meth:`Runtime.finish`
  releases the tail.
* **Whole-window reductions.**  Windowed aggregates buffer each
  window's samples and reduce them with *one*
  :meth:`~repro.core.aggregate.Aggregator.add_many` call at window
  close, so float summation order never depends on how batches split.

Operators reuse the core analysis layer rather than reimplementing it:
``ewma``/``lowpass`` run :class:`~repro.core.lowpass.LowPassFilter`,
windowed aggregates run the Section 4.2
:class:`~repro.core.aggregate.Aggregator` kinds, and ``edges`` runs
:class:`~repro.core.trigger.Trigger` detection (zero hysteresis/holdoff,
so the state carried across batches is one held sample).

The hot path is zero-copy and (when a C compiler exists) native:
:class:`SourceOp` passes already-monotone batches through as read-only
views instead of boolean-index copies, :class:`FusedOp` runs a whole
elementwise/stateful chain in one compiled pass, and :class:`JoinOp`
merges with a native two-pointer kernel.  Every native path has the
original numpy implementation as its always-on fallback and oracle —
``REPRO_NATIVE=0`` restores it everywhere, byte for byte.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import native
from repro.core.aggregate import AggregateKind, make_aggregator
from repro.core.lowpass import LowPassFilter
from repro.core.trigger import Edge, Trigger
from repro.query import kernels
from repro.query.compile import Plan
from repro.query.errors import QueryError

ArrayLike = Union[Sequence[float], np.ndarray]
Sink = Callable[[np.ndarray, np.ndarray], None]

_EMPTY = np.empty(0, dtype=np.float64)


def _readonly(arr: np.ndarray) -> np.ndarray:
    """A read-only view of ``arr`` (no copy); ``arr`` itself if already."""
    if arr.flags.writeable:
        arr = arr.view()
        arr.flags.writeable = False
    return arr


def _div(a, b):
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.divide(a, b)


def _as01(mask) -> np.ndarray:
    return mask.astype(np.float64)


#: Elementwise binary table shared by joins, scalar maps and the
#: compiler's constant folder (one semantics everywhere).
BINARY_FNS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": _div,
    "min": np.minimum,
    "max": np.maximum,
    "lt": lambda a, b: _as01(np.less(a, b)),
    "le": lambda a, b: _as01(np.less_equal(a, b)),
    "gt": lambda a, b: _as01(np.greater(a, b)),
    "ge": lambda a, b: _as01(np.greater_equal(a, b)),
    "eq": lambda a, b: _as01(np.equal(a, b)),
    "ne": lambda a, b: _as01(np.not_equal(a, b)),
}

UNARY_FNS = {
    "abs": np.abs,
    "neg": np.negative,
}


class Operator:
    """Base class: a DAG node with downstream children and sinks.

    Emitted arrays are freshly allocated (or read-only views of freshly
    allocated arrays) and never mutated afterwards, so children and
    sinks may retain references without copying.
    """

    def __init__(self) -> None:
        self._children: List[Tuple["Operator", int]] = []
        self._sinks: List[Sink] = []

    def connect(self, child: "Operator", port: int) -> None:
        self._children.append((child, port))

    def add_sink(self, sink: Sink) -> None:
        self._sinks.append(sink)

    def emit(self, times: np.ndarray, values: np.ndarray) -> None:
        if times.shape[0] == 0:
            return
        for sink in self._sinks:
            sink(times, values)
        for child, port in self._children:
            child.accept(port, times, values)

    def accept(self, port: int, times: np.ndarray, values: np.ndarray) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Release any withheld tail; called once, parents before children."""


class SourceOp(Operator):
    """Entry point for one input signal: enforces strict monotonicity.

    Samples whose timestamp does not strictly exceed every previously
    accepted timestamp are dropped and counted (``dropped``) — the
    jitter a live producer stamps into the past is shed identically in
    live and batch execution, which is what makes every downstream
    operator deterministic under any batching.  NaN timestamps never
    compare greater, so they are dropped too.
    """

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name
        self.accepted = 0
        self.dropped = 0
        self._last = -math.inf

    def feed(self, times: ArrayLike, values: ArrayLike) -> None:
        t = np.asarray(times, dtype=np.float64)
        v = np.asarray(values, dtype=np.float64)
        if t.ndim != 1 or t.shape != v.shape:
            raise QueryError(
                f"signal {self.name!r}: times and values must be "
                f"equal-length 1-D columns: {t.shape} vs {v.shape}"
            )
        n = t.shape[0]
        if n == 0:
            return
        # Fast path: the batch is already strictly monotone past the
        # carry — true for every wire frame and capture column.  The
        # batch flows through as read-only views, no copy; feeders own
        # immutable buffers (bytes frames, mmap segments), so the
        # no-mutation emission contract holds without detaching.
        ok = kernels.monotone_strict(t, self._last)
        if ok is None:
            ok = bool(t[0] > self._last) and (
                n == 1 or bool(np.all(t[1:] > t[:-1]))
            )
        if ok:
            if (
                native.zero_copy_debug()
                and isinstance(times, np.ndarray)
                and times.dtype == np.float64
            ):
                assert np.shares_memory(t, times), (
                    f"zero-copy guard: source {self.name!r} copied a batch"
                )
            self.accepted += n
            self._last = float(t[-1])
            self.emit(_readonly(t), _readonly(v))
            return
        # Running max *before* each sample (NaN-transparent), seeded
        # with the carry from previous batches.
        running = np.fmax.accumulate(np.concatenate(((self._last,), t)))
        keep = t > running[:-1]
        kept = int(np.count_nonzero(keep))
        self.dropped += n - kept
        if kept == 0:
            return
        self.accepted += kept
        self._last = float(running[-1])
        # Boolean indexing copies, detaching us from caller-owned buffers.
        self.emit(t[keep], v[keep])


class Map1Op(Operator):
    """Stateless elementwise unary map (abs, neg)."""

    def __init__(self, fn_name: str) -> None:
        super().__init__()
        self._fn = UNARY_FNS[fn_name]

    def accept(self, port, times, values) -> None:
        self.emit(times, self._fn(values))


class MapScalarOp(Operator):
    """Elementwise binary op with one constant side, fused to a map."""

    def __init__(self, fn_name: str, scalar: float, scalar_on_left: bool) -> None:
        super().__init__()
        self._fn = BINARY_FNS[fn_name]
        self._scalar = scalar
        self._left = scalar_on_left

    def accept(self, port, times, values) -> None:
        if self._left:
            self.emit(times, self._fn(self._scalar, values))
        else:
            self.emit(times, self._fn(values, self._scalar))


class ClipOp(Operator):
    """Elementwise clip to a constant [lo, hi] band."""

    def __init__(self, lo: float, hi: float) -> None:
        super().__init__()
        self._lo = lo
        self._hi = hi

    def accept(self, port, times, values) -> None:
        self.emit(times, np.clip(values, self._lo, self._hi))


class FusedOp(Operator):
    """One fused chain of elementwise/stateful operators (one plan node).

    The fusion pass (:func:`repro.query.compile.fuse_plan`) hands this
    operator the collapsed chain's ``(op, params)`` steps.  When a
    compiled kernel exists for the chain's signature
    (:func:`repro.query.kernels.get_fused`), each batch runs in a
    single pass — constants travel in a params vector, cross-batch
    ewma/rate/delta state in a small state vector, and a purely
    elementwise chain passes the input times column through zero-copy.
    Without a kernel (no toolchain, ``REPRO_NATIVE=0``) the node
    instantiates the *original* per-operator numpy chain and runs it
    unchanged — the always-on oracle the fusion equivalence suite pins
    every kernel against, byte for byte.
    """

    def __init__(self, steps: Sequence[Tuple[str, Tuple]]) -> None:
        super().__init__()
        self.steps = tuple(steps)
        self._kernel = kernels.get_fused(self.steps)
        if self._kernel is not None:
            self._params = kernels.params_vector(self.steps)
            self._state = np.zeros(kernels.state_size(self.steps))
            self._head: Optional[Operator] = None
        else:
            head: Optional[Operator] = None
            prev: Optional[Operator] = None
            for op_name, params in self.steps:
                op = _OPERATORS[op_name](*params)
                if prev is None:
                    head = op
                else:
                    prev.connect(op, 0)
                prev = op
            assert prev is not None and head is not None
            prev.add_sink(self.emit)
            self._head = head

    @property
    def backend(self) -> str:
        """Which execution path this node resolved to."""
        return "numpy" if self._kernel is None else self._kernel.backend

    def accept(self, port, times, values) -> None:
        if self._kernel is None:
            assert self._head is not None
            self._head.accept(0, times, values)
            return
        out_t, out_v = self._kernel.run(
            times, values, self._params, self._state
        )
        self.emit(out_t, out_v)


class JoinOp(Operator):
    """Time-aligning binary combine: Section 4.2 sample-and-hold merge.

    The output timeline is the union of both inputs' (strictly
    increasing) timelines; at each output instant the other input
    contributes its most recent value.  Nothing is emitted until both
    inputs have produced a sample, and nothing is emitted beyond the
    watermark ``safe = min(last seen per input)`` — every future sample
    arrives strictly after it, so emitted history never changes.

    State is two held scalars plus whatever samples sit between the two
    watermarks; with inputs advancing in lockstep that pending backlog
    is at most one batch.
    """

    def __init__(self, fn_name: str) -> None:
        super().__init__()
        self._fn = BINARY_FNS[fn_name]
        self._pending_t: List[List[np.ndarray]] = [[], []]
        self._pending_v: List[List[np.ndarray]] = [[], []]
        self._watermark = [-math.inf, -math.inf]
        self._hold = [math.nan, math.nan]
        self._has = [False, False]
        # Native two-pointer merge (one pass) replacing the numpy
        # sort + dedup + two-gather path; its held-value state lives in
        # [has0, hold0, has1, hold1].  None → numpy path below.
        self._kernel = kernels.join_kernel(fn_name)
        self._kstate = (
            np.array([0.0, math.nan, 0.0, math.nan])
            if self._kernel is not None
            else None
        )

    def accept(self, port, times, values) -> None:
        self._pending_t[port].append(times)
        self._pending_v[port].append(values)
        self._watermark[port] = float(times[-1])
        self._pump(min(self._watermark))

    def flush(self) -> None:
        self._pump(math.inf)

    def _pump(self, safe: float) -> None:
        if not any(
            chunks and chunks[0][0] <= safe for chunks in self._pending_t
        ):
            return
        take_t: List[np.ndarray] = []
        take_v: List[np.ndarray] = []
        for side in (0, 1):
            chunks_t, chunks_v = self._pending_t[side], self._pending_v[side]
            if not chunks_t:
                take_t.append(_EMPTY)
                take_v.append(_EMPTY)
                continue
            t = chunks_t[0] if len(chunks_t) == 1 else np.concatenate(chunks_t)
            v = chunks_v[0] if len(chunks_v) == 1 else np.concatenate(chunks_v)
            cut = int(np.searchsorted(t, safe, side="right"))
            take_t.append(t[:cut])
            take_v.append(v[:cut])
            self._pending_t[side] = [t[cut:]] if cut < t.shape[0] else []
            self._pending_v[side] = [v[cut:]] if cut < v.shape[0] else []
        if self._kernel is not None:
            out_t, out_v = self._kernel.merge(
                take_t[0], take_v[0], take_t[1], take_v[1], self._kstate
            )
            self.emit(out_t, out_v)
            return
        t0, t1 = take_t[0], take_t[1]
        n0, n1 = t0.shape[0], t1.shape[0]
        total = n0 + n1
        if total == 0:
            return
        # Merge the two already-sorted timelines via a *stable* argsort
        # of their concatenation: timsort detects the two pre-sorted
        # runs and gallops through them in near-linear time (far
        # cheaper than per-needle binary search), and stability keeps
        # side 0 before side 1 on cross-side ties.
        cat = np.concatenate((t0, t1))
        order = np.argsort(cat, kind="stable")
        merged = cat[order]
        is0 = order < n0
        first = np.empty(total, dtype=bool)
        first[0] = True
        np.not_equal(merged[1:], merged[:-1], out=first[1:])
        held: List[np.ndarray] = []
        if bool(first.all()):
            # No cross-side ties (the common case): every union position
            # is a distinct output instant, so each side's held column
            # is its values run-length expanded across the gaps — one
            # sequential np.repeat per side, no random gathers.
            out_t = merged
            defined = np.ones(total, dtype=bool)
            for side in (0, 1):
                v = take_v[side]
                pos = np.flatnonzero(is0 if side == 0 else ~is0)
                lead = self._hold[side] if self._has[side] else math.nan
                bounds = np.empty(pos.shape[0] + 2, dtype=np.int64)
                bounds[0] = 0
                bounds[1:-1] = pos
                bounds[-1] = total
                held.append(
                    np.repeat(np.concatenate(((lead,), v)), np.diff(bounds))
                )
                if not self._has[side]:
                    # The nan lead covers positions before this side's
                    # first sample; mask them out of the output.
                    defined[: bounds[1] if pos.shape[0] else total] = False
                if v.shape[0]:
                    self._hold[side] = float(v[-1])
                    self._has[side] = True
        else:
            starts = np.flatnonzero(first)
            out_t = merged[starts]
            # Last duplicate position per distinct instant: a tie (one
            # run of two, side 0 then side 1) must count *both* sides'
            # samples.
            lasts = np.empty_like(starts)
            lasts[:-1] = starts[1:] - 1
            lasts[-1] = total - 1
            # cnt0[p]: how many side-0 samples occupy positions <= p,
            # so cnt0[lasts] - 1 is exactly the searchsorted
            # 'right' - 1 held-sample index of the old sort-based path.
            cnt0 = np.cumsum(is0, dtype=np.int64)
            defined = np.ones(out_t.shape[0], dtype=bool)
            for side in (0, 1):
                v = take_v[side]
                idx = cnt0[lasts] - 1 if side == 0 else lasts - cnt0[lasts]
                if self._has[side]:
                    v = np.concatenate(((self._hold[side],), v))
                    idx = idx + 1
                if v.shape[0] == 0:
                    defined[:] = False
                    held.append(np.full(out_t.shape[0], math.nan))
                else:
                    if idx[0] < 0:  # idx is sorted: idx[0] is its minimum
                        defined &= idx >= 0
                    held.append(v[idx])  # -1 wraps; masked via `defined`
                if take_t[side].shape[0]:
                    self._hold[side] = float(take_v[side][-1])
                    self._has[side] = True
        if bool(defined.all()):
            self.emit(out_t, self._fn(held[0], held[1]))
        else:
            self.emit(
                out_t[defined], self._fn(held[0][defined], held[1][defined])
            )

    @property
    def pending_samples(self) -> int:
        """Samples currently withheld behind the watermark (both sides)."""
        return sum(
            int(chunk.shape[0])
            for side in self._pending_t
            for chunk in side
        )


class RateOp(Operator):
    """Per-sample derivative: ``dv / dt`` in units per *second*.

    For a monotone counter (packets, bytes) this is the paper's
    bandwidth-style rate; strictly increasing times guarantee dt > 0.
    The first sample only seeds the state.
    """

    per_second = True

    def __init__(self) -> None:
        super().__init__()
        self._t: Optional[float] = None
        self._v = 0.0

    def accept(self, port, times, values) -> None:
        if self._t is None:
            if times.shape[0] < 2:
                self._t = float(times[-1])
                self._v = float(values[-1])
                return
            dt = np.diff(times)
            dv = np.diff(values)
            out_t = times[1:]
        else:
            dt = np.diff(times, prepend=self._t)
            dv = np.diff(values, prepend=self._v)
            out_t = times
        self._t = float(times[-1])
        self._v = float(values[-1])
        if self.per_second:
            self.emit(out_t, dv / (dt / 1000.0))
        else:
            self.emit(out_t, dv)


class DeltaOp(RateOp):
    """Per-sample difference ``v[i] - v[i-1]``."""

    per_second = False


class EwmaOp(Operator):
    """One-pole IIR smoothing — exactly Section 3.1's per-signal filter.

    Wraps a :class:`~repro.core.lowpass.LowPassFilter`, whose vectorised
    recursion applies the identical float operations for any batch
    split, so incremental and batch execution agree bit for bit.
    """

    def __init__(self, alpha: float) -> None:
        super().__init__()
        self._filter = LowPassFilter(alpha)

    def accept(self, port, times, values) -> None:
        try:
            filtered = self._filter.apply_many(values)
        except ValueError as exc:
            # The filter rejects Inf/NaN, which upstream arithmetic can
            # produce (e.g. a division); surface it as a typed query
            # failure rather than a bare ValueError from deep inside.
            raise QueryError(f"ewma input is not finite: {exc}") from None
        self.emit(times, filtered)


class ResampleOp(Operator):
    """Sample-and-hold resampling onto a regular grid (Section 4.2).

    Emits one sample per grid instant ``k * period`` covered by the
    input: the value is that of the latest input sample at or before
    the grid instant.  Grid points before the first sample are
    undefined and skipped; grid points after the last sample are never
    emitted (the hold would be speculative).  State: one held value and
    the next grid index.
    """

    def __init__(self, period: float) -> None:
        super().__init__()
        self._period = period
        self._next_k: Optional[int] = None
        self._hold = math.nan
        self._has = False

    def accept(self, port, times, values) -> None:
        period = self._period
        if self._next_k is None:
            self._next_k = math.ceil(times[0] / period)
        k_last = math.floor(times[-1] / period)
        if k_last >= self._next_k:
            grid = np.arange(self._next_k, k_last + 1, dtype=np.float64) * period
            t, v = times, values
            if self._has:
                t = np.concatenate(((-math.inf,), t))
                v = np.concatenate(((self._hold,), v))
            idx = np.searchsorted(t, grid, side="right") - 1
            self.emit(grid, v[idx])
            self._next_k = k_last + 1
        self._hold = float(values[-1])
        self._has = True


class WindowOp(Operator):
    """Tumbling-window aggregate over one of the Section 4.2 kinds.

    Windows are epoch-aligned: sample time ``t`` belongs to window
    ``floor(t / window)``.  A window closes when a sample lands in a
    later window (or at :meth:`flush`); its buffered samples are then
    reduced with a single
    :meth:`~repro.core.aggregate.Aggregator.add_many` call and one
    :meth:`~repro.core.aggregate.Aggregator.collect` — the aggregate
    value a polling scope would display for that interval, stamped at
    the window's end instant.  Empty windows emit nothing (the
    downstream sample-and-hold shows the previous value, matching the
    paper's discipline).  State is the open window's sample buffer.
    """

    def __init__(self, kind_value: str, window: float) -> None:
        super().__init__()
        self._kind = AggregateKind(kind_value)
        self._window = window
        self._index: Optional[float] = None
        self._buffer: List[np.ndarray] = []

    def accept(self, port, times, values) -> None:
        window = self._window
        indices = np.floor_divide(times, window)
        boundaries = np.flatnonzero(indices[1:] != indices[:-1]) + 1
        # At most one window closes per group boundary in this batch:
        # the emission columns are preallocated once and filled through
        # a cursor — no per-window Python float appends.
        out_t = np.empty(boundaries.shape[0] + 1, dtype=np.float64)
        out_v = np.empty(boundaries.shape[0] + 1, dtype=np.float64)
        emitted = 0
        start = 0
        for stop in (*boundaries.tolist(), times.shape[0]):
            group_index = float(indices[start])
            if self._index is None:
                self._index = group_index
            elif group_index != self._index:
                emitted = self._close(out_t, out_v, emitted)
                self._index = group_index
            self._buffer.append(values[start:stop])
            start = stop
        if emitted:
            self.emit(out_t[:emitted], out_v[:emitted])

    def _close(self, out_t: np.ndarray, out_v: np.ndarray, cursor: int) -> int:
        """Reduce and record the open window at ``cursor``; new cursor."""
        if not self._buffer:
            return cursor
        samples = (
            self._buffer[0]
            if len(self._buffer) == 1
            else np.concatenate(self._buffer)
        )
        self._buffer = []
        aggregator = make_aggregator(self._kind)
        aggregator.add_many(samples)
        value = aggregator.collect(self._window)
        if value is not None:
            assert self._index is not None
            out_t[cursor] = (self._index + 1.0) * self._window
            out_v[cursor] = value
            cursor += 1
        return cursor

    def flush(self) -> None:
        out_t = np.empty(1, dtype=np.float64)
        out_v = np.empty(1, dtype=np.float64)
        emitted = self._close(out_t, out_v, 0)
        if emitted:
            self.emit(out_t[:emitted], out_v[:emitted])


class EdgesOp(Operator):
    """Trigger-crossing events: +1 at rising edges, -1 at falling.

    Runs :meth:`~repro.core.trigger.Trigger.detect` with zero
    hysteresis and holdoff over each batch with the previous sample
    prepended — at zero hysteresis the trigger re-arms at every
    qualifying crossing, so one held sample is the entire cross-batch
    state and batching cannot change the events.
    """

    def __init__(self, level: float, edge_name: str) -> None:
        super().__init__()
        self._trigger = Trigger(level, Edge(edge_name))
        self._prev: Optional[float] = None

    def accept(self, port, times, values) -> None:
        if self._prev is None:
            full = values
            offset = 0
        else:
            full = np.concatenate(((self._prev,), values))
            offset = 1
        events = self._trigger.detect(full)
        self._prev = float(values[-1])
        if not events:
            return
        positions = np.fromiter(
            (e.index - offset for e in events), dtype=np.int64, count=len(events)
        )
        marks = np.fromiter(
            (1.0 if e.edge is Edge.RISING else -1.0 for e in events),
            dtype=np.float64,
            count=len(events),
        )
        self.emit(times[positions], marks)


_OPERATORS: Dict[str, Callable[..., Operator]] = {
    "source": SourceOp,
    "fused": FusedOp,
    "map1": Map1Op,
    "maps": MapScalarOp,
    "clip": ClipOp,
    "join": JoinOp,
    "rate": RateOp,
    "delta": DeltaOp,
    "ewma": EwmaOp,
    "resample": ResampleOp,
    "window": WindowOp,
    "edges": EdgesOp,
}


class Runtime:
    """One execution of a compiled :class:`~repro.query.compile.Plan`.

    Instantiates fresh operator state, wires the DAG, and exposes the
    push interface both runtimes share: :meth:`feed` columnar batches
    per input signal (any order, any batch sizes), then :meth:`finish`
    once to release watermarked tails and open windows.  Attach sinks
    to published outputs with :meth:`add_sink` before feeding.
    """

    def __init__(self, plan: Plan) -> None:
        self.plan = plan
        self._ops: List[Operator] = []
        for node in plan.nodes:
            op = _OPERATORS[node.op](*node.params)
            for port, input_id in enumerate(node.inputs):
                self._ops[input_id].connect(op, port)
            self._ops.append(op)
        self._sources: Dict[str, SourceOp] = {
            name: self._ops[node_id]  # type: ignore[misc]
            for name, node_id in plan.sources.items()
        }
        self._finished = False

    # -- wiring --------------------------------------------------------
    def add_sink(self, output_name: str, sink: Sink) -> None:
        """Subscribe ``sink(times, values)`` to a published output."""
        try:
            node_id = self.plan.outputs[output_name]
        except KeyError:
            raise QueryError(
                f"query publishes no output named {output_name!r} "
                f"(outputs: {self.plan.output_names})"
            ) from None
        self._ops[node_id].add_sink(sink)

    @property
    def source_names(self) -> List[str]:
        return self.plan.source_names

    @property
    def output_names(self) -> List[str]:
        return self.plan.output_names

    # -- execution -----------------------------------------------------
    def feed(self, name: str, times: ArrayLike, values: ArrayLike) -> bool:
        """Push one signal's columnar batch; False when ``name`` is not
        a query input (the batch is ignored — live taps see every signal
        on the wire, including the query's own emissions)."""
        source = self._sources.get(name)
        if source is None:
            return False
        if self._finished:
            raise QueryError("query runtime is finished; create a new Runtime")
        source.feed(times, values)
        return True

    def finish(self) -> None:
        """Flush withheld tails (idempotent).  Parents flush before
        children, so a flushed tail propagates through the whole DAG."""
        if self._finished:
            return
        self._finished = True
        for op in self._ops:
            op.flush()

    @property
    def finished(self) -> bool:
        return self._finished

    # -- accounting ----------------------------------------------------
    @property
    def dropped(self) -> Dict[str, int]:
        """Per-input count of non-monotone (late) samples shed at entry."""
        return {name: op.dropped for name, op in self._sources.items()}

    @property
    def accepted(self) -> Dict[str, int]:
        """Per-input count of samples admitted into the DAG."""
        return {name: op.accepted for name, op in self._sources.items()}
