"""AST and recursive-descent parser for the query language.

Grammar (lowest precedence first)::

    program := stmt ((";")+ stmt)* (";")*
    stmt    := NAME "=" expr          # named derived signal
             | expr                   # one anonymous query per program
    expr    := cmp
    cmp     := add (("<"|"<="|">"|">="|"=="|"!=") add)*
    add     := mul (("+"|"-") mul)*
    mul     := unary (("*"|"/") unary)*
    unary   := ("-"|"+") unary | atom
    atom    := NUMBER | NAME | NAME "(" expr ("," expr)* ")" | "(" expr ")"

Identifiers are signal names (``cwnd``, ``queue.depth``) or references
to earlier/later definitions in the same program; which one is decided
at compile time (:mod:`repro.query.compile`), not here.  Numbers accept
time-unit suffixes normalised to milliseconds (``10ms``, ``1s``,
``500us`` — see :mod:`repro.query.lexer`).

The AST is deliberately tiny — five node kinds — and immutable, so the
compiler can hash-cons identical subexpressions into shared DAG nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.query.errors import QuerySyntaxError
from repro.query.lexer import Token, TokenKind, tokenize


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Expr:
    """Base class for expression nodes."""


@dataclass(frozen=True)
class Num(Expr):
    """A constant (time-unit suffixes already folded to milliseconds)."""

    value: float


@dataclass(frozen=True)
class Ref(Expr):
    """A name: a source signal or another definition in the program."""

    name: str


@dataclass(frozen=True)
class Call(Expr):
    """A function application, e.g. ``ewma(queue, 0.9)``."""

    func: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Unary(Expr):
    """Unary minus (unary plus is dropped at parse time)."""

    op: str  # "neg"
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    """A binary operator application."""

    op: str  # add sub mul div lt le gt ge eq ne
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Stmt:
    """One statement: ``name = expr`` or a bare expression (name None)."""

    name: Optional[str]
    expr: Expr


@dataclass(frozen=True)
class Program:
    """A parsed query program: an ordered tuple of statements."""

    stmts: Tuple[Stmt, ...]
    text: str


_BINOP_NAMES = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
    "==": "eq",
    "!=": "ne",
}

_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")
_ADD_OPS = ("+", "-")
_MUL_OPS = ("*", "/")


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing ------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.END:
            self.pos += 1
        return tok

    def expect(self, kind: TokenKind, what: str) -> Token:
        if self.cur.kind is not kind:
            raise QuerySyntaxError(
                f"expected {what}, found {self.cur.text or 'end of query'!r}",
                self.cur.pos,
            )
        return self.advance()

    # -- grammar -------------------------------------------------------
    def program(self) -> Program:
        stmts: List[Stmt] = []
        while self.cur.kind is TokenKind.SEMI:
            self.advance()
        while self.cur.kind is not TokenKind.END:
            stmts.append(self.stmt())
            if self.cur.kind is TokenKind.SEMI:
                while self.cur.kind is TokenKind.SEMI:
                    self.advance()
            elif self.cur.kind is not TokenKind.END:
                raise QuerySyntaxError(
                    f"expected ';' between statements, found {self.cur.text!r}",
                    self.cur.pos,
                )
        if not stmts:
            raise QuerySyntaxError("empty query", 0)
        return Program(stmts=tuple(stmts), text=self.text)

    def stmt(self) -> Stmt:
        if (
            self.cur.kind is TokenKind.NAME
            and self.tokens[self.pos + 1].kind is TokenKind.ASSIGN
        ):
            name = self.advance().text
            self.advance()  # '='
            return Stmt(name=name, expr=self.expr())
        return Stmt(name=None, expr=self.expr())

    def expr(self) -> Expr:
        return self._binary_chain(_CMP_OPS, lambda: self._binary_chain(
            _ADD_OPS, lambda: self._binary_chain(_MUL_OPS, self.unary)
        ))

    def _binary_chain(self, ops, next_level) -> Expr:
        node = next_level()
        while self.cur.kind is TokenKind.OP and self.cur.text in ops:
            op = self.advance().text
            node = Binary(op=_BINOP_NAMES[op], left=node, right=next_level())
        return node

    def unary(self) -> Expr:
        if self.cur.kind is TokenKind.OP and self.cur.text == "-":
            tok = self.advance()
            operand = self.unary()
            if isinstance(operand, Num):  # fold -3 into a literal
                return Num(-operand.value)
            return Unary(op="neg", operand=operand)
        if self.cur.kind is TokenKind.OP and self.cur.text == "+":
            self.advance()
            return self.unary()
        return self.atom()

    def atom(self) -> Expr:
        tok = self.cur
        if tok.kind is TokenKind.NUMBER:
            self.advance()
            return Num(tok.value)
        if tok.kind is TokenKind.NAME:
            self.advance()
            if self.cur.kind is TokenKind.LPAREN:
                self.advance()
                args: List[Expr] = []
                if self.cur.kind is not TokenKind.RPAREN:
                    args.append(self.expr())
                    while self.cur.kind is TokenKind.COMMA:
                        self.advance()
                        args.append(self.expr())
                self.expect(TokenKind.RPAREN, "')'")
                return Call(func=tok.text, args=tuple(args))
            return Ref(name=tok.text)
        if tok.kind is TokenKind.LPAREN:
            self.advance()
            node = self.expr()
            self.expect(TokenKind.RPAREN, "')'")
            return node
        raise QuerySyntaxError(
            f"expected a value, found {tok.text or 'end of query'!r}", tok.pos
        )


def parse(text: str) -> Program:
    """Parse query ``text`` into a :class:`Program` AST."""
    return _Parser(text).program()
