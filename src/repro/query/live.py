"""Incremental execution: a compiled query as a live manager tap.

A :class:`LiveQuery` *is a tap*: it is callable with the exact
``(name, times, values, now_ms)`` batches
:meth:`~repro.core.manager.ScopeManager.push_samples` offers its taps —
the same interface a :class:`~repro.capture.writer.CaptureWriter`
records — so one ``manager.add_tap(live)`` subscribes the whole
operator DAG to the live stream.  Derived samples are pushed straight
back into the manager as ordinary buffered signals, which means scopes
display them, triggers fire on them, the wire protocol ships them and a
capture tap records them, all for free.

Feedback cannot loop: the engine ignores pushed names that are not
query inputs (its own emissions included), and the compiler rejects a
query whose output name shadows one of its inputs.

Incremental and batch execution share every operator, so attaching the
same compiled plan here and running it over the capture of the same run
produces byte-identical derived columns (the equivalence suite pins
this).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.query.compile import Plan, compile_query
from repro.query.errors import QueryError
from repro.query.ops import ArrayLike, Runtime

OutputObserver = Callable[[str, np.ndarray, np.ndarray], None]


class LiveQuery:
    """Run a compiled query incrementally over live pushed batches.

    Parameters
    ----------
    query:
        Query text or an already compiled
        :class:`~repro.query.compile.Plan`.
    manager:
        Anything with ``add_tap``/``remove_tap``/``push_samples`` — a
        :class:`~repro.core.manager.ScopeManager`, a
        :class:`~repro.net.shard.ShardedScopeManager` (shared-loop
        layout) or a single :class:`~repro.core.scope.Scope`.  When
        given, the query attaches immediately and every derived batch is
        pushed back under its output name.  Omit it to consume outputs
        through :meth:`on_output` only.
    default_name:
        Name for the program's single anonymous expression.
    """

    def __init__(
        self,
        query: Union[str, Plan],
        manager=None,
        default_name: str = "query",
    ) -> None:
        self.plan = (
            compile_query(query, default_name)
            if isinstance(query, str)
            else query
        )
        self.runtime = Runtime(self.plan)
        self.samples_out: Dict[str, int] = {}
        self._observers: List[OutputObserver] = []
        for name in self.plan.output_names:
            self.samples_out[name] = 0
            self.runtime.add_sink(name, self._make_emitter(name))
        self._manager = None
        self._error: Optional[QueryError] = None
        if manager is not None:
            self.attach(manager)

    # ------------------------------------------------------------------
    # The tap interface (what managers/scopes call on every push)
    # ------------------------------------------------------------------
    def __call__(
        self, name: str, times: ArrayLike, values: ArrayLike, now_ms: float
    ) -> None:
        """Consume one offered batch; non-input names are ignored.

        A tap runs inside the *producer's* push path, so nothing here
        may raise through it: batches arriving after :meth:`finish` are
        dropped, and a query that fails mid-stream (e.g. ``ewma`` over
        an Inf produced by a division) quarantines itself — it stops
        consuming and records the failure in :attr:`error` instead of
        crashing the application pushing samples.
        """
        if self._error is not None or self.runtime.finished:
            return
        try:
            self.runtime.feed(name, times, values)
        except QueryError as exc:
            self._error = exc

    def attach(self, manager) -> None:
        """Subscribe to ``manager`` and route emissions back into it."""
        if self._manager is not None:
            raise ValueError("query is already attached; detach() first")
        manager.add_tap(self)
        self._manager = manager

    def detach(self) -> None:
        """Unsubscribe; emissions then reach only :meth:`on_output`."""
        if self._manager is not None:
            self._manager.remove_tap(self)
            self._manager = None

    @property
    def attached(self) -> bool:
        return self._manager is not None

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------
    def on_output(self, observer: OutputObserver) -> None:
        """Also deliver every derived batch to ``observer(name, t, v)``."""
        self._observers.append(observer)

    def _make_emitter(self, name: str):
        def emitter(times: np.ndarray, values: np.ndarray) -> None:
            self.samples_out[name] += times.shape[0]
            for observer in self._observers:
                observer(name, times, values)
            if self._manager is not None:
                self._manager.push_samples(name, times, values)

        return emitter

    def finish(self) -> None:
        """Flush watermarked tails and open windows (end of the run).

        Emits through the same path as live batches, so late tails still
        reach the manager and any observers — then detaches, since a
        finished query consumes nothing further.  Idempotent.
        """
        self.runtime.finish()
        self.detach()

    @property
    def error(self) -> Optional[QueryError]:
        """The failure that quarantined this query, if any (see
        :meth:`__call__`); None while the query is healthy."""
        return self._error

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def source_names(self) -> List[str]:
        return self.plan.source_names

    @property
    def output_names(self) -> List[str]:
        return self.plan.output_names

    @property
    def dropped(self) -> Dict[str, int]:
        """Per-input non-monotone samples shed at the query boundary."""
        return self.runtime.dropped
