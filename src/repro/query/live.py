"""Incremental execution: a compiled query as a live manager tap.

A :class:`LiveQuery` *is a tap*: it is callable with the exact
``(name, times, values, now_ms)`` batches
:meth:`~repro.core.manager.ScopeManager.push_samples` offers its taps —
the same interface a :class:`~repro.capture.writer.CaptureWriter`
records — so one ``manager.add_tap(live)`` subscribes the whole
operator DAG to the live stream.  Derived samples are pushed straight
back into the manager as ordinary buffered signals, which means scopes
display them, triggers fire on them, the wire protocol ships them and a
capture tap records them, all for free.

Feedback cannot loop: the engine ignores pushed names that are not
query inputs (its own emissions included), and the compiler rejects a
query whose output name shadows one of its inputs.

Incremental and batch execution share every operator, so attaching the
same compiled plan here and running it over the capture of the same run
produces byte-identical derived columns (the equivalence suite pins
this).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.query.compile import Plan, compile_query
from repro.query.ops import ArrayLike, Runtime

try:  # the obs plane is optional; live evaluation must work without it
    from repro.obs import trace as _trace
except ImportError:  # pragma: no cover - obs package absent
    _trace = None

OutputObserver = Callable[[str, np.ndarray, np.ndarray], None]
QuarantineObserver = Callable[["LiveQuery", BaseException], None]


class LiveQuery:
    """Run a compiled query incrementally over live pushed batches.

    Parameters
    ----------
    query:
        Query text or an already compiled
        :class:`~repro.query.compile.Plan`.
    manager:
        Anything with ``add_tap``/``remove_tap``/``push_samples`` — a
        :class:`~repro.core.manager.ScopeManager`, a
        :class:`~repro.net.shard.ShardedScopeManager` (shared-loop
        layout) or a single :class:`~repro.core.scope.Scope`.  When
        given, the query attaches immediately and every derived batch is
        pushed back under its output name.  Omit it to consume outputs
        through :meth:`on_output` only.
    default_name:
        Name for the program's single anonymous expression.
    """

    def __init__(
        self,
        query: Union[str, Plan],
        manager=None,
        default_name: str = "query",
    ) -> None:
        self.plan = (
            compile_query(query, default_name)
            if isinstance(query, str)
            else query
        )
        self.runtime = Runtime(self.plan)
        self.samples_out: Dict[str, int] = {}
        self._observers: List[OutputObserver] = []
        self._quarantine_observers: List[QuarantineObserver] = []
        for name in self.plan.output_names:
            self.samples_out[name] = 0
            self.runtime.add_sink(name, self._make_emitter(name))
        self._manager = None
        self._error: Optional[BaseException] = None
        if manager is not None:
            self.attach(manager)

    # ------------------------------------------------------------------
    # The tap interface (what managers/scopes call on every push)
    # ------------------------------------------------------------------
    def __call__(
        self, name: str, times: ArrayLike, values: ArrayLike, now_ms: float
    ) -> None:
        """Consume one offered batch; non-input names are ignored.

        A tap runs inside the *producer's* push path, so nothing here
        may raise through it: batches arriving after :meth:`finish` are
        dropped, and a query that fails mid-stream — a
        :class:`~repro.query.errors.QueryError` from an operator, an
        observer that raises, a manager push failure, anything —
        quarantines itself: it detaches, stops consuming and records
        the failure in :attr:`error` instead of crashing the
        application pushing samples.
        """
        if self._error is not None or self.runtime.finished:
            return
        try:
            if _trace is not None and _trace._tracer is not None:
                with _trace.span("derive", signal=name, n=len(times)):
                    self.runtime.feed(name, times, values)
            else:
                self.runtime.feed(name, times, values)
        except Exception as exc:
            self._quarantine(exc)

    def attach(self, manager) -> None:
        """Subscribe to ``manager`` and route emissions back into it.

        A finished or quarantined query consumes nothing ever again, so
        re-attaching one is rejected rather than silently registering a
        dead tap.
        """
        if self._manager is not None:
            raise ValueError("query is already attached; detach() first")
        if self._error is not None:
            raise ValueError(
                f"query is quarantined ({self._error!r}); build a new LiveQuery"
            )
        if self.runtime.finished:
            raise ValueError("query is finished; build a new LiveQuery")
        manager.add_tap(self)
        self._manager = manager

    def detach(self) -> None:
        """Unsubscribe; emissions then reach only :meth:`on_output`."""
        if self._manager is not None:
            self._manager.remove_tap(self)
            self._manager = None

    @property
    def attached(self) -> bool:
        return self._manager is not None

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------
    def on_output(self, observer: OutputObserver) -> None:
        """Also deliver every derived batch to ``observer(name, t, v)``."""
        self._observers.append(observer)

    def on_quarantine(self, observer: QuarantineObserver) -> None:
        """Call ``observer(self, exc)`` when this query quarantines.

        Fires after the query has detached and recorded :attr:`error`,
        still inside the producer's push path — observers must not
        raise (anything they do raise is swallowed, the quarantine
        already happened).  This is how a subscription service learns
        that a shared view died and can tell its subscribers.
        """
        self._quarantine_observers.append(observer)

    def _quarantine(self, exc: BaseException) -> None:
        """Record the failure, detach, notify — never raise."""
        if self._error is not None:
            return
        self._error = exc
        try:
            self.detach()
        except Exception:
            pass  # the manager may itself be mid-teardown
        for observer in self._quarantine_observers:
            try:
                observer(self, exc)
            except Exception:
                pass

    def _make_emitter(self, name: str):
        def emitter(times: np.ndarray, values: np.ndarray) -> None:
            self.samples_out[name] += times.shape[0]
            # Emissions run inside the producer's push path too: a
            # failing observer or manager push quarantines the query
            # rather than raising through push_samples.
            try:
                for observer in self._observers:
                    observer(name, times, values)
                if self._manager is not None:
                    self._manager.push_samples(name, times, values)
            except Exception as exc:
                self._quarantine(exc)

        return emitter

    def finish(self) -> None:
        """Flush watermarked tails and open windows (end of the run).

        Emits through the same path as live batches, so late tails still
        reach the manager and any observers — then detaches, since a
        finished query consumes nothing further.  Idempotent.
        """
        self.runtime.finish()
        self.detach()

    @property
    def error(self) -> Optional[BaseException]:
        """The failure that quarantined this query, if any (see
        :meth:`__call__`); None while the query is healthy.  Usually a
        :class:`~repro.query.errors.QueryError`, but any exception an
        operator, output observer or manager push raises quarantines."""
        return self._error

    @property
    def quarantined(self) -> bool:
        """True once a failure has permanently stopped this query."""
        return self._error is not None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def source_names(self) -> List[str]:
        return self.plan.source_names

    @property
    def output_names(self) -> List[str]:
        return self.plan.output_names

    @property
    def dropped(self) -> Dict[str, int]:
        """Per-input non-monotone samples shed at the query boundary."""
        return self.runtime.dropped
