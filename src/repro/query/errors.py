"""Typed errors for the derived-signal query engine.

Everything the engine can reject raises a :class:`QueryError` subclass,
so callers (the CLI, tests, embedding applications) can catch one type
and still distinguish *where* the query went wrong:

* :class:`QuerySyntaxError` — the text does not lex/parse (bad token,
  unbalanced parentheses, missing operand).
* :class:`QueryCompileError` — the text parses but cannot become an
  operator DAG (unknown function, wrong arity, non-constant parameter,
  cyclic definitions, a query with no signal input).
"""

from __future__ import annotations


class QueryError(ValueError):
    """Base class for every query-engine rejection."""


class QuerySyntaxError(QueryError):
    """The query text failed to lex or parse.

    Carries the offending position so the CLI can point at it.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class QueryCompileError(QueryError):
    """The parsed query cannot be compiled to an operator DAG."""
