"""Batch execution: a compiled query over a capture store's columns.

The offline half of the engine: run the same operator DAG over the
columns of a recorded run —
``execute(CaptureReader("run.capture"), "ewma(queue, 0.9)")`` — for
re-runnable analyses of recorded experiments.  Because the capture
stores the *offered* stream in push order and the operators are
batch-split invariant, a query executed here over a capture reproduces
what the same query computed live, byte for byte — recorded derived
traces and re-derived ones are interchangeable.

``execute`` accepts a :class:`~repro.capture.reader.CaptureReader`
(columns come from :meth:`~repro.capture.reader.CaptureReader.columns_for`,
one streaming pass over the mmapped segments) or any mapping of
``name -> (times, values)`` columns.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple, Union

import numpy as np

from repro.query.compile import Plan, compile_query
from repro.query.errors import QueryError
from repro.query.ops import Runtime

Columns = Tuple[np.ndarray, np.ndarray]

_EMPTY = np.empty(0, dtype=np.float64)


def _source_columns(source, names: List[str]) -> Dict[str, Columns]:
    """Resolve the query's input columns from a reader or a mapping."""
    if hasattr(source, "columns_for"):  # CaptureReader
        available = set(source.names)
        missing = [name for name in names if name not in available]
        if missing:
            raise QueryError(
                f"capture has no signal(s) {missing} "
                f"(recorded: {sorted(available)})"
            )
        return source.columns_for(names)
    if isinstance(source, Mapping):
        columns: Dict[str, Columns] = {}
        for name in names:
            if name not in source:
                raise QueryError(
                    f"columns for signal {name!r} not provided "
                    f"(have: {sorted(source)})"
                )
            times, values = source[name]
            columns[name] = (times, values)
        return columns
    raise TypeError(
        f"source must be a CaptureReader or a name->(times, values) "
        f"mapping, got {type(source).__name__}"
    )


def execute(
    source,
    query: Union[str, Plan],
    default_name: str = "query",
) -> Dict[str, Columns]:
    """Run ``query`` over recorded columns; returns derived columns.

    One ``(times, values)`` float64 pair per published output, in
    definition order.  The columns are exactly what an attached
    :class:`~repro.query.live.LiveQuery` would have emitted for the
    same offered stream — byte-identical, not merely close.
    """
    plan = (
        compile_query(query, default_name) if isinstance(query, str) else query
    )
    runtime = Runtime(plan)
    chunks: Dict[str, Tuple[List[np.ndarray], List[np.ndarray]]] = {
        name: ([], []) for name in plan.output_names
    }

    def make_sink(name: str):
        times_list, values_list = chunks[name]

        def sink(times: np.ndarray, values: np.ndarray) -> None:
            times_list.append(times)
            values_list.append(values)

        return sink

    for name in plan.output_names:
        runtime.add_sink(name, make_sink(name))
    columns = _source_columns(source, runtime.source_names)
    # Feed order across signals cannot change the result (operators are
    # watermarked); keep it deterministic anyway: first-reference order.
    for name in runtime.source_names:
        times, values = columns[name]
        runtime.feed(name, times, values)
    runtime.finish()

    out: Dict[str, Columns] = {}
    for name in plan.output_names:
        times_list, values_list = chunks[name]
        if not times_list:
            out[name] = (_EMPTY, _EMPTY.copy())
        elif len(times_list) == 1:
            # Single emission: hand the operator's column through
            # as-is (operators never mutate emitted arrays, so the
            # concatenate copy would buy nothing).
            out[name] = (times_list[0], values_list[0])
        else:
            out[name] = (
                np.concatenate(times_list),
                np.concatenate(values_list),
            )
    return out
