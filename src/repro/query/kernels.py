"""Single-pass fused kernels: generated C (or numba) behind ctypes.

The compiler's fusion pass (:func:`repro.query.compile.fuse_plan`)
collapses maximal chains of elementwise and simple stateful operators
into one ``fused`` plan node; this module executes those nodes in a
single pass over each batch.  Three backends, strongest available wins
(see :mod:`repro.core.native` for the ``REPRO_NATIVE`` gate):

* **generated C** — one tiny translation unit per fused-chain
  *signature* (the sequence of step shapes, constants excluded),
  compiled once through the :mod:`repro.core.native` seam and cached
  on disk, so ``x*2`` and ``x*3`` share a kernel and a warm cache
  never invokes the compiler;
* **numba** — the same loop emitted as Python source and jitted, for
  installs with numba but no C toolchain (``REPRO_NATIVE=numba``);
* **numpy** — no kernel at all: the fused node falls back to running
  the original per-operator numpy chain (see
  :class:`repro.query.ops.FusedOp`), which is also the always-on
  oracle every kernel must match byte for byte.

Byte-identity is engineered, not hoped for: kernels are compiled with
``-fno-fast-math -ffp-contract=off`` so every step performs exactly
the IEEE-754 double operations of its numpy counterpart, in the same
order — including numpy's NaN rules (``minimum``/``maximum`` propagate
via ``(a OP b || a != a) ? a : b``; comparisons yield 0.0 on NaN;
``clip`` keeps ``-0.0`` and lets NaN through) and scipy's one-pole
``lfilter`` recursion for ``ewma`` (commutes bit-for-bit with
``a*y + (1-a)*x``).

Beyond fused chains, the shared *support* library carries the other
hot-loop kernels of the data path: the two-pointer sample-and-hold
**join merge** (replacing sort + two ``searchsorted`` gathers), the
**strict-monotonicity probe** used by source operators, and the
**block gather** used by :meth:`repro.capture.reader.CaptureReader.columns_for`.
All of them degrade to numpy when no native backend exists.
"""

from __future__ import annotations

import ctypes
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import native
from repro.query.errors import QueryError

__all__ = [
    "FUSABLE_OPS",
    "FusedKernel",
    "JoinKernel",
    "fusable_steps",
    "gather_blocks",
    "gather_verify",
    "get_fused",
    "is_elementwise",
    "join_kernel",
    "monotone_strict",
    "params_vector",
    "signature_of",
    "state_size",
]

#: Operator kinds the fusion pass may collapse into one kernel.  Joins,
#: windows, resampling and edge detection are *barriers*: they change
#: the timeline (or need cross-input alignment) and always stay their
#: own nodes.
FUSABLE_OPS = frozenset({"map1", "maps", "clip", "ewma", "rate", "delta"})

Step = Tuple[str, Tuple]

_C_LL = ctypes.c_longlong
_C_D = ctypes.c_double
_C_P = ctypes.c_void_p


# ----------------------------------------------------------------------
# Step model: signature, params, state
# ----------------------------------------------------------------------
def fusable_steps(steps: Sequence[Step]) -> bool:
    """True when every step can live inside one fused kernel.

    A ``clip`` with a non-finite bound is excluded: numpy's compound
    NaN-bound behaviour has no single-comparison equivalent, so such a
    node stays a standalone :class:`~repro.query.ops.ClipOp`.
    """
    import math

    for op, params in steps:
        if op not in FUSABLE_OPS:
            return False
        if op == "clip" and not (
            math.isfinite(params[0]) and math.isfinite(params[1])
        ):
            return False
    return True


def signature_of(steps: Sequence[Step]) -> Tuple:
    """Shape key of a chain: step kinds and flags, constants excluded."""
    sig: List[Tuple] = []
    for op, params in steps:
        if op == "map1":
            sig.append(("map1", params[0]))
        elif op == "maps":
            sig.append(("maps", params[0], bool(params[2])))
        else:
            sig.append((op,))
    return tuple(sig)


def params_vector(steps: Sequence[Step]) -> np.ndarray:
    """The chain's constants, flattened in step order."""
    flat: List[float] = []
    for op, params in steps:
        if op == "maps":
            flat.append(float(params[1]))
        elif op == "clip":
            flat.extend((float(params[0]), float(params[1])))
        elif op == "ewma":
            flat.append(float(params[0]))
    return np.asarray(flat, dtype=np.float64)


def state_size(steps: Sequence[Step]) -> int:
    """Doubles of cross-batch state the chain carries."""
    total = 0
    for op, _ in steps:
        if op == "ewma":
            total += 2  # has, y
        elif op in ("rate", "delta"):
            total += 3  # has, t_prev, v_prev
    return total


def is_elementwise(steps: Sequence[Step]) -> bool:
    """True when the chain keeps the input timeline sample for sample.

    Only ``rate``/``delta`` swallow a sample (their seed); every other
    fusable step is 1:1, so the kernel can skip the times column
    entirely and the operator passes the input times through zero-copy.
    """
    return not any(op in ("rate", "delta") for op, _ in steps)


# ----------------------------------------------------------------------
# Codegen: each step emitted for C and for Python (numba)
# ----------------------------------------------------------------------
_CMP_C = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==", "ne": "!="}


def _binary_expr(fn: str, a: str, b: str, lang: str) -> str:
    """The elementwise combine, mirroring numpy's exact semantics."""
    if fn == "add":
        return f"{a} + {b}"
    if fn == "sub":
        return f"{a} - {b}"
    if fn == "mul":
        return f"{a} * {b}"
    if fn == "div":
        return f"{a} / {b}"
    if fn == "min":
        cond = f"({a} < {b}) or ({a} != {a})" if lang == "py" else f"({a} < {b}) || ({a} != {a})"
        return f"({a}) if ({cond}) else ({b})" if lang == "py" else f"(({cond}) ? ({a}) : ({b}))"
    if fn == "max":
        cond = f"({a} > {b}) or ({a} != {a})" if lang == "py" else f"({a} > {b}) || ({a} != {a})"
        return f"({a}) if ({cond}) else ({b})" if lang == "py" else f"(({cond}) ? ({a}) : ({b}))"
    op = _CMP_C[fn]
    if lang == "py":
        return f"1.0 if ({a} {op} {b}) else 0.0"
    return f"(({a} {op} {b}) ? 1.0 : 0.0)"


def _emit_steps(steps: Sequence[Step], lang: str) -> Tuple[List[str], List[str], List[str]]:
    """Generate (state_loads, loop_body, state_stores) for one chain.

    The loop body manipulates locals ``t`` and ``v``; a step that
    swallows the current sample (a rate/delta seed) issues ``continue``.
    ``p`` is the constants vector, ``state`` the cross-batch state.
    """
    loads: List[str] = []
    body: List[str] = []
    stores: List[str] = []
    k = 0  # params cursor
    s = 0  # state cursor
    dcl = "" if lang == "py" else "double "
    for index, (op, params) in enumerate(steps):
        if op == "map1":
            fn = params[0]
            if fn == "abs":
                body.append("v = fabs(v);" if lang == "c" else "v = abs(v)")
            else:  # neg
                body.append("v = -v;" if lang == "c" else "v = -v")
        elif op == "maps":
            fn, _, on_left = params[0], params[1], params[2]
            sname = f"c{index}"
            loads.append(f"{dcl}{sname} = p[{k}]" + (";" if lang == "c" else ""))
            expr = (
                _binary_expr(fn, sname, "v", lang)
                if on_left
                else _binary_expr(fn, "v", sname, lang)
            )
            body.append(f"v = {expr};" if lang == "c" else f"v = {expr}")
            k += 1
        elif op == "clip":
            lo, hi = f"lo{index}", f"hi{index}"
            loads.append(f"{dcl}{lo} = p[{k}]" + (";" if lang == "c" else ""))
            loads.append(f"{dcl}{hi} = p[{k + 1}]" + (";" if lang == "c" else ""))
            if lang == "c":
                body.append(f"if (v < {lo}) v = {lo};")
                body.append(f"if (v > {hi}) v = {hi};")
            else:
                body.append(f"if v < {lo}:")
                body.append(f"    v = {lo}")
                body.append(f"if v > {hi}:")
                body.append(f"    v = {hi}")
            k += 2
        elif op == "ewma":
            al, has, y = f"al{index}", f"has{index}", f"y{index}"
            loads.append(f"{dcl}{al} = p[{k}]" + (";" if lang == "c" else ""))
            loads.append(f"{dcl}{has} = state[{s}]" + (";" if lang == "c" else ""))
            loads.append(f"{dcl}{y} = state[{s + 1}]" + (";" if lang == "c" else ""))
            if lang == "c":
                body.append(f"if (!isfinite(v)) return -(i + 1);")
                body.append(f"if ({has} == 0.0) {{ {has} = 1.0; {y} = v; }}")
                body.append(
                    f"else if ({al} != 0.0 && {al} != 1.0) "
                    f"{y} = {al} * {y} + (1.0 - {al}) * v;"
                )
                body.append(f"else if ({al} == 0.0) {y} = v;")
                body.append(f"v = {y};")
            else:
                body.append("if not (v - v == 0.0):")  # inf/nan probe
                body.append("    return -(i + 1)")
                body.append(f"if {has} == 0.0:")
                body.append(f"    {has} = 1.0")
                body.append(f"    {y} = v")
                body.append(f"elif {al} != 0.0 and {al} != 1.0:")
                body.append(f"    {y} = {al} * {y} + (1.0 - {al}) * v")
                body.append(f"elif {al} == 0.0:")
                body.append(f"    {y} = v")
                body.append(f"v = {y}")
            stores.append((f"state[{s}] = {has};", f"state[{s}] = {has}")[lang == "py"])
            stores.append(
                (f"state[{s + 1}] = {y};", f"state[{s + 1}] = {y}")[lang == "py"]
            )
            k += 1
            s += 2
        elif op in ("rate", "delta"):
            has, tp, vp = f"has{index}", f"tp{index}", f"vp{index}"
            loads.append(f"{dcl}{has} = state[{s}]" + (";" if lang == "c" else ""))
            loads.append(f"{dcl}{tp} = state[{s + 1}]" + (";" if lang == "c" else ""))
            loads.append(f"{dcl}{vp} = state[{s + 2}]" + (";" if lang == "c" else ""))
            if lang == "c":
                body.append(
                    f"if ({has} == 0.0) {{ {has} = 1.0; {tp} = t; {vp} = v; continue; }}"
                )
                body.append(f"double dt{index} = t - {tp};")
                body.append(f"double dv{index} = v - {vp};")
                body.append(f"{tp} = t; {vp} = v;")
                if op == "rate":
                    body.append(f"v = dv{index} / (dt{index} / 1000.0);")
                else:
                    body.append(f"v = dv{index};")
            else:
                body.append(f"if {has} == 0.0:")
                body.append(f"    {has} = 1.0")
                body.append(f"    {tp} = t")
                body.append(f"    {vp} = v")
                body.append("    continue")
                body.append(f"dt{index} = t - {tp}")
                body.append(f"dv{index} = v - {vp}")
                body.append(f"{tp} = t")
                body.append(f"{vp} = v")
                if op == "rate":
                    body.append(f"v = dv{index} / (dt{index} / 1000.0)")
                else:
                    body.append(f"v = dv{index}")
            stores.append((f"state[{s}] = {has};", f"state[{s}] = {has}")[lang == "py"])
            stores.append(
                (f"state[{s + 1}] = {tp};", f"state[{s + 1}] = {tp}")[lang == "py"]
            )
            stores.append(
                (f"state[{s + 2}] = {vp};", f"state[{s + 2}] = {vp}")[lang == "py"]
            )
            s += 3
        else:  # pragma: no cover - fusable_steps() guards this
            raise ValueError(f"cannot fuse operator {op!r}")
    return loads, body, stores


def _c_source(steps: Sequence[Step]) -> str:
    loads, body, stores = _emit_steps(steps, "c")
    body_text = "\n        ".join(body)
    load_text = "\n".join("    " + line for line in loads).lstrip()
    store_text = "\n".join("    " + line for line in stores).lstrip()
    if is_elementwise(steps):
        # 1:1 chain: no times column at all — the caller reuses the
        # input times array, so the kernel touches half the memory.
        return f"""\
#include <math.h>

long long fused_map(long long n, const double* v_in, double* v_out,
                    const double* p, double* state)
{{
    {load_text}
    for (long long i = 0; i < n; i++) {{
        double v = v_in[i];
        {body_text}
        v_out[i] = v;
    }}
    {store_text}
    return n;
}}
"""
    return f"""\
#include <math.h>

long long fused_run(long long n, const double* t_in, const double* v_in,
                    double* t_out, double* v_out,
                    const double* p, double* state)
{{
    {load_text}
    long long m = 0;
    for (long long i = 0; i < n; i++) {{
        double t = t_in[i];
        double v = v_in[i];
        {body_text}
        t_out[m] = t;
        v_out[m] = v;
        m++;
    }}
    {store_text}
    return m;
}}
"""


def _py_source(steps: Sequence[Step]) -> str:
    loads, body, stores = _emit_steps(steps, "py")
    indent = "\n        ".join(body)
    load_text = "\n    ".join(loads) or "pass"
    store_text = "\n    ".join(stores) or "pass"
    return f"""\
def fused_run(n, t_in, v_in, t_out, v_out, p, state):
    {load_text}
    m = 0
    for i in range(n):
        t = t_in[i]
        v = v_in[i]
        {indent}
        t_out[m] = t
        v_out[m] = v
        m += 1
    {store_text}
    return m
"""


# ----------------------------------------------------------------------
# Fused-chain kernel
# ----------------------------------------------------------------------
class FusedKernel:
    """One compiled single-pass kernel for a fused-chain signature.

    ``run`` consumes a batch and returns the emitted ``(times, values)``
    columns; cross-batch state lives in the caller-owned ``state``
    vector (see :func:`state_size`), so one kernel object is shared by
    every runtime instance of the same signature.
    """

    def __init__(
        self, signature: Tuple, fn, backend: str, elementwise: bool = False
    ) -> None:
        self.signature = signature
        self.backend = backend
        self.elementwise = elementwise
        self._fn = fn

    def run(
        self,
        times: np.ndarray,
        values: np.ndarray,
        params: np.ndarray,
        state: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = times.shape[0]
        if not values.flags.c_contiguous:
            values = np.ascontiguousarray(values)
        if self.elementwise:
            # 1:1 chain: the input times flow through untouched
            # (zero-copy); only a fresh values column is written.
            out_v = np.empty(n, dtype=np.float64)
            m = self._fn(
                n, values.ctypes.data, out_v.ctypes.data,
                params.ctypes.data, state.ctypes.data,
            )
            if m < 0:
                raise QueryError(
                    f"ewma input is not finite (batch sample {-int(m) - 1})"
                )
            return times, out_v
        out_t = np.empty(n, dtype=np.float64)
        out_v = np.empty(n, dtype=np.float64)
        if not times.flags.c_contiguous:
            times = np.ascontiguousarray(times)
        if self.backend == "c":
            m = self._fn(
                n,
                times.ctypes.data,
                values.ctypes.data,
                out_t.ctypes.data,
                out_v.ctypes.data,
                params.ctypes.data,
                state.ctypes.data,
            )
        else:
            m = self._fn(n, times, values, out_t, out_v, params, state)
        if m < 0:
            raise QueryError(
                f"ewma input is not finite (batch sample {-int(m) - 1})"
            )
        return out_t[:m], out_v[:m]


_fused_cache: Dict[Tuple, Optional[FusedKernel]] = {}


def _numba_compile(py_src: str):
    """Jit the generated loop; any failure means "no kernel"."""
    try:
        import numba
    except Exception:  # pragma: no cover - exercised only without numba
        return None
    namespace: Dict = {}
    exec(compile(py_src, "<fused-kernel>", "exec"), namespace)
    try:
        return numba.njit(cache=False, fastmath=False)(namespace["fused_run"])
    except Exception:  # pragma: no cover - numba present but jit failed
        return None


def get_fused(steps: Sequence[Step]) -> Optional[FusedKernel]:
    """The compiled kernel for ``steps``, or None (use the numpy chain).

    Kernels are cached per signature; constants travel in the params
    vector at run time, so structurally identical chains share one
    compilation.
    """
    if native.mode() == "numpy" or not fusable_steps(steps):
        return None
    sig = signature_of(steps)
    if sig in _fused_cache:
        return _fused_cache[sig]
    kernel: Optional[FusedKernel] = None
    elementwise = is_elementwise(steps)
    if native.mode() == "c":
        lib = native.build(_c_source(steps), "fused")
        if lib is not None:
            if elementwise:
                fn = lib.fused_map
                fn.restype = _C_LL
                fn.argtypes = [_C_LL, _C_P, _C_P, _C_P, _C_P]
            else:
                fn = lib.fused_run
                fn.restype = _C_LL
                fn.argtypes = [_C_LL, _C_P, _C_P, _C_P, _C_P, _C_P, _C_P]
            kernel = FusedKernel(sig, fn, "c", elementwise)
    elif native.mode() == "numba":
        fn = _numba_compile(_py_source(steps))
        if fn is not None:
            kernel = FusedKernel(sig, fn, "numba")
    _fused_cache[sig] = kernel
    return kernel


# ----------------------------------------------------------------------
# Support library: join merge, monotone probe, block gather
# ----------------------------------------------------------------------
_JOIN_FNS = ("add", "sub", "mul", "div", "min", "max", "lt", "le", "gt", "ge", "eq", "ne")


def _join_c(fn: str) -> str:
    expr = _binary_expr(fn, "hold0", "hold1", "c")
    expr_l = _binary_expr(fn, "v0[q]", "hold1", "c")
    expr_r = _binary_expr(fn, "hold0", "v1[q]", "c")
    return f"""\
long long join_{fn}(long long n0, const double* t0, const double* v0,
                    long long n1, const double* t1, const double* v1,
                    double* state, double* out_t, double* out_v)
{{
    double has0 = state[0], hold0 = state[1];
    double has1 = state[2], hold1 = state[3];
    long long i = 0, j = 0, m = 0;
    while (i < n0 || j < n1) {{
        if (has0 != 0.0 && has1 != 0.0) {{
            /* Steady state: both holds primed.  Consume a maximal run
               of one side strictly below the other side's head in one
               go — memcpy the timestamps and combine against the
               constant opposite hold in a tight vectorizable loop —
               instead of one branchy step per sample.  Batched pushes
               make long runs the common case; perfectly interleaved
               streams degrade to runs of one, i.e. the scalar merge. */
            if (i < n0 && (j >= n1 || t0[i] < t1[j])) {{
                long long k;
                if (j >= n1) k = n0;
                else {{ k = i + 1; while (k < n0 && t0[k] < t1[j]) k++; }}
                if (k - i < 16) {{  /* interleaved: memcpy call costs more */
                    for (long long q = i; q < k; q++) {{
                        out_t[m + (q - i)] = t0[q];
                        out_v[m + (q - i)] = {expr_l};
                    }}
                }} else {{
                    memcpy(out_t + m, t0 + i, (size_t)(8 * (k - i)));
                    for (long long q = i; q < k; q++)
                        out_v[m + (q - i)] = {expr_l};
                }}
                m += k - i; hold0 = v0[k - 1]; i = k;
            }} else if (j < n1 && (i >= n0 || t1[j] < t0[i])) {{
                long long k;
                if (i >= n0) k = n1;
                else {{ k = j + 1; while (k < n1 && t1[k] < t0[i]) k++; }}
                if (k - j < 16) {{
                    for (long long q = j; q < k; q++) {{
                        out_t[m + (q - j)] = t1[q];
                        out_v[m + (q - j)] = {expr_r};
                    }}
                }} else {{
                    memcpy(out_t + m, t1 + j, (size_t)(8 * (k - j)));
                    for (long long q = j; q < k; q++)
                        out_v[m + (q - j)] = {expr_r};
                }}
                m += k - j; hold1 = v1[k - 1]; j = k;
            }} else {{ /* tie: both streams sample this instant */
                hold0 = v0[i]; hold1 = v1[j];
                out_t[m] = t0[i];
                out_v[m] = {expr};
                m++; i++; j++;
            }}
            continue;
        }}
        /* One side never seen: no output is possible, only the other
           hold advances — swallow the whole batch remainder at once. */
        if (j >= n1 && has1 == 0.0) {{
            hold0 = v0[n0 - 1]; has0 = 1.0; i = n0; continue;
        }}
        if (i >= n0 && has0 == 0.0) {{
            hold1 = v1[n1 - 1]; has1 = 1.0; j = n1; continue;
        }}
        /* Warm-up: scalar sample-and-hold step until both sides prime. */
        double tm;
        if (j >= n1) tm = t0[i];
        else if (i >= n0) tm = t1[j];
        else tm = (t0[i] < t1[j]) ? t0[i] : t1[j];
        if (i < n0 && t0[i] == tm) {{ hold0 = v0[i]; has0 = 1.0; i++; }}
        if (j < n1 && t1[j] == tm) {{ hold1 = v1[j]; has1 = 1.0; j++; }}
        if (has0 != 0.0 && has1 != 0.0) {{
            out_t[m] = tm;
            out_v[m] = {expr};
            m++;
        }}
    }}
    state[0] = has0; state[1] = hold0;
    state[2] = has1; state[3] = hold1;
    return m;
}}
"""


_SUPPORT_SOURCE = (
    "#include <math.h>\n#include <string.h>\n\n"
    + "\n".join(_join_c(fn) for fn in _JOIN_FNS)
    + """
long long monotone_strict(long long n, const double* t, double last)
{
    if (n == 0) return 1;
    if (!(t[0] > last)) return 0;
    for (long long i = 1; i < n; i++)
        if (!(t[i] > t[i - 1])) return 0;
    return 1;
}

long long gather_blocks(const char* base, const long long* offsets,
                        const long long* counts, long long nblocks,
                        double* out_t, double* out_v)
{
    long long cur = 0;
    for (long long b = 0; b < nblocks; b++) {
        long long c = counts[b];
        memcpy((char*)(out_t + cur), base + offsets[b], (size_t)(8 * c));
        memcpy((char*)(out_v + cur), base + offsets[b] + 8 * c, (size_t)(8 * c));
        cur += c;
    }
    return cur;
}
"""
)

#: Verified gather: per-block CRC check *and* payload copy in one C
#: pass over the segment, calling zlib's optimized ``crc32_z`` directly
#: (the support ``.so`` links ``-lz``).  This removes the Python
#: per-block verification loop from the capture read path; the CRC
#: itself still runs at zlib speed, but each signal costs one native
#: call per segment instead of one Python call per block.  Returns the
#: sample count copied, or ``-(b + 1)`` naming the first bad block.
_CRC_SOURCE = """\
#include <stddef.h>
#include <string.h>

extern unsigned long crc32_z(unsigned long crc, const unsigned char* buf,
                             size_t len);

long long gather_verify(const char* base, const long long* offsets,
                        const long long* counts, const long long* crcs,
                        long long nblocks, double* out_t, double* out_v)
{
    long long cur = 0;
    for (long long b = 0; b < nblocks; b++) {
        long long c = counts[b];
        if (crcs[b] >= 0) {  /* negative: caller already verified it */
            unsigned long got = crc32_z(
                0UL, (const unsigned char*)(base + offsets[b]),
                (size_t)(16 * c));
            if ((long long)(got & 0xffffffffUL) != crcs[b])
                return -(b + 1);
        }
        memcpy((char*)(out_t + cur), base + offsets[b], (size_t)(8 * c));
        memcpy((char*)(out_v + cur), base + offsets[b] + 8 * c,
               (size_t)(8 * c));
        cur += c;
    }
    return cur;
}
"""

_support_lib: Optional[ctypes.CDLL] = None
_support_tried = False
_crc_lib: Optional[ctypes.CDLL] = None
_crc_tried = False


def _support() -> Optional[ctypes.CDLL]:
    global _support_lib, _support_tried
    if not _support_tried:
        _support_tried = True
        if native.mode() == "c":
            lib = native.build(_SUPPORT_SOURCE, "support")
            if lib is not None:
                for fn_name in _JOIN_FNS:
                    fn = getattr(lib, f"join_{fn_name}")
                    fn.restype = _C_LL
                    fn.argtypes = [_C_LL, _C_P, _C_P, _C_LL, _C_P, _C_P, _C_P, _C_P, _C_P]
                lib.monotone_strict.restype = _C_LL
                lib.monotone_strict.argtypes = [_C_LL, _C_P, _C_D]
                lib.gather_blocks.restype = _C_LL
                lib.gather_blocks.argtypes = [_C_P, _C_P, _C_P, _C_LL, _C_P, _C_P]
            _support_lib = lib
    return _support_lib


def _crc() -> Optional[ctypes.CDLL]:
    """The verified-gather library, built separately: it links ``-lz``,
    and a machine with a compiler but no zlib dev library must lose only
    this fast path, not the whole support library."""
    global _crc_lib, _crc_tried
    if not _crc_tried:
        _crc_tried = True
        if native.mode() == "c":
            lib = native.build(_CRC_SOURCE, "crcgather", ldflags=("-lz",))
            if lib is not None:
                lib.gather_verify.restype = _C_LL
                lib.gather_verify.argtypes = [
                    _C_P, _C_P, _C_P, _C_P, _C_LL, _C_P, _C_P,
                ]
            _crc_lib = lib
    return _crc_lib


def reset_cache() -> None:
    """Drop per-process kernel caches (test hook, pairs with native.reset)."""
    global _support_lib, _support_tried, _crc_lib, _crc_tried
    _fused_cache.clear()
    _support_lib = None
    _support_tried = False
    _crc_lib = None
    _crc_tried = False


class JoinKernel:
    """Two-pointer sample-and-hold merge of two strictly-monotone streams.

    One pass replaces the numpy path's concatenate + timsort + dedup +
    two ``searchsorted`` gathers; the held-value state rides in a
    4-double vector ``[has0, hold0, has1, hold1]`` owned by the
    :class:`~repro.query.ops.JoinOp`.
    """

    def __init__(self, fn) -> None:
        self._fn = fn

    def merge(
        self,
        t0: np.ndarray,
        v0: np.ndarray,
        t1: np.ndarray,
        v1: np.ndarray,
        state: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        n0, n1 = t0.shape[0], t1.shape[0]
        out_t = np.empty(n0 + n1, dtype=np.float64)
        out_v = np.empty(n0 + n1, dtype=np.float64)
        arrays = []
        for arr in (t0, v0, t1, v1):
            if not arr.flags.c_contiguous:
                arr = np.ascontiguousarray(arr)
            arrays.append(arr)
        m = self._fn(
            n0,
            arrays[0].ctypes.data,
            arrays[1].ctypes.data,
            n1,
            arrays[2].ctypes.data,
            arrays[3].ctypes.data,
            state.ctypes.data,
            out_t.ctypes.data,
            out_v.ctypes.data,
        )
        return out_t[:m], out_v[:m]


def join_kernel(fn_name: str) -> Optional[JoinKernel]:
    """The native merge kernel for one combine fn, or None (numpy path)."""
    lib = _support()
    if lib is None or fn_name not in _JOIN_FNS:
        return None
    return JoinKernel(getattr(lib, f"join_{fn_name}"))


def monotone_strict(times: np.ndarray, last: float) -> Optional[bool]:
    """Native strict-monotonicity probe; None when no native backend.

    True iff ``times`` is strictly increasing and its head strictly
    exceeds ``last`` (NaNs fail both, matching the numpy slow path).
    """
    lib = _support()
    if lib is None:
        return None
    if not times.flags.c_contiguous:
        return None
    return bool(lib.monotone_strict(times.shape[0], times.ctypes.data, last))


def gather_blocks(
    base: np.ndarray,
    offsets: np.ndarray,
    counts: np.ndarray,
    out_t: np.ndarray,
    out_v: np.ndarray,
    start: int,
) -> Optional[int]:
    """Native block gather into preallocated columns; None → numpy path.

    ``base`` is a uint8 view of one mmapped segment; ``offsets`` and
    ``counts`` (int64) describe the signal's blocks in stream order;
    the copy lands at ``out_t[start:]``/``out_v[start:]``.
    """
    lib = _support()
    if lib is None:
        return None
    copied = lib.gather_blocks(
        base.ctypes.data,
        np.ascontiguousarray(offsets, dtype=np.int64).ctypes.data,
        np.ascontiguousarray(counts, dtype=np.int64).ctypes.data,
        offsets.shape[0],
        out_t.ctypes.data + 8 * start,
        out_v.ctypes.data + 8 * start,
    )
    return int(copied)


def gather_verify(
    base: np.ndarray,
    offsets: np.ndarray,
    counts: np.ndarray,
    crcs: np.ndarray,
    out_t: np.ndarray,
    out_v: np.ndarray,
    start: int,
) -> Optional[int]:
    """CRC-check and gather blocks in one native pass; None → numpy path.

    ``crcs`` (int64) holds each block's stored payload CRC, or ``-1``
    for blocks the caller has already verified (the check is skipped).
    Returns the sample count copied, or ``-(b + 1)`` when block ``b``
    (an index into ``offsets``) fails its CRC — the caller raises.
    """
    lib = _crc()
    if lib is None:
        return None
    rc = lib.gather_verify(
        base.ctypes.data,
        np.ascontiguousarray(offsets, dtype=np.int64).ctypes.data,
        np.ascontiguousarray(counts, dtype=np.int64).ctypes.data,
        np.ascontiguousarray(crcs, dtype=np.int64).ctypes.data,
        offsets.shape[0],
        out_t.ctypes.data + 8 * start,
        out_v.ctypes.data + 8 * start,
    )
    return int(rc)
