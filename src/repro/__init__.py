"""repro — a pure-Python reproduction of Gscope.

Gscope (Goel & Walpole, *Gscope: A Visualization Tool for Time-Sensitive
Software*, USENIX FREENIX 2002) is an oscilloscope-like visualization
library that applications embed to watch their own time-dependent
behaviour — network bandwidth, buffer fill levels, congestion windows,
CPU proportions — live, without the stop-the-world distortion of a
debugger.

This package rebuilds the whole system headlessly in Python:

* :mod:`repro.core` — the gscope library itself (signals, scopes,
  polling/playback, aggregation, tuple format, control parameters).
* :mod:`repro.eventloop` — a glib-style main loop with virtual or real
  clocks and a kernel-timer-granularity model.
* :mod:`repro.gui` — a headless widget/canvas layer that renders scope
  displays to numpy framebuffers, ASCII art and PPM files.
* :mod:`repro.net` — the distributed client-server visualization library.
* :mod:`repro.tcpsim` — a TCP/ECN network simulator standing in for the
  paper's physical testbed (mxtraf + nistnet + Linux TCP).
* :mod:`repro.sched`, :mod:`repro.control`, :mod:`repro.media` — the
  demo applications the paper scopes: a proportion-period scheduler, a
  software phase-lock loop and an adaptive media pipeline.
* :mod:`repro.workload` — the CPU load measurement harness behind the
  paper's overhead numbers (Section 4.6).

Quickstart::

    from repro import MainLoop, Scope, Cell, memory_signal

    loop = MainLoop()
    scope = Scope("demo", loop)
    elephants = Cell(8)
    scope.signal_new(memory_signal("elephants", elephants, min=0, max=40))
    scope.set_polling_mode(50)       # sample every 50 ms
    scope.start_polling()
    loop.run_for(1000)               # one second of virtual time
    print(scope.value_of("elephants"))
"""

from repro.core import (
    AcquisitionMode,
    AggregateKind,
    Cell,
    Channel,
    ControlParameter,
    LineMode,
    LowPassFilter,
    ParameterStore,
    Player,
    Recorder,
    SampleBuffer,
    Scope,
    ScopeManager,
    SignalSpec,
    SignalType,
    buffer_signal,
    func_signal,
    memory_signal,
)
from repro.eventloop import (
    KernelTimerModel,
    MainLoop,
    SystemClock,
    VirtualClock,
)

__version__ = "1.0.0"

__all__ = [
    "AcquisitionMode",
    "AggregateKind",
    "Cell",
    "Channel",
    "ControlParameter",
    "KernelTimerModel",
    "LineMode",
    "LowPassFilter",
    "MainLoop",
    "ParameterStore",
    "Player",
    "Recorder",
    "SampleBuffer",
    "Scope",
    "ScopeManager",
    "SignalSpec",
    "SignalType",
    "SystemClock",
    "VirtualClock",
    "buffer_signal",
    "func_signal",
    "memory_signal",
    "__version__",
]
