"""Self-instrumentation plane: the scope observing itself.

The system's own health — shard backpressure, WAL replay, query
fan-out, reconnect storms, event-loop lag — is published as ordinary
columnar samples under the reserved ``__obs.`` namespace, so every
existing layer (capture store, query engine, live subscriptions, the
ASCII GUI) works on internal telemetry with zero new code.

Two modules:

* :mod:`repro.obs.metrics` — counter/gauge/histogram cells, a
  :class:`~repro.obs.metrics.MetricsRegistry` mounting them by name,
  and a :class:`~repro.obs.metrics.MetricsPublisher` event-loop source
  that periodically pushes instrument deltas into any
  ``push_samples``-capable sink.
* :mod:`repro.obs.trace` — span tracing on virtual time with a
  ring-buffer collector and Chrome ``chrome://tracing`` JSON export.

This package imports only the dependency-free cell primitives in
:mod:`repro.core.cells`: instrumented modules import *it* (guarded),
never the other way around, so there are no cycles and the whole plane
can be absent (``REPRO_OBS=0`` or the package never imported) without
changing a single primary-signal byte.  Bridged subsystem statistics
stay live either way — their cells come from ``repro.core.cells``, not
from here.
"""

from repro.obs.metrics import (
    OBS_PREFIX,
    Counter,
    Gauge,
    Histogram,
    MetricsPublisher,
    MetricsRegistry,
    enabled,
    is_reserved,
)
from repro.obs.trace import TraceCollector, install_tracer, span, uninstall_tracer

__all__ = [
    "OBS_PREFIX",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsPublisher",
    "MetricsRegistry",
    "TraceCollector",
    "enabled",
    "install_tracer",
    "is_reserved",
    "span",
    "uninstall_tracer",
]
