"""Span tracing on virtual time with Chrome trace-event export.

A :class:`TraceCollector` records nested spans — ``(name, t0, t1,
depth, args)`` — into a bounded ring buffer, timestamped from whatever
clock it was built with.  On a
:class:`~repro.eventloop.clock.VirtualClock` two identical runs
produce identical spans, so traces are replayable evidence, not
one-shot luck.

Instrumented modules never talk to a collector directly; they call the
module-level :func:`span`:

    with trace.span("deliver", shard=3):
        ...

When no tracer is installed (the default, and always when
``REPRO_OBS=0``) that returns a shared no-op context manager — the
disabled cost is one global read and two no-op calls per span site,
which is why spans sit on per-batch paths (ingest, route, deliver,
derive, fanout), never per-sample ones.

Export is Chrome's trace-event JSON (``chrome://tracing`` /
https://ui.perfetto.dev): complete events (``ph: "X"``) with
microsecond timestamps derived from the millisecond clock.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.metrics import enabled


class Span:
    """One finished span.  Times are clock milliseconds."""

    __slots__ = ("name", "t0", "t1", "depth", "args")

    def __init__(self, name: str, t0: float, t1: float, depth: int, args: dict) -> None:
        self.name = name
        self.t0 = t0
        self.t1 = t1
        self.depth = depth
        self.args = args

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.t0}..{self.t1}, depth={self.depth})"


class _SpanHandle:
    """Context manager closing one open span on a collector."""

    __slots__ = ("_collector",)

    def __init__(self, collector: "TraceCollector") -> None:
        self._collector = collector

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._collector.end()


class _NullSpan:
    """Shared no-op span: what :func:`span` returns with no tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class TraceCollector:
    """Bounded ring buffer of finished spans, nested via an open stack.

    ``capacity`` bounds *finished* spans: when full, the oldest is
    dropped (and counted) — tracing must never grow without bound
    inside a long-lived telemetry process.
    """

    def __init__(self, clock, capacity: int = 1 << 14) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.clock = clock
        self.capacity = int(capacity)
        self._ring: List[Optional[Span]] = [None] * self.capacity
        self._head = 0  # next write slot
        self._size = 0
        self._stack: List[tuple] = []
        self.started = 0
        self.finished = 0
        self.dropped = 0

    # -- recording -----------------------------------------------------
    def begin(self, name: str, **args) -> None:
        self.started += 1
        self._stack.append((name, self.clock.now(), args))

    def end(self) -> None:
        name, t0, args = self._stack.pop()
        span = Span(name, t0, self.clock.now(), len(self._stack), args)
        if self._size == self.capacity:
            self.dropped += 1
        else:
            self._size += 1
        self._ring[self._head] = span
        self._head = (self._head + 1) % self.capacity
        self.finished += 1

    def span(self, name: str, **args) -> _SpanHandle:
        self.begin(name, **args)
        return _SpanHandle(self)

    # -- reading -------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def spans(self) -> List[Span]:
        """Finished spans, oldest first."""
        if self._size < self.capacity:
            return [s for s in self._ring[: self._size]]
        ordered = self._ring[self._head :] + self._ring[: self._head]
        return [s for s in ordered if s is not None]

    def clear(self) -> None:
        self._ring = [None] * self.capacity
        self._head = 0
        self._size = 0
        self._stack.clear()

    # -- export --------------------------------------------------------
    def to_chrome(self) -> List[dict]:
        """Spans as Chrome trace-event dicts (``ph: "X"``, µs times)."""
        events = []
        for span in sorted(self.spans(), key=lambda s: (s.t0, s.depth)):
            event = {
                "name": span.name,
                "ph": "X",
                "ts": span.t0 * 1000.0,
                "dur": (span.t1 - span.t0) * 1000.0,
                "pid": 0,
                "tid": 0,
            }
            if span.args:
                event["args"] = dict(span.args)
            events.append(event)
        return events

    def chrome_json(self) -> str:
        return json.dumps(
            {"traceEvents": self.to_chrome(), "displayTimeUnit": "ms"},
            sort_keys=True,
        )


# ----------------------------------------------------------------------
# Module-level tracer slot
# ----------------------------------------------------------------------
_tracer: Optional[TraceCollector] = None


def install_tracer(collector: TraceCollector) -> bool:
    """Make ``collector`` the process tracer; False when obs is disabled."""
    global _tracer
    if not enabled():
        return False
    _tracer = collector
    return True


def uninstall_tracer() -> None:
    global _tracer
    _tracer = None


def current_tracer() -> Optional[TraceCollector]:
    return _tracer


def span(name: str, **args):
    """Open a span on the installed tracer, or a shared no-op without one."""
    t = _tracer
    if t is None:
        return NULL_SPAN
    return t.span(name, **args)
