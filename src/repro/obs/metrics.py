"""Near-zero-overhead metric cells and the ``__obs.`` publisher.

Design constraints, in order:

1. **Hot-path cost.**  A counter bump is one Python integer add on a
   ``__slots__`` cell — no locks (single-loop model), no dict lookup,
   no clock read.  Instrumented modules hold direct cell references;
   the registry is only consulted at mount time and on publish.
2. **Determinism.**  Everything the publisher emits is keyed on the
   *loop clock* (usually a :class:`~repro.eventloop.clock.VirtualClock`),
   so two identical virtual-time runs publish byte-identical ``__obs.``
   columns.  Instruments measuring real wall time (slow callbacks,
   flush latency) are created with ``wall=True`` and are **never
   published** — they are scrape-only via :meth:`MetricsRegistry.snapshot`
   and ``python -m repro top``.
3. **Absence is free.**  ``REPRO_OBS=0`` turns :func:`enabled` off:
   publishers arm no timer and emit nothing, so the primary-signal
   output is byte-identical to a build where this module was never
   imported.  Bridged stats cells (the ones behind existing public
   accessors like ``totals()``) are always live regardless — they are
   load-bearing API, not optional telemetry.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

# Cell classes live in the dependency-free core (bridged subsystem
# stats must work even when this package is never imported); the
# registry, publisher and enablement policy live here.
from repro.core.cells import DEFAULT_BOUNDS as _DEFAULT_BOUNDS
from repro.core.cells import NULL, Counter, Gauge, Histogram

#: Reserved signal-name prefix for self-instrumentation samples.  User
#: pushes into this namespace are rejected at the manager boundary.
OBS_PREFIX = "__obs."


def enabled() -> bool:
    """True unless the environment opts out with ``REPRO_OBS=0``.

    Read per call (cheap: one dict get) so tests can flip the switch
    without re-importing; hot paths never call this — they are gated by
    object identity (``self._obs is not None``) or cell references
    resolved once at construction time.
    """
    return os.environ.get("REPRO_OBS", "1") not in ("0", "false", "no")


def is_reserved(name: str) -> bool:
    """True when ``name`` lives in the reserved ``__obs.`` namespace."""
    return name.startswith(OBS_PREFIX)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """Name → cell mount table with get-or-create factories.

    Names here carry **no** ``__obs.`` prefix — the publisher prepends
    it on the wire, so one registry can serve several publishers (or a
    plain :meth:`snapshot` scrape) without baking routing into names.
    """

    def __init__(self) -> None:
        self._cells: Dict[str, object] = {}

    # -- mounting ------------------------------------------------------
    def mount(self, name: str, cell) -> None:
        """Mount an existing cell (the bridged-stats path).

        Re-mounting the same cell under the same name is a no-op;
        mounting a *different* cell under a taken name is an error.
        """
        if is_reserved(name):
            raise ValueError(
                f"registry names must not carry the {OBS_PREFIX!r} prefix "
                f"(the publisher adds it): {name!r}"
            )
        existing = self._cells.get(name)
        if existing is cell:
            return
        if existing is not None:
            raise ValueError(f"metric name already mounted: {name!r}")
        self._cells[name] = cell
        if getattr(cell, "name", "") == "":
            cell.name = name

    def unmount(self, name: str) -> None:
        self._cells.pop(name, None)

    def unmount_prefix(self, prefix: str) -> None:
        """Drop every mount under ``prefix`` (object-teardown hook)."""
        for name in [n for n in self._cells if n.startswith(prefix)]:
            del self._cells[name]

    # -- get-or-create factories ---------------------------------------
    def counter(self, name: str, wall: bool = False) -> Counter:
        return self._get_or_create(name, Counter, wall=wall)

    def gauge(
        self,
        name: str,
        fn: Optional[Callable[[], float]] = None,
        wall: bool = False,
    ) -> Gauge:
        cell = self._get_or_create(name, Gauge, fn=fn, wall=wall)
        if fn is not None:
            cell.fn = fn
        return cell

    def histogram(
        self,
        name: str,
        bounds: Tuple[float, ...] = _DEFAULT_BOUNDS,
        wall: bool = False,
    ) -> Histogram:
        return self._get_or_create(name, Histogram, bounds=bounds, wall=wall)

    def _get_or_create(self, name: str, cls, **kwargs):
        cell = self._cells.get(name)
        if cell is not None:
            if not isinstance(cell, cls):
                raise ValueError(
                    f"metric {name!r} already mounted as {type(cell).__name__}, "
                    f"not {cls.__name__}"
                )
            return cell
        cell = cls(name=name, **kwargs)
        self._cells[name] = cell
        return cell

    # -- introspection -------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def get(self, name: str):
        return self._cells.get(name)

    def names(self) -> List[str]:
        return sorted(self._cells)

    def snapshot(self) -> Dict[str, dict]:
        """Full point-in-time reading of every cell (wall ones included).

        This is the scrape interface behind ``repro top``; the publisher
        uses its own delta state instead.
        """
        out: Dict[str, dict] = {}
        for name in sorted(self._cells):
            cell = self._cells[name]
            entry = {"kind": cell.kind, "value": cell.read(), "wall": cell.wall}
            if isinstance(cell, Histogram):
                entry["count"] = cell.count
                entry["sum"] = cell.sum
                entry["bounds"] = [float(b) for b in cell.bounds]
                entry["buckets"] = [int(b) for b in cell.buckets]
            out[name] = entry
        return out


# ----------------------------------------------------------------------
# Publisher
# ----------------------------------------------------------------------
class MetricsPublisher:
    """Event-loop source pushing instrument deltas as ``__obs.`` samples.

    Every ``period_ms`` (on the sink manager's own loop clock) the
    registry is walked in sorted-name order and each *changed*
    deterministic instrument emits one columnar sample into ``sink``:

    * counters (and histogram ``.count``/``.sum``) publish the **delta**
      since the previous tick, suppressed when zero;
    * gauges publish their current value, suppressed when unchanged
      since the last emission (first reading always emits).

    The sink is anything ``push_samples``-capable; when it exposes
    ``push_obs`` (the trusted internal entry that skips the reserved-
    namespace rejection) that is used instead.  Because these are
    ordinary columnar pushes, capture taps, live queries and GUI plots
    see internal telemetry with zero new code in those layers.

    With :func:`enabled` false at construction the publisher is inert:
    no timer source, no samples, ever.
    """

    def __init__(
        self,
        loop,
        sink,
        registry: MetricsRegistry,
        period_ms: float = 100.0,
        prefix: str = OBS_PREFIX,
    ) -> None:
        if period_ms <= 0:
            raise ValueError(f"period_ms must be positive: {period_ms}")
        self.loop = loop
        self.sink = sink
        self.registry = registry
        self.period_ms = float(period_ms)
        self.prefix = prefix
        self.samples_published = 0
        self.ticks = 0
        self._last: Dict[str, float] = {}
        self._push = getattr(sink, "push_obs", None) or sink.push_samples
        self._source_id: Optional[int] = None
        if enabled():
            self._source_id = loop.timeout_add(self.period_ms, self._on_tick)

    @property
    def active(self) -> bool:
        return self._source_id is not None

    def _on_tick(self, lost: int = 0) -> bool:
        self.publish(self.loop.clock.now())
        return True

    def publish(self, now: float) -> int:
        """Walk the registry once, pushing changed readings stamped ``now``.

        Callable directly for a final flush before teardown; returns the
        number of samples pushed.
        """
        self.ticks += 1
        pushed = 0
        last = self._last
        cells = self.registry._cells
        for name in sorted(cells):
            cell = cells[name]
            if cell.wall:
                continue  # wall-time readings would break bit-replay
            kind = cell.kind
            if kind == "counter":
                total = float(cell.value)
                delta = total - last.get(name, 0.0)
                if delta != 0.0:
                    last[name] = total
                    self._push(self.prefix + name, (now,), (delta,))
                    pushed += 1
            elif kind == "gauge":
                value = cell.read()
                if last.get(name) != value:
                    last[name] = value
                    self._push(self.prefix + name, (now,), (value,))
                    pushed += 1
            elif kind == "histogram":
                for suffix, total in ((".count", float(cell.count)), (".sum", cell.sum)):
                    key = name + suffix
                    delta = total - last.get(key, 0.0)
                    if delta != 0.0:
                        last[key] = total
                        self._push(self.prefix + key, (now,), (delta,))
                        pushed += 1
        self.samples_published += pushed
        return pushed

    def close(self) -> None:
        """Disarm the timer; a closed publisher can still ``publish()``."""
        if self._source_id is not None:
            self.loop.remove(self._source_id)
            self._source_id = None
