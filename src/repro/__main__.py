"""Command-line interface: offline operations on recorded runs.

The library embeds in applications; the CLI covers the offline half of
the workflow — inspecting and "printing" tuple recordings made with the
:class:`~repro.core.tuples.Recorder`, interrogating columnar capture
stores, and re-running derived-signal queries over them:

.. code-block:: console

    python -m repro summary capture.tuples
    python -m repro print capture.tuples --ppm capture.ppm
    python -m repro spectrum capture.tuples --signal CWND --period 50
    python -m repro capture info run.capture
    python -m repro query "ewma(queue, 0.9)" --capture run.capture
    python -m repro query "ewma(queue, 0.9)" --server --duration 2000
    python -m repro trace --out trace.json
    python -m repro top --duration 2000
"""

from __future__ import annotations

import argparse
import heapq
import sys
from typing import List, Optional

from repro.core.frequency import spectrum as compute_spectrum
from repro.core.printing import format_summary, print_recording, print_summary
from repro.core.scope import Scope
from repro.core.tuples import Player, format_tuple
from repro.eventloop.loop import MainLoop


def _cmd_summary(args: argparse.Namespace) -> int:
    summaries = print_summary(args.recording, period_ms=args.period)
    if not summaries:
        print("(empty recording)")
        return 1
    print(format_summary(summaries))
    return 0


def _cmd_print(args: argparse.Namespace) -> int:
    art = print_recording(
        args.recording,
        ppm_path=args.ppm,
        period_ms=args.period,
        width=args.width,
        height=args.height,
    )
    print(art)
    if args.ppm:
        print(f"wrote {args.ppm}", file=sys.stderr)
    return 0


def _cmd_spectrum(args: argparse.Namespace) -> int:
    player = Player(args.recording)
    loop = MainLoop()
    scope = Scope("spectrum", loop, period_ms=args.period)
    scope.set_playback_mode(player, period_ms=args.period)
    scope.start_polling()
    loop.run_until(player.start_time_ms + player.duration_ms + 10 * args.period)

    name = args.signal
    if name is None:
        names = scope.signal_names
        if len(names) != 1:
            print(
                f"recording holds signals {names}; pick one with --signal",
                file=sys.stderr,
            )
            return 2
        name = names[0]
    values = scope.channel(name).values()
    if len(values) < 2:
        print(f"signal {name!r} has too few points", file=sys.stderr)
        return 1
    spec = compute_spectrum(values, args.period)
    peak_freq, peak_mag = spec.peak()
    print(f"{name}: {len(values)} points, sample rate {spec.sample_rate_hz:.1f} Hz")
    print(f"peak {peak_freq:.3f} Hz (magnitude {peak_mag:.4g}), "
          f"nyquist {spec.nyquist_hz:.1f} Hz")
    return 0


def _cmd_capture_info(args: argparse.Namespace) -> int:
    from repro.capture import CaptureFormatError, CaptureReader

    try:
        reader = CaptureReader(args.capture, recover_tail=args.recover_tail)
    except CaptureFormatError as exc:
        print(f"invalid capture: {exc}", file=sys.stderr)
        return 1
    with reader:
        counts = reader.signal_sample_counts()
        print(f"capture:   {args.capture}")
        print(f"segments:  {len(reader.segments)}")
        print(f"blocks:    {reader.block_count}")
        print(f"samples:   {reader.sample_count}")
        span = reader.duration_ms
        print(
            f"time span: {reader.start_time_ms:g} .. {reader.end_time_ms:g} ms"
            f"  ({span / 1000.0:g} s)"
        )
        print(f"signals:   {len(counts)}")
        for name in reader.names:
            print(f"  {name}: {counts[name]} samples")
        if reader.skipped_tail:
            print(f"recovered: skipped torn tail segment {reader.skipped_tail}")
    return 0


def _cmd_query_server(args: argparse.Namespace) -> int:
    """Self-contained continuous-query demo over the wire protocol.

    Builds a deterministic in-memory rig — server, synthetic signal
    generator, one subscribing client — compiles the expression
    *server-side* via the QUERY/SUBSCRIBE channel, and prints the
    derived tuples streamed back.  No sockets, no real time: the loop's
    virtual clock drives everything, so two runs with one seed agree.
    """
    import numpy as np

    from repro.core.manager import ScopeManager
    from repro.core.signal import buffer_signal
    from repro.net import ScopeClient, ScopeServer, memory_pair
    from repro.query import QueryError, bind_params, compile_query

    try:
        plan = compile_query(bind_params(args.expression))
    except QueryError as exc:
        print(f"query error: {exc}", file=sys.stderr)
        return 2
    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("live", delay_ms=1e12)
    for name in plan.source_names:
        scope.signal_new(buffer_signal(name))
    server = ScopeServer(loop, manager)
    near, far = memory_pair(loop.clock)
    server.add_client(far)
    client = ScopeClient(near, loop)

    shown = [0]

    def show(name: str, times, values) -> None:
        for t, v in zip(times.tolist(), values.tolist()):
            if args.limit is None or shown[0] < args.limit:
                print(format_tuple(t, v, name))
                shown[0] += 1

    sub = client.subscribe(args.expression, on_batch=show)

    rng = np.random.default_rng(args.seed)
    sources = sorted(plan.source_names)
    phases = {name: float(rng.uniform(0.0, 6.28)) for name in sources}

    def feed(_lost: int) -> bool:
        now = loop.clock.now()
        for name in sources:
            value = float(np.sin(now / 250.0 + phases[name]))
            client.send_samples(name, [value], [now])
        return True

    loop.timeout_add(10.0, feed)
    loop.run_until(args.duration)
    if sub.error is not None:
        print(f"server rejected query: {sub.error}", file=sys.stderr)
        return 2
    for name in sub.output_names:
        times, _ = sub.columns(name)
        print(f"# {name}: {times.shape[0]} samples", file=sys.stderr)
    stats = server.queries.stats()
    print(
        f"# server: {stats['queries_compiled']} compiled, "
        f"{stats['samples_fanned']} samples fanned to "
        f"{stats['subscribers']} subscriber(s)",
        file=sys.stderr,
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.capture import CaptureFormatError, CaptureReader
    from repro.query import QueryError, compile_query, execute

    if args.server:
        return _cmd_query_server(args)
    if args.explain:
        try:
            plan = compile_query(args.expression)
        except QueryError as exc:
            print(f"query error: {exc}", file=sys.stderr)
            return 2
        print(plan.explain())
        return 0
    if args.capture is None:
        print("--capture is required (or use --explain)", file=sys.stderr)
        return 2
    try:
        reader = CaptureReader(args.capture, recover_tail=args.recover_tail)
    except CaptureFormatError as exc:
        print(f"invalid capture: {exc}", file=sys.stderr)
        return 1
    with reader:
        try:
            results = execute(reader, args.expression)
        except QueryError as exc:
            print(f"query error: {exc}", file=sys.stderr)
            return 2
    # One merged tuple stream, ordered by time — each output column is
    # already time-sorted, so a lazy heap merge (stable: ties keep
    # definition order) formats only what is actually printed/exported
    # instead of materialising and sorting every tuple.
    total = sum(times.shape[0] for times, _ in results.values())
    merged = heapq.merge(
        *(
            ((t, name, v) for t, v in zip(times.tolist(), values.tolist()))
            for name, (times, values) in results.items()
        ),
        key=lambda item: item[0],
    )
    export_fh = open(args.export, "w") if args.export else None
    shown = 0
    try:
        if export_fh is not None:
            export_fh.write(f"# query: {args.expression}\n")
        for name, (times, values) in results.items():
            print(f"# {name}: {times.shape[0]} samples", file=sys.stderr)
        for t, name, v in merged:
            line = format_tuple(t, v, name)
            if export_fh is not None:
                export_fh.write(line + "\n")
            if args.limit is None or shown < args.limit:
                print(line)
                shown += 1
            elif export_fh is None:
                break  # nothing left to print, nothing to export
    finally:
        if export_fh is not None:
            export_fh.close()
            print(f"wrote {args.export}", file=sys.stderr)
    if args.limit is not None and shown < total:
        print(f"... ({total - shown} more; raise --limit)", file=sys.stderr)
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Deterministic failover demo: fault a shard, prove exact recovery.

    Runs the same seeded workload twice on virtual time — once clean,
    once with a scripted shard fault — and diffs the final traces byte
    for byte.  Everything is deterministic: same seed, same verdict.
    """
    import random
    import tempfile

    import numpy as np

    from repro.core.signal import buffer_signal
    from repro.net import ShardSupervisor, shard_of

    signals = [f"sig{i}" for i in range(args.signals)]

    def factory(manager, shard_id):
        scope = manager.scope_new(f"scope-{shard_id}", period_ms=50, delay_ms=120.0)
        for name in signals:
            if shard_of(name, args.shards) == shard_id:
                scope.signal_new(buffer_signal(name, filter=0.25))
        scope.set_polling_mode(50)
        scope.start_polling()

    def run(wal_root, inject):
        rng = random.Random(args.seed)
        loop = MainLoop()
        sup = ShardSupervisor(
            loop,
            wal_root,
            shards=args.shards,
            scope_factory=factory,
            heartbeat_ms=args.heartbeat,
            miss_threshold=args.miss_threshold,
        )

        def feed(_lost) -> bool:
            now = loop.clock.now()
            for name in signals:
                n = rng.randrange(0, 4)
                if n:
                    times = sorted(now - rng.uniform(0.0, 240.0) for _ in range(n))
                    sup.push_samples(
                        name, times, [rng.uniform(-100.0, 100.0) for _ in range(n)]
                    )
            return True

        loop.timeout_add(25.0, feed)
        if inject:
            act = sup.crash_shard if args.fault == "crash" else sup.stall_shard
            loop.timeout_add(args.at, lambda lost: (act(args.victim), False)[1])
        loop.run_until(args.duration)
        end = loop.clock.now()
        for host in sup.hosts:
            host.advance(end)
        traces = {}
        for shard_id, host in enumerate(sup.hosts):
            scope = host.manager.scope(f"scope-{shard_id}")
            for name in signals:
                if shard_of(name, args.shards) == shard_id:
                    channel = scope.channel(name)
                    traces[name] = (
                        channel.times_array().copy(),
                        channel.values_array().copy(),
                    )
        totals = sup.totals()
        sup.close()
        return traces, totals

    with tempfile.TemporaryDirectory() as tmp:
        oracle_traces, oracle_totals = run(f"{tmp}/oracle", inject=False)
        fault_traces, fault_totals = run(f"{tmp}/faulted", inject=True)

    print(f"workload:  {args.signals} signals x {args.duration:g} ms, "
          f"seed {args.seed}, {args.shards} shards")
    print(f"fault:     {args.fault} shard {args.victim} at {args.at:g} ms "
          f"(heartbeat {args.heartbeat:g} ms, miss threshold "
          f"{args.miss_threshold})")
    print(f"oracle:    offered {oracle_totals['offered']}, accepted "
          f"{oracle_totals['accepted']}, late-dropped "
          f"{oracle_totals['dropped_late']}")
    print(f"faulted:   restarts {fault_totals['restarts']}, replayed "
          f"{fault_totals['replayed_samples']} samples, lost deliveries "
          f"{fault_totals['lost_deliveries']} (all WAL-covered)")
    identical = all(
        np.array_equal(oracle_traces[name][0], fault_traces[name][0])
        and np.array_equal(oracle_traces[name][1], fault_traces[name][1])
        for name in signals
    ) and all(
        oracle_totals[key] == fault_totals[key]
        for key in ("offered", "accepted", "dropped_late")
    )
    print(f"recovery:  traces {'byte-identical to' if identical else 'DIVERGED from'}"
          f" the unfailed run")
    return 0 if identical else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Deterministic traced demo rig → Chrome ``chrome://tracing`` JSON.

    Runs the full wire pipeline — client, server, server-side continuous
    query, multiplexed fan-out — on virtual time with the span tracer
    installed, so the export shows the real nesting
    (ingest → deliver → derive → fanout) with reproducible timestamps.
    """
    import numpy as np

    from repro.core.manager import ScopeManager
    from repro.core.signal import buffer_signal
    from repro.net import ScopeClient, ScopeServer, memory_pair
    from repro.obs import TraceCollector, install_tracer, uninstall_tracer

    loop = MainLoop()
    collector = TraceCollector(loop.clock, capacity=args.capacity)
    if not install_tracer(collector):
        print("tracing is disabled (REPRO_OBS=0)", file=sys.stderr)
        return 1
    try:
        manager = ScopeManager(loop)
        scope = manager.scope_new("trace-demo", delay_ms=1e12)
        scope.signal_new(buffer_signal("pkts"))
        server = ScopeServer(loop, manager)
        near, far = memory_pair(loop.clock)
        server.add_client(far)
        client = ScopeClient(near, loop)
        client.subscribe("pkt_rate = rate(pkts)")

        rng = np.random.default_rng(args.seed)

        def feed(_lost: int) -> bool:
            now = loop.clock.now()
            client.send_samples("pkts", [float(rng.poisson(8.0))], [now])
            return True

        loop.timeout_add(10.0, feed)
        loop.run_until(args.duration)
    finally:
        uninstall_tracer()
    payload = collector.chrome_json()
    spans = len(collector.spans())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload)
        print(
            f"wrote {args.out} ({spans} spans, {collector.dropped} dropped); "
            "load it in chrome://tracing or https://ui.perfetto.dev",
            file=sys.stderr,
        )
    else:
        print(payload)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Deterministic self-scoped run → text view of every instrument.

    Builds a small virtual-time rig (manager, instrumented event loop,
    metrics publisher feeding telemetry back into the same manager) and
    prints the registry snapshot after ``--duration`` virtual ms — the
    live-metrics table the registry serves at any instant.
    """
    import numpy as np

    from repro.core.manager import ScopeManager
    from repro.core.signal import buffer_signal
    from repro.obs import OBS_PREFIX, MetricsPublisher, MetricsRegistry

    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("top-demo", delay_ms=1e12)
    scope.signal_new(buffer_signal("pkts"))
    registry = MetricsRegistry()
    loop.observe(registry)
    publisher = MetricsPublisher(loop, manager, registry, period_ms=args.period)

    rng = np.random.default_rng(args.seed)

    def feed(_lost: int) -> bool:
        now = loop.clock.now()
        manager.push_samples("pkts", [now], [float(rng.poisson(8.0))])
        return True

    loop.timeout_add(10.0, feed)
    loop.run_until(args.duration)

    snap = registry.snapshot()
    if not snap:
        print("(no instruments mounted)")
        return 1
    width = max(len(name) for name in snap)
    print(f"{'instrument'.ljust(width)}  {'kind'.ljust(9)}  value")
    for name, entry in snap.items():
        kind = entry["kind"]
        if kind == "histogram":
            mean = entry["sum"] / entry["count"] if entry["count"] else 0.0
            value = f"n={entry['count']} mean={mean:.3f}"
        else:
            value = f"{entry['value']:g}"
        wall = "  (wall; never published)" if entry["wall"] else ""
        print(f"{name.ljust(width)}  {kind.ljust(9)}  {value}{wall}")
    print(
        f"# publisher: {publisher.samples_published} samples in "
        f"{publisher.ticks} ticks under {OBS_PREFIX}*"
        + ("" if publisher.active else " (inert: REPRO_OBS=0)"),
        file=sys.stderr,
    )
    return 0


class _Parser(argparse.ArgumentParser):
    """Argument errors print the full help (not just usage), exit 2.

    An unknown or missing subcommand should show a user everything the
    tool can do — subparsers inherit this class, so nested errors print
    their own full help the same way.
    """

    def error(self, message: str) -> None:  # noqa: D401 - argparse hook
        self.print_help(sys.stderr)
        print(f"\nerror: {message}", file=sys.stderr)
        raise SystemExit(2)


def build_parser() -> argparse.ArgumentParser:
    parser = _Parser(
        prog="repro",
        description="Offline tools for gscope tuple recordings.",
    )
    sub = parser.add_subparsers(dest="command")

    p_summary = sub.add_parser("summary", help="per-signal statistics")
    p_summary.add_argument("recording", help="tuple file path")
    p_summary.add_argument("--period", type=float, default=50.0,
                           help="replay polling period in ms (default 50)")
    p_summary.set_defaults(fn=_cmd_summary)

    p_print = sub.add_parser("print", help="render a recording (Future Work, built)")
    p_print.add_argument("recording")
    p_print.add_argument("--period", type=float, default=50.0)
    p_print.add_argument("--ppm", default=None, help="also write a PPM image")
    p_print.add_argument("--width", type=int, default=512)
    p_print.add_argument("--height", type=int, default=160)
    p_print.set_defaults(fn=_cmd_print)

    p_spec = sub.add_parser("spectrum", help="frequency-domain view of a signal")
    p_spec.add_argument("recording")
    p_spec.add_argument("--signal", default=None, help="signal name (if several)")
    p_spec.add_argument("--period", type=float, default=50.0)
    p_spec.set_defaults(fn=_cmd_spectrum)

    p_capture = sub.add_parser("capture", help="columnar capture-store tools")
    cap_sub = p_capture.add_subparsers(dest="capture_command", required=True)
    p_info = cap_sub.add_parser("info", help="segments, signals, time span")
    p_info.add_argument("capture", help="capture directory")
    p_info.add_argument("--recover-tail", action="store_true",
                        help="skip a torn final segment (killed writer)")
    p_info.set_defaults(fn=_cmd_capture_info)

    p_query = sub.add_parser(
        "query", help="run a derived-signal query over a capture store"
    )
    p_query.add_argument("expression", help='e.g. "load = ewma(cpu, 0.9)"')
    p_query.add_argument("--capture", default=None,
                         help="capture directory (optional with --explain)")
    p_query.add_argument("--explain", action="store_true",
                         help="print the compiled (fused) plan and exit")
    p_query.add_argument("--limit", type=int, default=None,
                         help="print at most N derived tuples")
    p_query.add_argument("--export", default=None,
                         help="also write the derived tuples as tuple text")
    p_query.add_argument("--server", action="store_true",
                         help="continuous-query demo: compile server-side "
                              "over the wire and stream derived tuples")
    p_query.add_argument("--duration", type=float, default=2000.0,
                         help="virtual run length in ms for --server")
    p_query.add_argument("--seed", type=int, default=0,
                         help="generator seed for --server (deterministic)")
    p_query.add_argument("--recover-tail", action="store_true",
                         help="skip a torn final segment (killed writer)")
    p_query.set_defaults(fn=_cmd_query)

    p_faults = sub.add_parser(
        "faults",
        help="deterministic failover demo: fault a shard, prove exact recovery",
    )
    p_faults.add_argument("--fault", choices=("crash", "stall"), default="crash")
    p_faults.add_argument("--seed", type=int, default=0)
    p_faults.add_argument("--shards", type=int, default=2)
    p_faults.add_argument("--signals", type=int, default=4)
    p_faults.add_argument("--victim", type=int, default=0, help="shard id to fault")
    p_faults.add_argument("--at", type=float, default=900.0,
                          help="fault injection instant (virtual ms)")
    p_faults.add_argument("--duration", type=float, default=3000.0,
                          help="run length (virtual ms)")
    p_faults.add_argument("--heartbeat", type=float, default=50.0)
    p_faults.add_argument("--miss-threshold", type=int, default=3)
    p_faults.set_defaults(fn=_cmd_faults)

    p_trace = sub.add_parser(
        "trace",
        help="traced demo run: export nested spans as Chrome tracing JSON",
    )
    p_trace.add_argument("--out", default=None,
                         help="write the JSON here (default: stdout)")
    p_trace.add_argument("--duration", type=float, default=1000.0,
                         help="virtual run length in ms (default 1000)")
    p_trace.add_argument("--seed", type=int, default=0,
                         help="workload seed (deterministic)")
    p_trace.add_argument("--capacity", type=int, default=1 << 14,
                         help="span ring capacity (oldest drop beyond it)")
    p_trace.set_defaults(fn=_cmd_trace)

    p_top = sub.add_parser(
        "top",
        help="self-scoped demo run: print the live internal-metrics table",
    )
    p_top.add_argument("--duration", type=float, default=2000.0,
                       help="virtual run length in ms (default 2000)")
    p_top.add_argument("--period", type=float, default=100.0,
                       help="publisher period in ms (default 100)")
    p_top.add_argument("--seed", type=int, default=0,
                       help="workload seed (deterministic)")
    p_top.set_defaults(fn=_cmd_top)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help(sys.stderr)
        return 2
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
