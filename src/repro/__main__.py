"""Command-line interface: offline operations on recorded tuple files.

The library embeds in applications; the CLI covers the offline half of
the workflow — inspecting and "printing" recordings made with the
:class:`~repro.core.tuples.Recorder`:

.. code-block:: console

    python -m repro summary capture.tuples
    python -m repro print capture.tuples --ppm capture.ppm
    python -m repro spectrum capture.tuples --signal CWND --period 50
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.frequency import spectrum as compute_spectrum
from repro.core.printing import format_summary, print_recording, print_summary
from repro.core.scope import Scope
from repro.core.tuples import Player
from repro.eventloop.loop import MainLoop


def _cmd_summary(args: argparse.Namespace) -> int:
    summaries = print_summary(args.recording, period_ms=args.period)
    if not summaries:
        print("(empty recording)")
        return 1
    print(format_summary(summaries))
    return 0


def _cmd_print(args: argparse.Namespace) -> int:
    art = print_recording(
        args.recording,
        ppm_path=args.ppm,
        period_ms=args.period,
        width=args.width,
        height=args.height,
    )
    print(art)
    if args.ppm:
        print(f"wrote {args.ppm}", file=sys.stderr)
    return 0


def _cmd_spectrum(args: argparse.Namespace) -> int:
    player = Player(args.recording)
    loop = MainLoop()
    scope = Scope("spectrum", loop, period_ms=args.period)
    scope.set_playback_mode(player, period_ms=args.period)
    scope.start_polling()
    loop.run_until(player.start_time_ms + player.duration_ms + 10 * args.period)

    name = args.signal
    if name is None:
        names = scope.signal_names
        if len(names) != 1:
            print(
                f"recording holds signals {names}; pick one with --signal",
                file=sys.stderr,
            )
            return 2
        name = names[0]
    values = scope.channel(name).values()
    if len(values) < 2:
        print(f"signal {name!r} has too few points", file=sys.stderr)
        return 1
    spec = compute_spectrum(values, args.period)
    peak_freq, peak_mag = spec.peak()
    print(f"{name}: {len(values)} points, sample rate {spec.sample_rate_hz:.1f} Hz")
    print(f"peak {peak_freq:.3f} Hz (magnitude {peak_mag:.4g}), "
          f"nyquist {spec.nyquist_hz:.1f} Hz")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Offline tools for gscope tuple recordings.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="per-signal statistics")
    p_summary.add_argument("recording", help="tuple file path")
    p_summary.add_argument("--period", type=float, default=50.0,
                           help="replay polling period in ms (default 50)")
    p_summary.set_defaults(fn=_cmd_summary)

    p_print = sub.add_parser("print", help="render a recording (Future Work, built)")
    p_print.add_argument("recording")
    p_print.add_argument("--period", type=float, default=50.0)
    p_print.add_argument("--ppm", default=None, help="also write a PPM image")
    p_print.add_argument("--width", type=int, default=512)
    p_print.add_argument("--height", type=int, default=160)
    p_print.set_defaults(fn=_cmd_print)

    p_spec = sub.add_parser("spectrum", help="frequency-domain view of a signal")
    p_spec.add_argument("recording")
    p_spec.add_argument("--signal", default=None, help="signal name (if several)")
    p_spec.add_argument("--period", type=float, default=50.0)
    p_spec.set_defaults(fn=_cmd_spectrum)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
