"""CPU load generation and overhead measurement (Section 4.6).

The measurement replicates the paper's method exactly, modulo substrate:

1. run the load loop alone on a real-clock main loop for ``T`` ms and
   count iterations (the "idle system" baseline),
2. run it again with a polling scope (and N signals) attached,
3. overhead = 1 − (loaded iterations / idle iterations).

The load loop is an idle source: the main loop dispatches it whenever no
timer is ready, which is the cooperative equivalent of the paper's
low-priority process.  Each dispatch performs a fixed *chunk* of integer
work so one callback costs microseconds and the polling timers stay
punctual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.eventloop.clock import SystemClock
from repro.eventloop.loop import MainLoop


class LoadGenerator:
    """The tight-loop CPU load program."""

    def __init__(self, chunk_iterations: int = 2000) -> None:
        if chunk_iterations <= 0:
            raise ValueError(f"chunk must be positive: {chunk_iterations}")
        self.chunk_iterations = int(chunk_iterations)
        self.iterations = 0
        self._sink = 0  # defeats any hypothetical constant folding

    def run_chunk(self) -> bool:
        """One idle-source dispatch: a fixed slab of integer work."""
        acc = self._sink
        for i in range(self.chunk_iterations):
            acc = (acc + i) & 0xFFFFFFFF
        self._sink = acc
        self.iterations += self.chunk_iterations
        return True  # stay installed

    def reset(self) -> None:
        self.iterations = 0


@dataclass
class OverheadResult:
    """Outcome of one overhead comparison."""

    idle_iterations: int
    loaded_iterations: int
    duration_ms: float

    @property
    def overhead_fraction(self) -> float:
        """1 − loaded/idle; the paper reports this as a percentage."""
        if self.idle_iterations <= 0:
            raise ValueError("baseline measured zero iterations")
        return 1.0 - self.loaded_iterations / self.idle_iterations

    @property
    def overhead_percent(self) -> float:
        return 100.0 * self.overhead_fraction


def _run_load(
    duration_ms: float,
    setup: Optional[Callable[[MainLoop], None]],
    chunk_iterations: int,
) -> int:
    """Run the load loop for ``duration_ms`` of *process CPU time*.

    The measurement window is CPU time rather than wall time so that
    preemption by unrelated processes (the dominant noise source on a
    shared machine) cannot masquerade as scope overhead; the paper's
    low-priority-loop method has the same intent.  The cyclic garbage
    collector is paused for the window — its pauses are an order of
    magnitude larger than the signal being measured.  Scope timers
    still run on the real-time clock, as they would in an application.
    """
    import gc
    import time

    loop = MainLoop(clock=SystemClock())
    load = LoadGenerator(chunk_iterations)
    loop.idle_add(load.run_chunk)
    if setup is not None:
        setup(loop)
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        deadline = time.process_time() + duration_ms / 1000.0
        while time.process_time() < deadline:
            loop.iteration(may_block=False)
    finally:
        if gc_was_enabled:
            gc.enable()
    return load.iterations


def measure_overhead(
    setup: Callable[[MainLoop], None],
    duration_ms: float = 1000.0,
    chunk_iterations: int = 2000,
    repeats: int = 3,
) -> OverheadResult:
    """Compare the load loop with and without the scope machinery.

    ``setup`` receives the measurement loop and attaches whatever is
    being costed (a polling scope, N signals...).  Idle and loaded runs
    are *interleaved* and the median idle/loaded pair is reported: on a
    shared machine, back-to-back pairing cancels slow drifts (thermal,
    other tenants) that would otherwise swamp a sub-percent signal —
    the same care the paper's measurement needs.
    """
    if duration_ms <= 0:
        raise ValueError(f"duration must be positive: {duration_ms}")
    if repeats <= 0:
        raise ValueError(f"repeats must be positive: {repeats}")
    pairs = []
    for _ in range(repeats):
        idle = _run_load(duration_ms, None, chunk_iterations)
        loaded = _run_load(duration_ms, setup, chunk_iterations)
        pairs.append((idle, loaded))
    pairs.sort(key=lambda p: p[1] / p[0])  # by overhead ratio
    idle, loaded = pairs[len(pairs) // 2]  # median pair
    return OverheadResult(
        idle_iterations=idle, loaded_iterations=loaded, duration_ms=duration_ms
    )
