"""The CPU load measurement harness behind Section 4.6.

"To measure overhead, we use a CPU load program that runs in a tight
loop at a low priority and measures the number of loop iterations it can
perform at any given period.  The ratio of the iteration count when
running gscope versus on an idle system gives an estimate of the gscope
overhead."

:mod:`repro.workload.loadgen` provides that program.  In the
single-threaded event-driven world the "low priority tight loop" is an
idle source on the main loop: it burns CPU whenever no timer is due, so
any cycles the scope's polling machinery consumes show up directly as
lost loop iterations.
"""

from repro.workload.loadgen import LoadGenerator, OverheadResult, measure_overhead

__all__ = ["LoadGenerator", "OverheadResult", "measure_overhead"]
