"""The scope — gscope's ``GtkScope`` minus the pixels.

This class owns everything Figure 1 shows except the actual drawing
(done by :mod:`repro.gui.scope_widget`): the registered signals, the
acquisition mode (polling or playback, Section 3.1), the sampling period,
the buffered-signal display delay, the zoom and bias settings, recording,
and the lost-timeout accounting of Section 4.5.

Every GUI action has a programmatic equivalent here, matching the paper's
"programmatic interface for every action that can be performed from the
GUI".  The scope drives itself from a
:class:`~repro.eventloop.loop.MainLoop` timeout source, exactly as the C
library drives itself from a GTK timeout.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.buffer import SampleBuffer
from repro.core.channel import Channel, TracePoint
from repro.core.pollhub import PollHub, PollSubscription
from repro.core.signal import SignalSpec, SignalType
from repro.core.tuples import Player, Recorder
from repro.eventloop.loop import MainLoop


class AcquisitionMode(enum.Enum):
    """Where samples come from (Section 3.1)."""

    POLLING = "polling"
    PLAYBACK = "playback"


class ScopeError(RuntimeError):
    """Raised for invalid scope operations (duplicate signals, etc.)."""


class Scope:
    """An oscilloscope for software signals.

    Parameters
    ----------
    name:
        Scope title (window caption in the GUI).
    loop:
        The main loop that drives polling.  One loop can drive many
        scopes (the paper supports "multiple scopes").
    width, height:
        Canvas dimensions in pixels.  At default zoom the scope displays
        one sample per pixel column, so ``width`` bounds the visible
        history to ``width * period_ms`` milliseconds.
    period_ms:
        Sampling (polling) period; the paper's default examples use 50 ms.
    delay_ms:
        Display delay for buffered signals (Section 3.1).
    trace_capacity:
        Retained points per channel; defaults to 8x the width so zooming
        out has history to show.
    """

    DEFAULT_PERIOD_MS = 50.0

    def __init__(
        self,
        name: str,
        loop: MainLoop,
        width: int = 512,
        height: int = 256,
        period_ms: float = DEFAULT_PERIOD_MS,
        delay_ms: float = 0.0,
        trace_capacity: Optional[int] = None,
    ) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"scope dimensions must be positive: {width}x{height}")
        if period_ms <= 0:
            raise ValueError(f"polling period must be positive: {period_ms}")
        self.name = name
        self.loop = loop
        self.width = int(width)
        self.height = int(height)
        self.period_ms = float(period_ms)
        self.buffer = SampleBuffer(delay_ms=delay_ms)
        self.trace_capacity = trace_capacity or max(8 * self.width, 1024)

        self.mode = AcquisitionMode.POLLING
        self.zoom = 1.0  # vertical scale factor
        self.bias = 0.0  # vertical translation, in signal-percent units
        self._channels: Dict[str, Channel] = {}
        self._taps: Tuple = ()
        self._poll_sub: Optional[PollSubscription] = None
        self.player: Optional[Player] = None
        self.recorder: Optional[Recorder] = None
        self._playback_time: float = 0.0

        # Statistics (Section 4.5 lost-timeout accounting included).
        self.polls = 0
        self.lost_timeouts = 0
        self.column = 0  # current x paint position, advanced per poll

    # ------------------------------------------------------------------
    # Signal management (gtk_scope_signal_new / dynamic add-remove)
    # ------------------------------------------------------------------
    def signal_new(self, spec: SignalSpec) -> Channel:
        """Register a signal; the library creates its channel object."""
        if spec.name in self._channels:
            raise ScopeError(f"scope {self.name!r}: duplicate signal {spec.name!r}")
        channel = Channel(spec, capacity=self.trace_capacity)
        self._channels[spec.name] = channel
        return channel

    def signal_remove(self, name: str) -> None:
        """Dynamically remove a signal (a headline feature, Section 1)."""
        if name not in self._channels:
            raise ScopeError(f"scope {self.name!r}: unknown signal {name!r}")
        del self._channels[name]

    def channel(self, name: str) -> Channel:
        try:
            return self._channels[name]
        except KeyError:
            raise ScopeError(f"scope {self.name!r}: unknown signal {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._channels

    @property
    def channels(self) -> List[Channel]:
        """All channels in registration order."""
        return list(self._channels.values())

    @property
    def signal_names(self) -> List[str]:
        return list(self._channels)

    def value_of(self, name: str) -> Optional[float]:
        """The live value readout (the ``Value`` button in Figure 1)."""
        return self.channel(name).last_value

    def event(self, name: str, value: float = 1.0) -> None:
        """Report an application event on an aggregated signal (§4.2)."""
        self.channel(name).event(value)

    # ------------------------------------------------------------------
    # Display controls (zoom / bias / period / delay widgets)
    # ------------------------------------------------------------------
    def set_zoom(self, zoom: float) -> None:
        """Vertical scaling widget; 1.0 maps [min, max] onto full height."""
        if zoom <= 0:
            raise ValueError(f"zoom must be positive: {zoom}")
        self.zoom = float(zoom)

    def set_bias(self, bias: float) -> None:
        """Vertical translation widget, in percent-of-range units."""
        self.bias = float(bias)

    def set_delay(self, delay_ms: float) -> None:
        """Display delay for buffered signals (the delay widget)."""
        self.buffer.set_delay(delay_ms)

    def set_period(self, period_ms: float) -> None:
        """Sampling-period widget; restarts polling if it is running."""
        if period_ms <= 0:
            raise ValueError(f"polling period must be positive: {period_ms}")
        was_polling = self.polling
        if was_polling:
            self.stop_polling()
        self.period_ms = float(period_ms)
        if was_polling:
            self.start_polling()

    @property
    def visible_seconds(self) -> float:
        """Span of the x-axis ruler at default zoom (width px * period)."""
        return self.width * self.period_ms / 1000.0

    # ------------------------------------------------------------------
    # Acquisition: polling mode
    # ------------------------------------------------------------------
    def set_polling_mode(self, period_ms: Optional[float] = None) -> None:
        """Switch to polling acquisition (``gtk_scope_set_polling_mode``)."""
        self.stop_polling()
        if period_ms is not None:
            self.period_ms = float(period_ms)
            if self.period_ms <= 0:
                raise ValueError(f"polling period must be positive: {period_ms}")
        self.mode = AcquisitionMode.POLLING
        self.player = None

    def start_polling(self) -> None:
        """Attach the polling timeout (``gtk_scope_start_polling``).

        Polling is coalesced through the loop's :class:`PollHub`: scopes
        started at the same instant with the same period share one timer
        source, so a manager full of scopes costs the scheduler one timer
        per distinct period instead of one per scope.
        """
        if self._poll_sub is not None:
            return
        self._poll_sub = PollHub.of(self.loop).subscribe(self.period_ms, self._on_poll)

    def stop_polling(self) -> None:
        """Detach the polling timeout (pauses the display)."""
        if self._poll_sub is not None:
            PollHub.of(self.loop).unsubscribe(self._poll_sub)
            self._poll_sub = None

    @property
    def polling(self) -> bool:
        return self._poll_sub is not None

    # ------------------------------------------------------------------
    # Acquisition: playback mode
    # ------------------------------------------------------------------
    def set_playback_mode(self, player: Player, period_ms: Optional[float] = None) -> None:
        """Switch to playback from a recorded tuple file (Section 3.1).

        Channels for names in the recording that are not yet registered
        are created automatically as buffered signals, so any recorded
        file is viewable without prior setup.
        """
        self.stop_polling()
        self.mode = AcquisitionMode.PLAYBACK
        self.player = player
        self._playback_time = player.start_time_ms
        if period_ms is not None:
            self.period_ms = float(period_ms)
        for name in player.names:
            if name not in self._channels:
                self.signal_new(SignalSpec(name=name, type=SignalType.BUFFER))
        for channel in self._channels.values():
            channel.clear()

    # ------------------------------------------------------------------
    # Buffered signal input (push interface, Sections 3.1 / 4.4)
    # ------------------------------------------------------------------
    def push_sample(
        self, name: str, time_ms: float, value: float, now_ms: Optional[float] = None
    ) -> bool:
        """Enqueue a timestamped sample for a BUFFER signal.

        Returns False when the sample was dropped as late (it arrived
        after its display slot had passed; Section 4.4).  ``now_ms``
        lets a caller that already read the clock (the manager's tapped
        fan-out) pin the late-drop decision to that same instant.
        """
        channel = self.channel(name)
        if not channel.buffered:
            raise ScopeError(f"signal {name!r} is not a BUFFER signal")
        now = self.loop.clock.now() if now_ms is None else now_ms
        if self._taps:
            for tap in self._taps:
                tap(name, (time_ms,), (value,), now)
        return self.buffer.push(name, time_ms, value, now)

    def push_samples(
        self,
        name: str,
        times: Union[Sequence[float], np.ndarray],
        values: Union[Sequence[float], np.ndarray],
        now_ms: Optional[float] = None,
    ) -> int:
        """Bulk-enqueue timestamped samples for a BUFFER signal.

        Columnar fast path: one call buffers N samples with the same
        late-drop semantics as N :meth:`push_sample` calls.  Returns how
        many samples were accepted (the rest arrived past their display
        slot and were dropped, Section 4.4).  ``now_ms`` pins the
        late-drop comparison to a clock instant the caller already read.
        """
        channel = self.channel(name)
        if not channel.buffered:
            raise ScopeError(f"signal {name!r} is not a BUFFER signal")
        now = self.loop.clock.now() if now_ms is None else now_ms
        if self._taps:
            for tap in self._taps:
                tap(name, times, values, now)
        return self.buffer.push_many(name, times, values, now)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_to(self, recorder: Optional[Recorder]) -> None:
        """Start (or with None, stop) recording displayed samples."""
        self.recorder = recorder

    def add_tap(self, tap) -> None:
        """Attach a push tap ``tap(name, times, values, now_ms)``.

        Scope-level counterpart of
        :meth:`~repro.core.manager.ScopeManager.add_tap`, for capturing
        a single scope's offered stream when pushes bypass a manager.
        Taps see samples before the late-drop decision.  Copy-on-write
        like the manager's tap set: a tap detaching mid-push never
        perturbs its siblings' delivery.
        """
        self._taps = (*self._taps, tap)

    def remove_tap(self, tap) -> None:
        taps = list(self._taps)
        taps.remove(tap)
        self._taps = tuple(taps)

    # ------------------------------------------------------------------
    # The poll tick
    # ------------------------------------------------------------------
    def _on_poll(self, lost: int = 0) -> bool:
        """One polling period: sample, drain buffers, advance the display.

        ``lost`` counts timeouts the kernel never delivered (Section 4.5);
        the scope "keeps track of lost timeouts and advances the scope
        refresh appropriately" — here by advancing the paint column past
        the missing periods so the time axis stays truthful.
        """
        now = self.loop.clock.now()
        self.polls += 1
        self.lost_timeouts += lost
        self.column += 1 + lost

        painted: List[tuple[str, TracePoint]] = []
        # Buffer drains arrive as columnar batches: (name, times, raws).
        batches: List[tuple[str, np.ndarray, np.ndarray]] = []
        if self.mode is AcquisitionMode.POLLING:
            for channel in self._channels.values():
                if channel.buffered:
                    continue
                point = channel.poll(now, self.period_ms)
                if point is not None:
                    painted.append((channel.name, point))
            for name, (times, values) in self.buffer.pop_due_grouped(now).items():
                channel = self._channels.get(name)
                if channel is None:
                    continue  # signal was removed while data was in flight
                t, raws, _filtered = channel.accept_samples(times, values)
                batches.append((name, t, raws))
        else:
            assert self.player is not None
            self._playback_time += (1 + lost) * self.period_ms
            for tup in self.player.advance_to(self._playback_time):
                name = tup.name or self.player.default_name
                if name not in self._channels:
                    self.signal_new(SignalSpec(name=name, type=SignalType.BUFFER))
                painted.append(
                    (name, self._channels[name].accept_sample(tup.time_ms, tup.value))
                )

        if self.recorder is not None and (painted or batches):
            # Raw (unfiltered) data is recorded so replay can re-filter.
            rec_times: List[float] = [p.time_ms for _, p in painted]
            rec_raws: List[float] = [p.raw for _, p in painted]
            rec_names: List[str] = [name for name, _ in painted]
            for name, t, raws in batches:
                rec_times.extend(t.tolist())
                rec_raws.extend(raws.tolist())
                rec_names.extend([name] * t.shape[0])
            order = np.argsort(np.asarray(rec_times), kind="stable")
            self.recorder.record_many(
                [rec_times[i] for i in order],
                [rec_raws[i] for i in order],
                [rec_names[i] for i in order],
            )
        return True

    def tick(self, lost: int = 0) -> None:
        """Manually run one poll (for tests and synchronous harnesses)."""
        self._on_poll(lost)

    # ------------------------------------------------------------------
    # Snapshot / restore (process shard supervision)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Capture the scope's data-plane state as plain picklable data.

        Configuration (signals, period, mode, recording) is *not*
        captured: a restore happens onto a scope freshly built by the
        same deterministic factory, which reproduces it.  What is
        captured is everything the stream of pushes and polls has
        accumulated: the sample buffer, every channel's trace/filter/
        aggregator/hold state, and the poll/column counters.  Playback
        mode has a file position instead of a buffer and is not
        snapshot-supported.
        """
        if self.mode is not AcquisitionMode.POLLING:
            raise ScopeError(
                f"scope {self.name!r}: only polling-mode scopes are snapshotable"
            )
        return {
            "buffer": self.buffer.state_dict(),
            "channels": {
                name: ch.state_dict() for name, ch in self._channels.items()
            },
            "polls": self.polls,
            "lost_timeouts": self.lost_timeouts,
            "column": self.column,
            "zoom": self.zoom,
            "bias": self.bias,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` capture onto this (fresh) scope.

        The scope must hold exactly the snapshot's signals — the restore
        factory registers them before loading.
        """
        snap_channels = state["channels"]
        if set(snap_channels) != set(self._channels):
            raise ScopeError(
                f"scope {self.name!r}: snapshot signals {sorted(snap_channels)} "
                f"do not match registered signals {sorted(self._channels)}"
            )
        self.buffer.load_state(state["buffer"])
        for name, ch_state in snap_channels.items():
            self._channels[name].load_state(ch_state)
        self.polls = int(state["polls"])
        self.lost_timeouts = int(state["lost_timeouts"])
        self.column = int(state["column"])
        self.zoom = float(state["zoom"])
        self.bias = float(state["bias"])
