"""Printing of recorded data — another Future Work item, built.

Section 6: "Gscope does not currently support printing of recorded
data."  Here, printing means turning a recorded tuple file into a
finished, annotated image offline — no running application, no live
scope.  :func:`print_recording` replays the file through a scope in
playback mode, renders the widget, and writes PPM and/or ASCII output;
:func:`print_summary` produces the per-signal statistics block that a
printed capture would carry in its margin.
"""

from __future__ import annotations

import io
import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.core.scope import Scope
from repro.core.tuples import Player
from repro.eventloop.loop import MainLoop
from repro.gui.render import ascii_render, write_ppm
from repro.gui.scope_widget import ScopeWidget


@dataclass(frozen=True)
class SignalSummary:
    """Statistics block for one recorded signal."""

    name: str
    points: int
    minimum: float
    maximum: float
    mean: float
    first_time_ms: float
    last_time_ms: float

    @property
    def duration_ms(self) -> float:
        return self.last_time_ms - self.first_time_ms


def _replay(source: Union[str, io.TextIOBase], period_ms: float,
            width: int, height: int) -> Scope:
    if isinstance(source, str) and "\n" not in source:
        player = Player(source)  # a file path
    elif isinstance(source, str):
        player = Player(io.StringIO(source))  # inline recorded text
    else:
        player = Player(source)
    loop = MainLoop()
    scope = Scope("print", loop, width=width, height=height)
    scope.set_playback_mode(player, period_ms=period_ms)
    scope.start_polling()
    loop.run_until(player.start_time_ms + player.duration_ms + 10 * period_ms)
    return scope


def print_summary(source: Union[str, io.TextIOBase],
                  period_ms: float = 50.0) -> Dict[str, SignalSummary]:
    """Compute the per-signal statistics block of a recording."""
    scope = _replay(source, period_ms, width=16, height=16)
    summaries: Dict[str, SignalSummary] = {}
    for channel in scope.channels:
        values = channel.raw_values()
        times = channel.times()
        if not values:
            continue
        summaries[channel.name] = SignalSummary(
            name=channel.name,
            points=len(values),
            minimum=min(values),
            maximum=max(values),
            mean=statistics.mean(values),
            first_time_ms=times[0],
            last_time_ms=times[-1],
        )
    return summaries


def print_recording(
    source: Union[str, io.TextIOBase],
    ppm_path: Optional[str] = None,
    period_ms: float = 50.0,
    width: int = 512,
    height: int = 160,
    ascii_width: int = 100,
    ascii_height: int = 30,
) -> str:
    """Render a recorded tuple file to an image and/or ASCII art.

    Returns the ASCII rendering; writes a PPM when ``ppm_path`` is
    given.  The display shows the tail of the recording at one pixel
    per ``period_ms``, exactly as a live scope would have shown it.
    """
    scope = _replay(source, period_ms, width, height)
    widget = ScopeWidget(scope)
    canvas = widget.render()
    if ppm_path is not None:
        write_ppm(canvas, ppm_path)
    return ascii_render(canvas, max_width=ascii_width, max_height=ascii_height)


def format_summary(summaries: Dict[str, SignalSummary]) -> str:
    """Human-readable margin block for a printed capture."""
    lines = []
    for name in sorted(summaries):
        s = summaries[name]
        lines.append(
            f"{s.name}: {s.points} points over {s.duration_ms:.0f} ms, "
            f"min {s.minimum:g}, max {s.maximum:g}, mean {s.mean:.3g}"
        )
    return "\n".join(lines)
