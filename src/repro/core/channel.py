"""Per-signal runtime state — the library's ``GtkScopeSignal`` object.

For every :class:`~repro.core.signal.SignalSpec` an application registers,
the scope creates one :class:`Channel` that owns everything the display
needs:

* the trace: a bounded history of ``(time, displayed value)`` points,
* the low-pass filter state,
* the event aggregator (for event-driven signals, Section 4.2),
* sample-and-hold state (when a poll produces no value, the previous one
  is held),
* visibility (left-click toggles display) and the live value readout (the
  ``Value`` button in Figure 1),
* per-channel statistics for tests and benchmarks.

Columnar layout
---------------

The trace is a :class:`TraceRing`: a struct-of-arrays ring buffer with
preallocated ``float64`` columns for poll time, raw sample and filtered
sample, instead of a deque of per-point objects.  Batch ingest
(:meth:`Channel.accept_samples`) extends all three columns with two slice
writes and runs the low-pass filter vectorised over the batch, so the
buffered-signal hot path allocates no per-sample Python objects.  The
ring still iterates and indexes as :class:`TracePoint` values, and the
scalar :meth:`Channel.accept_sample` / :meth:`Channel.poll` API is
unchanged, so every paper semantic — display delay upstream in the
buffer, sample-and-hold on empty intervals, per-signal filtering — is
preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.aggregate import Aggregator, make_aggregator
from repro.core.lowpass import LowPassFilter
from repro.core.signal import SignalSpec, SignalType

ArrayLike = Union[Sequence[float], np.ndarray]


@dataclass(frozen=True)
class TracePoint:
    """One displayed point: poll time, raw sample and filtered sample."""

    time_ms: float
    raw: float
    value: float  # after low-pass filtering; what the canvas draws


class TraceRing:
    """Bounded struct-of-arrays trace: times / raw / filtered columns.

    Drop-in for the former ``deque(maxlen=...)`` of :class:`TracePoint`:
    supports ``len``, truthiness, iteration, indexing and equality in
    terms of points, while storing everything in three preallocated
    ``float64`` arrays so appends never allocate and the render path can
    read whole columns at once.
    """

    __slots__ = ("maxlen", "_times", "_raw", "_filtered", "_start", "_len")

    def __init__(self, maxlen: int) -> None:
        if maxlen is None or maxlen <= 0:
            raise ValueError(f"trace maxlen must be positive: {maxlen}")
        self.maxlen = int(maxlen)
        self._times = np.empty(self.maxlen, dtype=np.float64)
        self._raw = np.empty(self.maxlen, dtype=np.float64)
        self._filtered = np.empty(self.maxlen, dtype=np.float64)
        self._start = 0
        self._len = 0

    # -- mutation ------------------------------------------------------
    def append(self, time_ms: float, raw: float, value: float) -> None:
        """Append one point, evicting the oldest when full."""
        i = (self._start + self._len) % self.maxlen
        self._times[i] = time_ms
        self._raw[i] = raw
        self._filtered[i] = value
        if self._len < self.maxlen:
            self._len += 1
        else:
            self._start = (self._start + 1) % self.maxlen

    def extend(self, times: np.ndarray, raw: np.ndarray, values: np.ndarray) -> None:
        """Append a batch of points with at most two slice writes each."""
        n = times.shape[0]
        if n == 0:
            return
        if n >= self.maxlen:  # batch alone fills the ring
            keep = self.maxlen
            self._times[:] = times[n - keep :]
            self._raw[:] = raw[n - keep :]
            self._filtered[:] = values[n - keep :]
            self._start, self._len = 0, keep
            return
        pos = (self._start + self._len) % self.maxlen
        first = min(n, self.maxlen - pos)
        self._times[pos : pos + first] = times[:first]
        self._raw[pos : pos + first] = raw[:first]
        self._filtered[pos : pos + first] = values[:first]
        rest = n - first
        if rest:
            self._times[:rest] = times[first:]
            self._raw[:rest] = raw[first:]
            self._filtered[:rest] = values[first:]
        overflow = max(0, self._len + n - self.maxlen)
        self._len = min(self._len + n, self.maxlen)
        self._start = (self._start + overflow) % self.maxlen

    def clear(self) -> None:
        self._start = 0
        self._len = 0

    # -- columnar views ------------------------------------------------
    def _ordered(self, col: np.ndarray) -> np.ndarray:
        """Oldest-first view of a column (a copy only when wrapped)."""
        end = self._start + self._len
        if end <= self.maxlen:
            return col[self._start : end]
        k = end - self.maxlen
        return np.concatenate((col[self._start :], col[:k]))

    def times_array(self) -> np.ndarray:
        """Poll times, oldest first, as a ``float64`` array."""
        return self._ordered(self._times)

    def raw_array(self) -> np.ndarray:
        """Raw samples, oldest first, as a ``float64`` array."""
        return self._ordered(self._raw)

    def values_array(self) -> np.ndarray:
        """Filtered (displayed) samples, oldest first."""
        return self._ordered(self._filtered)

    def last_time(self) -> Optional[float]:
        i = (self._start + self._len - 1) % self.maxlen
        return float(self._times[i]) if self._len else None

    def last_raw(self) -> Optional[float]:
        i = (self._start + self._len - 1) % self.maxlen
        return float(self._raw[i]) if self._len else None

    def last_value(self) -> Optional[float]:
        i = (self._start + self._len - 1) % self.maxlen
        return float(self._filtered[i]) if self._len else None

    # -- sequence protocol ---------------------------------------------
    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator[TracePoint]:
        for k in range(self._len):
            i = (self._start + k) % self.maxlen
            yield TracePoint(
                time_ms=float(self._times[i]),
                raw=float(self._raw[i]),
                value=float(self._filtered[i]),
            )

    def __getitem__(self, index: int) -> TracePoint:
        if index < 0:
            index += self._len
        if not 0 <= index < self._len:
            raise IndexError("trace index out of range")
        i = (self._start + index) % self.maxlen
        return TracePoint(
            time_ms=float(self._times[i]),
            raw=float(self._raw[i]),
            value=float(self._filtered[i]),
        )

    # -- snapshot / restore --------------------------------------------
    def state_dict(self) -> dict:
        """Ordered column copies as plain data (process snapshots)."""
        return {
            "maxlen": self.maxlen,
            "times": self.times_array().copy(),
            "raw": self.raw_array().copy(),
            "filtered": self.values_array().copy(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` capture into this ring.

        The capacity must match (it comes from the signal registration,
        which the restoring factory reproduces); the points land packed
        at offset 0, which is observably identical to any ring phase.
        """
        if int(state["maxlen"]) != self.maxlen:
            raise ValueError(
                f"trace maxlen mismatch: snapshot {state['maxlen']}, "
                f"ring {self.maxlen}"
            )
        times = np.asarray(state["times"], dtype=np.float64)
        n = times.shape[0]
        self._times[:n] = times
        self._raw[:n] = np.asarray(state["raw"], dtype=np.float64)
        self._filtered[:n] = np.asarray(state["filtered"], dtype=np.float64)
        self._start = 0
        self._len = n

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TraceRing):
            return (
                self._len == other._len
                and bool(np.array_equal(self.times_array(), other.times_array()))
                and bool(np.array_equal(self.raw_array(), other.raw_array()))
                and bool(np.array_equal(self.values_array(), other.values_array()))
            )
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"TraceRing(maxlen={self.maxlen}, len={self._len})"


class Channel:
    """Runtime state of one registered signal.

    Parameters
    ----------
    spec:
        The application-provided signal specification.
    capacity:
        Maximum retained trace points.  The canvas only needs one point
        per pixel column; anything older scrolls off the left edge.
    """

    def __init__(self, spec: SignalSpec, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"trace capacity must be positive: {capacity}")
        self.spec = spec
        self.capacity = capacity
        self.visible = not spec.hidden
        self.show_value = False  # the `Value` readout button state
        self.filter = LowPassFilter(spec.filter)
        self.aggregator: Optional[Aggregator] = (
            make_aggregator(spec.aggregate) if spec.aggregate is not None else None
        )
        self.trace = TraceRing(maxlen=capacity)
        self.held_value: Optional[float] = None
        self.polls = 0
        self.samples = 0
        self.buffered_samples = 0  # samples that arrived via the buffer
        self.holds = 0

    # ------------------------------------------------------------------
    # Identity and display state
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def buffered(self) -> bool:
        return self.spec.type is SignalType.BUFFER

    def toggle_visible(self) -> bool:
        """Left-click on the signal name (Figure 1): show/hide the trace."""
        self.visible = not self.visible
        return self.visible

    def toggle_value_readout(self) -> bool:
        """The ``Value`` button: continuously display the latest value."""
        self.show_value = not self.show_value
        return self.show_value

    @property
    def last_value(self) -> Optional[float]:
        """Latest displayed (filtered) value, or None before any sample."""
        return self.trace.last_value()

    @property
    def last_raw(self) -> Optional[float]:
        return self.trace.last_raw()

    # ------------------------------------------------------------------
    # Event reporting (event-driven signals, Section 4.2)
    # ------------------------------------------------------------------
    def event(self, value: float = 1.0) -> None:
        """Report one application event for aggregation at the next poll."""
        if self.aggregator is None:
            raise TypeError(
                f"signal {self.name!r} has no aggregate mode; "
                "set SignalSpec.aggregate to report events"
            )
        self.aggregator.add(value)

    def events(self, values: ArrayLike) -> None:
        """Report a batch of application events in one vectorised call."""
        if self.aggregator is None:
            raise TypeError(
                f"signal {self.name!r} has no aggregate mode; "
                "set SignalSpec.aggregate to report events"
            )
        self.aggregator.add_many(values)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _record(self, time_ms: float, raw: float) -> TracePoint:
        value = self.filter.apply(raw)
        self.trace.append(time_ms, raw, value)
        self.held_value = raw
        self.samples += 1
        return TracePoint(time_ms=time_ms, raw=raw, value=value)

    def poll(self, time_ms: float, period_ms: float) -> Optional[TracePoint]:
        """Produce this poll interval's displayed point.

        For aggregated signals the aggregator is drained; an empty
        interval with no natural aggregate (max/min/average) holds the
        previous value (sample-and-hold).  For plain polled signals the
        source is read directly.  Buffered signals are not polled here —
        the scope feeds them via :meth:`accept_sample`.
        """
        if self.buffered:
            raise TypeError(f"signal {self.name!r} is buffered; cannot poll")
        self.polls += 1
        if self.aggregator is not None:
            raw = self.aggregator.collect(period_ms)
            if raw is None:
                if self.held_value is None:
                    return None  # nothing to display yet
                self.holds += 1
                raw = self.held_value
        else:
            raw = self.spec.read()
        return self._record(time_ms, raw)

    def accept_sample(self, time_ms: float, value: float) -> TracePoint:
        """Accept one due sample from the scope-wide buffer (BUFFER type)."""
        if not self.buffered:
            raise TypeError(f"signal {self.name!r} is not buffered")
        self.buffered_samples += 1
        return self._record(time_ms, value)

    def accept_samples(
        self, times: ArrayLike, values: ArrayLike
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bulk-accept due samples; returns ``(times, raw, filtered)``.

        The columnar fast path for buffer drains: one vectorised filter
        pass and two slice writes into the trace ring, no per-sample
        objects.  Equivalent to calling :meth:`accept_sample` per sample.
        """
        if not self.buffered:
            raise TypeError(f"signal {self.name!r} is not buffered")
        t = np.asarray(times, dtype=np.float64)
        raw = np.asarray(values, dtype=np.float64)
        if t.shape != raw.shape or t.ndim != 1:
            raise ValueError(
                f"times and values must be equal-length 1-D: {t.shape} vs {raw.shape}"
            )
        filtered = self.filter.apply_many(raw)
        self.trace.extend(t, raw, filtered)
        n = t.shape[0]
        if n:
            self.held_value = float(raw[-1])
        self.samples += n
        self.buffered_samples += n
        return t, raw, filtered

    # ------------------------------------------------------------------
    # Trace access
    # ------------------------------------------------------------------
    def values_array(self) -> np.ndarray:
        """Displayed (filtered) column, oldest first — the zero-copy input
        for :mod:`repro.core.trigger` / :mod:`repro.core.frequency`."""
        return self.trace.values_array()

    def raw_array(self) -> np.ndarray:
        return self.trace.raw_array()

    def times_array(self) -> np.ndarray:
        return self.trace.times_array()

    def values(self) -> List[float]:
        """Displayed (filtered) values, oldest first."""
        return self.trace.values_array().tolist()

    def raw_values(self) -> List[float]:
        return self.trace.raw_array().tolist()

    def times(self) -> List[float]:
        return self.trace.times_array().tolist()

    def points(self) -> List[Tuple[float, float]]:
        """(time, value) pairs for rendering or analysis."""
        return list(
            zip(self.trace.times_array().tolist(), self.trace.values_array().tolist())
        )

    def window(self, n: int) -> List[TracePoint]:
        """The most recent ``n`` trace points (fewer if not yet available)."""
        if n <= 0:
            return []
        total = len(self.trace)
        return [self.trace[i] for i in range(max(0, total - n), total)]

    def clear(self) -> None:
        """Wipe trace and state (used when acquisition mode changes)."""
        self.trace.clear()
        self.filter.reset()
        if self.aggregator is not None:
            self.aggregator.reset()
        self.held_value = None

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything a restored channel needs to continue byte-identically.

        The spec itself is *not* state — the restoring side re-registers
        the same signals through the same factory, then loads this over
        the fresh channel.
        """
        return {
            "trace": self.trace.state_dict(),
            "filter": self.filter.state_dict(),
            "aggregator": (
                None if self.aggregator is None else self.aggregator.state_dict()
            ),
            "held_value": self.held_value,
            "visible": self.visible,
            "show_value": self.show_value,
            "polls": self.polls,
            "samples": self.samples,
            "buffered_samples": self.buffered_samples,
            "holds": self.holds,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` capture onto this (fresh) channel."""
        self.trace.load_state(state["trace"])
        self.filter.load_state(state["filter"])
        agg_state = state["aggregator"]
        if (agg_state is None) != (self.aggregator is None):
            raise ValueError(
                f"aggregator mismatch restoring channel {self.name!r}: "
                "the restoring factory registered a different signal shape"
            )
        if self.aggregator is not None and agg_state is not None:
            self.aggregator.load_state(agg_state)
        held = state["held_value"]
        self.held_value = None if held is None else float(held)
        self.visible = bool(state["visible"])
        self.show_value = bool(state["show_value"])
        self.polls = int(state["polls"])
        self.samples = int(state["samples"])
        self.buffered_samples = int(state["buffered_samples"])
        self.holds = int(state["holds"])

    def __repr__(self) -> str:
        return (
            f"Channel({self.name!r}, type={self.spec.type.value}, "
            f"points={len(self.trace)}, visible={self.visible})"
        )
