"""Per-signal runtime state — the library's ``GtkScopeSignal`` object.

For every :class:`~repro.core.signal.SignalSpec` an application registers,
the scope creates one :class:`Channel` that owns everything the display
needs:

* the trace: a bounded history of ``(time, displayed value)`` points,
* the low-pass filter state,
* the event aggregator (for event-driven signals, Section 4.2),
* sample-and-hold state (when a poll produces no value, the previous one
  is held),
* visibility (left-click toggles display) and the live value readout (the
  ``Value`` button in Figure 1),
* per-channel statistics for tests and benchmarks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.core.aggregate import Aggregator, make_aggregator
from repro.core.lowpass import LowPassFilter
from repro.core.signal import SignalSpec, SignalType


@dataclass(frozen=True)
class TracePoint:
    """One displayed point: poll time, raw sample and filtered sample."""

    time_ms: float
    raw: float
    value: float  # after low-pass filtering; what the canvas draws


class Channel:
    """Runtime state of one registered signal.

    Parameters
    ----------
    spec:
        The application-provided signal specification.
    capacity:
        Maximum retained trace points.  The canvas only needs one point
        per pixel column; anything older scrolls off the left edge.
    """

    def __init__(self, spec: SignalSpec, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"trace capacity must be positive: {capacity}")
        self.spec = spec
        self.capacity = capacity
        self.visible = not spec.hidden
        self.show_value = False  # the `Value` readout button state
        self.filter = LowPassFilter(spec.filter)
        self.aggregator: Optional[Aggregator] = (
            make_aggregator(spec.aggregate) if spec.aggregate is not None else None
        )
        self.trace: Deque[TracePoint] = deque(maxlen=capacity)
        self.held_value: Optional[float] = None
        self.polls = 0
        self.samples = 0
        self.holds = 0

    # ------------------------------------------------------------------
    # Identity and display state
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def buffered(self) -> bool:
        return self.spec.type is SignalType.BUFFER

    def toggle_visible(self) -> bool:
        """Left-click on the signal name (Figure 1): show/hide the trace."""
        self.visible = not self.visible
        return self.visible

    def toggle_value_readout(self) -> bool:
        """The ``Value`` button: continuously display the latest value."""
        self.show_value = not self.show_value
        return self.show_value

    @property
    def last_value(self) -> Optional[float]:
        """Latest displayed (filtered) value, or None before any sample."""
        return self.trace[-1].value if self.trace else None

    @property
    def last_raw(self) -> Optional[float]:
        return self.trace[-1].raw if self.trace else None

    # ------------------------------------------------------------------
    # Event reporting (event-driven signals, Section 4.2)
    # ------------------------------------------------------------------
    def event(self, value: float = 1.0) -> None:
        """Report one application event for aggregation at the next poll."""
        if self.aggregator is None:
            raise TypeError(
                f"signal {self.name!r} has no aggregate mode; "
                "set SignalSpec.aggregate to report events"
            )
        self.aggregator.add(value)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _record(self, time_ms: float, raw: float) -> TracePoint:
        point = TracePoint(time_ms=time_ms, raw=raw, value=self.filter.apply(raw))
        self.trace.append(point)
        self.held_value = raw
        self.samples += 1
        return point

    def poll(self, time_ms: float, period_ms: float) -> Optional[TracePoint]:
        """Produce this poll interval's displayed point.

        For aggregated signals the aggregator is drained; an empty
        interval with no natural aggregate (max/min/average) holds the
        previous value (sample-and-hold).  For plain polled signals the
        source is read directly.  Buffered signals are not polled here —
        the scope feeds them via :meth:`accept_sample`.
        """
        if self.buffered:
            raise TypeError(f"signal {self.name!r} is buffered; cannot poll")
        self.polls += 1
        if self.aggregator is not None:
            raw = self.aggregator.collect(period_ms)
            if raw is None:
                if self.held_value is None:
                    return None  # nothing to display yet
                self.holds += 1
                raw = self.held_value
        else:
            raw = self.spec.read()
        return self._record(time_ms, raw)

    def accept_sample(self, time_ms: float, value: float) -> TracePoint:
        """Accept one due sample from the scope-wide buffer (BUFFER type)."""
        if not self.buffered:
            raise TypeError(f"signal {self.name!r} is not buffered")
        self.samples += 0  # _record increments; kept for symmetry
        return self._record(time_ms, value)

    # ------------------------------------------------------------------
    # Trace access
    # ------------------------------------------------------------------
    def values(self) -> List[float]:
        """Displayed (filtered) values, oldest first."""
        return [p.value for p in self.trace]

    def raw_values(self) -> List[float]:
        return [p.raw for p in self.trace]

    def times(self) -> List[float]:
        return [p.time_ms for p in self.trace]

    def points(self) -> List[Tuple[float, float]]:
        """(time, value) pairs for rendering or analysis."""
        return [(p.time_ms, p.value) for p in self.trace]

    def window(self, n: int) -> List[TracePoint]:
        """The most recent ``n`` trace points (fewer if not yet available)."""
        if n <= 0:
            return []
        return list(self.trace)[-n:]

    def clear(self) -> None:
        """Wipe trace and state (used when acquisition mode changes)."""
        self.trace.clear()
        self.filter.reset()
        if self.aggregator is not None:
            self.aggregator.reset()
        self.held_value = None

    def __repr__(self) -> str:
        return (
            f"Channel({self.name!r}, type={self.spec.type.value}, "
            f"points={len(self.trace)}, visible={self.visible})"
        )
