"""Multiple scopes on one main loop.

"Support for multiple scopes and signals, dynamic addition and removal of
scopes and signals" is the first feature Section 1 lists.  The manager is
a thin registry: it creates scopes bound to a shared main loop, routes
buffered samples to every scope carrying the named signal (one remote
stream can feed several displays, Section 4.4) and coordinates start/stop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.pollhub import PollHub
from repro.core.scope import Scope, ScopeError
from repro.core.signal import SignalSpec, SignalType
from repro.eventloop.loop import MainLoop

try:  # optional self-instrumentation plane (absence changes no bytes)
    from repro.obs import trace as _trace
except ImportError:  # pragma: no cover - obs package absent
    _trace = None

#: Signal names under this prefix belong to the self-instrumentation
#: plane.  Kept as a local literal (not imported from ``repro.obs``) so
#: the reservation holds even when the obs package is never imported.
RESERVED_PREFIX = "__obs."


class ScopeManager:
    """Registry of scopes sharing one :class:`MainLoop`."""

    def __init__(self, loop: Optional[MainLoop] = None) -> None:
        self.loop = loop if loop is not None else MainLoop()
        self._scopes: Dict[str, Scope] = {}
        self._topology_version = 0
        self._taps: Tuple = ()

    # ------------------------------------------------------------------
    # Capture taps
    # ------------------------------------------------------------------
    def add_tap(self, tap) -> None:
        """Attach a push tap: ``tap(name, times, values, now_ms)``.

        Taps observe every *offered* sample stream — accepted and
        late-dropped alike — before fan-out, which is what a
        :class:`~repro.capture.writer.CaptureWriter` needs to make a
        live run replayable.  With no tap attached the hot path pays
        one truthiness check.

        The tap set is copy-on-write: every push iterates an immutable
        snapshot, so a tap may detach itself (or a sibling) mid-push —
        a quarantining :class:`~repro.query.live.LiveQuery` does —
        without skipping or double-invoking the remaining taps.
        """
        self._taps = (*self._taps, tap)

    def remove_tap(self, tap) -> None:
        taps = list(self._taps)
        taps.remove(tap)
        self._taps = tuple(taps)

    # ------------------------------------------------------------------
    # Scope lifecycle
    # ------------------------------------------------------------------
    def scope_new(self, name: str, **kwargs: object) -> Scope:
        """Create and register a scope (``gtk_scope_new`` equivalent)."""
        if name in self._scopes:
            raise ScopeError(f"duplicate scope name: {name!r}")
        scope = Scope(name, self.loop, **kwargs)  # type: ignore[arg-type]
        self._scopes[name] = scope
        self._topology_version += 1
        return scope

    def scope_remove(self, name: str) -> None:
        """Dynamically remove a scope, stopping its polling first."""
        scope = self.scope(name)
        scope.stop_polling()
        del self._scopes[name]
        self._topology_version += 1

    def adopt_scope(self, scope: Scope) -> None:
        """Register an existing scope (the rebalancing seam).

        A :class:`~repro.net.shard.ShardedScopeManager` migrating a
        scope between shards releases it from one manager and adopts it
        into another.  The scope keeps its loop, its polling state and
        every trace — adoption is pure registry bookkeeping, so it must
        only happen between managers sharing the scope's loop.
        """
        if scope.name in self._scopes:
            raise ScopeError(f"duplicate scope name: {scope.name!r}")
        if scope.loop is not self.loop:
            raise ScopeError(
                f"scope {scope.name!r} lives on a different loop; "
                "migration requires a shared loop"
            )
        self._scopes[scope.name] = scope
        self._topology_version += 1

    def release_scope(self, name: str) -> Scope:
        """Unregister and return a scope *without* stopping its polling.

        The counterpart of :meth:`adopt_scope`: the scope is expected to
        be adopted elsewhere immediately, display uninterrupted.
        """
        scope = self.scope(name)
        del self._scopes[name]
        self._topology_version += 1
        return scope

    @property
    def topology_version(self) -> int:
        """Bumped on every scope add/remove.

        Consumers caching carried-signal lookups (the server's
        auto-create path) compare this to invalidate their caches.
        """
        return self._topology_version

    def carries(self, name: str) -> bool:
        """True when any registered scope displays signal ``name``."""
        return any(name in scope for scope in self._scopes.values())

    def auto_create(self, name: str) -> bool:
        """Register ``name`` as a BUFFER signal on the first scope.

        Returns False when no scope exists to carry it.  This is the
        server's exploratory-monitoring hook; the paper's flow registers
        signals explicitly.
        """
        if not self._scopes:
            return False
        first = next(iter(self._scopes.values()))
        first.signal_new(SignalSpec(name=name, type=SignalType.BUFFER))
        return True

    def scope(self, name: str) -> Scope:
        try:
            return self._scopes[name]
        except KeyError:
            raise ScopeError(f"unknown scope: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._scopes

    def __len__(self) -> int:
        return len(self._scopes)

    @property
    def scopes(self) -> List[Scope]:
        return list(self._scopes.values())

    # ------------------------------------------------------------------
    # Coordinated control
    # ------------------------------------------------------------------
    def start_all(self) -> None:
        """Start every scope polling.

        All scopes start at the same clock instant, so the loop's
        :class:`PollHub` coalesces them onto one timer source per
        distinct period — N scopes at the default period cost the
        scheduler a single timer instead of N.
        """
        for scope in self._scopes.values():
            scope.start_polling()

    def stop_all(self) -> None:
        for scope in self._scopes.values():
            scope.stop_polling()

    def push_sample(self, name: str, time_ms: float, value: float) -> int:
        """Deliver a buffered sample to every scope displaying ``name``.

        Returns the number of scopes that accepted the sample.  This is
        how the server side of the client-server library fans a remote
        signal out to "one or more scopes" (Section 4.4).

        Names under ``__obs.`` are reserved for the self-instrumentation
        publisher (which enters through :meth:`push_obs`); pushing one
        here is an error, so user data can never masquerade as — or
        collide with — internal telemetry.
        """
        if name.startswith(RESERVED_PREFIX):
            raise ScopeError(
                f"signal name {name!r} is reserved: the {RESERVED_PREFIX!r} "
                "namespace carries self-instrumentation samples "
                "(published via MetricsPublisher, not user pushes)"
            )
        # One clock read serves the tap and every scope's late-drop
        # decision, so what the capture records is exactly what the
        # buffers compared against (bit-exact replay under any clock).
        now = self.loop.clock.now()
        for tap in self._taps:
            tap(name, (time_ms,), (value,), now)
        accepted = 0
        for scope in self._scopes.values():
            if name in scope and scope.channel(name).buffered:
                if scope.push_sample(name, time_ms, value, now_ms=now):
                    accepted += 1
        return accepted

    def push_samples(self, name: str, times, values) -> int:
        """Bulk fan-out of one signal's samples to every carrying scope.

        Returns the number of samples accepted by at least one scope.
        Late-drop sets nest by display delay (all scopes share the loop
        clock, and a sample late for a long delay is late for every
        shorter one), so that count is exactly the max over scopes.

        ``__obs.``-prefixed names are rejected like :meth:`push_sample`.
        """
        if name.startswith(RESERVED_PREFIX):
            raise ScopeError(
                f"signal name {name!r} is reserved: the {RESERVED_PREFIX!r} "
                "namespace carries self-instrumentation samples "
                "(published via MetricsPublisher, not user pushes)"
            )
        return self._deliver(name, times, values)

    def push_obs(self, name: str, times, values) -> int:
        """Trusted entry for reserved-namespace samples.

        Identical delivery semantics to :meth:`push_samples` — taps see
        the batch, carrying scopes buffer it — but without the
        reserved-prefix rejection.  Only the self-instrumentation
        publisher and replay of captured ``__obs.`` columns should call
        this.
        """
        return self._deliver(name, times, values)

    def _deliver(self, name: str, times, values) -> int:
        # Single clock read for tap and fan-out: see push_sample.
        now = self.loop.clock.now()
        if _trace is not None and _trace._tracer is not None:
            with _trace.span("deliver", signal=name, n=len(times)):
                return self._deliver_at(name, times, values, now)
        return self._deliver_at(name, times, values, now)

    def _deliver_at(self, name: str, times, values, now: float) -> int:
        for tap in self._taps:
            tap(name, times, values, now)
        accepted = 0
        for scope in self._scopes.values():
            if name in scope and scope.channel(name).buffered:
                accepted = max(
                    accepted, scope.push_samples(name, times, values, now_ms=now)
                )
        return accepted

    @property
    def poll_timer_count(self) -> int:
        """Shared timer sources driving this manager's polling scopes."""
        return PollHub.of(self.loop).timer_count

    def run_for(self, duration_ms: float) -> None:
        """Drive the shared loop for ``duration_ms``."""
        self.loop.run_for(duration_ms)

    # ------------------------------------------------------------------
    # Snapshot / restore (process shard supervision)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Per-scope data-plane state, keyed by scope name (plain data).

        See :meth:`Scope.state_dict` for what is and is not captured;
        the restoring side rebuilds the same scopes via its factory and
        loads this over them.
        """
        return {
            "scopes": {name: scope.state_dict() for name, scope in self._scopes.items()}
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` capture onto this (fresh) manager."""
        snap_scopes = state["scopes"]
        if set(snap_scopes) != set(self._scopes):
            raise ScopeError(
                f"snapshot scopes {sorted(snap_scopes)} do not match "
                f"registered scopes {sorted(self._scopes)}"
            )
        for name, scope_state in snap_scopes.items():
            self._scopes[name].load_state(scope_state)
