"""Native-code seam: compile generated C once, load it through ctypes.

The query engine's fused kernels (:mod:`repro.query.kernels`) generate
small C translation units — one per fused-chain signature — and hand
them here.  This module owns the *mechanism* only:

* **compiler detection** — ``cc`` (or ``$CC``) probed once at first
  use; a toolchain-less install simply reports no native backend and
  every caller falls back to its numpy path;
* **build cache** — each source is compiled at most once per
  interpreter lifetime *and* at most once per machine: shared objects
  land in a per-user cache directory keyed by the SHA-256 of the
  source text, so a warm cache loads without invoking the compiler;
* **strict float semantics** — kernels are compiled with
  ``-fno-fast-math -ffp-contract=off``, which forbids FMA contraction
  and reassociation.  Byte-identical results against the numpy oracle
  are only possible because both sides execute the same IEEE-754
  double operations in the same order.

Backend selection is environment-driven and resolved once:

* ``REPRO_NATIVE=0``  — numpy only; no fusion, no compiled kernels.
* ``REPRO_NATIVE=numba`` — prefer a numba-jitted kernel; numba missing
  or failing degrades to numpy (never an error).
* unset / ``1`` / ``c`` — prefer generated C when a compiler exists,
  else numpy.

``REPRO_DEBUG_ZEROCOPY=1`` additionally arms the zero-copy guards on
the hot data path (decoder/source pass-through asserts that emitted
columns are views, not copies).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "available",
    "build",
    "compiler",
    "mode",
    "reset",
    "zero_copy_debug",
]

#: Flags every kernel is compiled with.  ``-ffp-contract=off`` and
#: ``-fno-fast-math`` are load-bearing: they pin the generated code to
#: the exact IEEE double operations the numpy oracle performs.
CFLAGS = [
    "-O2",
    "-fPIC",
    "-shared",
    "-fno-fast-math",
    "-ffp-contract=off",
]

_lock = threading.Lock()
_compiler: Optional[str] = None
_compiler_probed = False
_mode: Optional[str] = None
_libs: Dict[str, Optional[ctypes.CDLL]] = {}
_build_errors: Dict[str, str] = {}
_debug: Optional[bool] = None


def compiler() -> Optional[str]:
    """Path of the C compiler, or None when the machine has none."""
    global _compiler, _compiler_probed
    if not _compiler_probed:
        _compiler = shutil.which(os.environ.get("CC", "") or "cc") or shutil.which(
            "gcc"
        )
        _compiler_probed = True
    return _compiler


def _resolve_mode() -> str:
    raw = os.environ.get("REPRO_NATIVE", "").strip().lower()
    if raw in ("0", "off", "numpy"):
        return "numpy"
    if raw == "numba":
        try:  # the gate: numba is optional and may be absent
            import numba  # noqa: F401
        except Exception:
            return "numpy"
        return "numba"
    # "", "1", "c", "auto", anything else: C if a compiler exists.
    return "c" if compiler() is not None else "numpy"


def mode() -> str:
    """Resolved backend: ``"c"``, ``"numba"`` or ``"numpy"``.

    Read from ``REPRO_NATIVE`` once and cached; tests changing the
    environment call :func:`reset`.
    """
    global _mode
    if _mode is None:
        _mode = _resolve_mode()
    return _mode


def available() -> bool:
    """True when a compiled backend (C or numba) is active."""
    return mode() != "numpy"


def fusion_enabled() -> bool:
    """Whether the compiler should run its fusion pass by default.

    ``REPRO_NATIVE=0`` restores the pure per-operator numpy plan
    everywhere; any other setting keeps fusion on — even the numpy
    interpretation of a fused chain skips per-operator dispatch.
    """
    return mode() != "numpy" or os.environ.get(
        "REPRO_NATIVE", ""
    ).strip().lower() not in ("0", "off", "numpy")


def zero_copy_debug() -> bool:
    """True when the zero-copy hot-path guards are armed."""
    global _debug
    if _debug is None:
        _debug = bool(os.environ.get("REPRO_DEBUG_ZEROCOPY"))
    return _debug


def reset() -> None:
    """Forget cached mode/compiler/library state (test hook).

    Compiled shared objects stay on disk — only the in-process caches
    are dropped, so the next call re-reads the environment.
    """
    global _mode, _compiler_probed, _compiler, _debug
    with _lock:
        _mode = None
        _compiler_probed = False
        _compiler = None
        _debug = None
        _libs.clear()
        _build_errors.clear()


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        path = Path(override)
    else:
        path = Path(tempfile.gettempdir()) / f"repro-native-{os.getuid()}"
    path.mkdir(parents=True, exist_ok=True)
    return path


def build_error(tag: str) -> Optional[str]:
    """The failure that disabled native for ``tag``, if any."""
    return _build_errors.get(tag)


def build(
    source: str, tag: str, ldflags: Sequence[str] = ()
) -> Optional[ctypes.CDLL]:
    """Compile ``source`` (a C translation unit) and load it.

    Returns the loaded library, or None when no compiler is present or
    the build fails — callers must treat None as "use the numpy path".
    Results (including failures) are cached per source hash, so a
    broken toolchain costs one attempt, not one per query.  ``ldflags``
    (e.g. ``("-lz",)``) participate in the cache key: the same source
    linked differently is a different artifact.
    """
    digest = hashlib.sha256(
        "\x00".join((source, *ldflags)).encode("utf-8")
    ).hexdigest()[:16]
    key = f"{tag}-{digest}"
    with _lock:
        if key in _libs:
            return _libs[key]
        lib = _build_locked(source, tag, key, tuple(ldflags))
        _libs[key] = lib
        return lib


def _build_locked(
    source: str, tag: str, key: str, ldflags: Tuple[str, ...]
) -> Optional[ctypes.CDLL]:
    if mode() != "c":
        return None
    cc = compiler()
    if cc is None:  # pragma: no cover - mode() == "c" implies a compiler
        return None
    cache = _cache_dir()
    lib_path = cache / f"lib{key}.so"
    if not lib_path.exists():
        src_path = cache / f"{key}.c"
        tmp_path = cache / f".{key}.{os.getpid()}.so"
        try:
            src_path.write_text(source)
            subprocess.run(
                [cc, *CFLAGS, "-o", str(tmp_path), str(src_path), *ldflags],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp_path, lib_path)  # atomic: racers see whole files
        except (OSError, subprocess.SubprocessError) as exc:
            detail = ""
            if isinstance(exc, subprocess.CalledProcessError) and exc.stderr:
                detail = f": {exc.stderr.decode('utf-8', 'replace')[:500]}"
            _build_errors[tag] = f"{type(exc).__name__}{detail or f': {exc}'}"
            try:
                tmp_path.unlink(missing_ok=True)
            except OSError:
                pass
            return None
    try:
        return ctypes.CDLL(str(lib_path))
    except OSError as exc:
        _build_errors[tag] = f"dlopen failed: {exc}"
        return None
