"""Control parameter interface — the ``GtkScopeParameter`` port (§3.2).

Application or control parameters are application-wide knobs that gscope
can *read and write* (signals are read-only).  They are "not displayed but
generally used to modify application behavior": the mxtraf demo uses them
to change the number of flows and switch TCP variants at run time, and
Figure 3 shows the window that edits them.

A :class:`ControlParameter` wraps either a :class:`~repro.core.signal.Cell`
or an explicit getter/setter pair, with optional bounds and step.  A
:class:`ParameterStore` groups the parameters of one application and
notifies listeners on every change — that is the hook the GUI window and
the programmatic interface share.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional


class ParameterError(ValueError):
    """Raised for unknown parameters or out-of-bounds writes."""


class ControlParameter:
    """One read/write application parameter.

    Parameters
    ----------
    name:
        Parameter name shown in the control window.
    cell:
        Shared mutable holder (anything with a ``value`` attribute).
        Mutually exclusive with ``getter``/``setter``.
    getter / setter:
        Explicit accessors for parameters that live inside application
        state (mirrors the FUNC signal mechanism, but writable).
    minimum / maximum:
        Optional bounds enforced on every write.
    step:
        Display increment hint for GUI spin buttons; not enforced.
    """

    def __init__(
        self,
        name: str,
        cell: Optional[Any] = None,
        getter: Optional[Callable[[], float]] = None,
        setter: Optional[Callable[[float], None]] = None,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
        step: float = 1.0,
        description: str = "",
    ) -> None:
        if not name:
            raise ParameterError("parameter name must be non-empty")
        if cell is None and (getter is None or setter is None):
            raise ParameterError(
                f"parameter {name!r} needs a cell or a getter/setter pair"
            )
        if cell is not None and (getter is not None or setter is not None):
            raise ParameterError(
                f"parameter {name!r}: cell and getter/setter are mutually exclusive"
            )
        if minimum is not None and maximum is not None and maximum < minimum:
            raise ParameterError(
                f"parameter {name!r}: maximum {maximum} < minimum {minimum}"
            )
        self.name = name
        self._cell = cell
        self._getter = getter
        self._setter = setter
        self.minimum = minimum
        self.maximum = maximum
        self.step = step
        self.description = description

    def get(self) -> float:
        """Read the current parameter value."""
        if self._cell is not None:
            return float(self._cell.value)
        assert self._getter is not None
        return float(self._getter())

    def set(self, value: float) -> float:
        """Write a new value, enforcing bounds; returns the stored value."""
        value = float(value)
        if self.minimum is not None and value < self.minimum:
            raise ParameterError(
                f"parameter {self.name!r}: {value} below minimum {self.minimum}"
            )
        if self.maximum is not None and value > self.maximum:
            raise ParameterError(
                f"parameter {self.name!r}: {value} above maximum {self.maximum}"
            )
        if self._cell is not None:
            self._cell.value = value
        else:
            assert self._setter is not None
            self._setter(value)
        return value

    def adjust(self, steps: int) -> float:
        """Move the parameter by ``steps`` increments of :attr:`step`.

        This is what the GUI spin buttons do; clamped to the bounds
        instead of raising, since a held-down button should stop at the
        rail rather than error.
        """
        target = self.get() + steps * self.step
        if self.minimum is not None:
            target = max(self.minimum, target)
        if self.maximum is not None:
            target = min(self.maximum, target)
        return self.set(target)


ChangeListener = Callable[[str, float], None]


class ParameterStore:
    """Named collection of control parameters with change notification.

    The store is the model behind Figure 3's control-parameter window:
    the GUI and the programmatic interface both go through :meth:`set`,
    and every listener (GUI refresh, recorders, tests) observes the same
    change stream.
    """

    def __init__(self) -> None:
        self._params: Dict[str, ControlParameter] = {}
        self._listeners: List[ChangeListener] = []

    def add(self, param: ControlParameter) -> ControlParameter:
        """Register a parameter; duplicate names are an error."""
        if param.name in self._params:
            raise ParameterError(f"duplicate parameter name: {param.name!r}")
        self._params[param.name] = param
        return param

    def remove(self, name: str) -> None:
        if name not in self._params:
            raise ParameterError(f"unknown parameter: {name!r}")
        del self._params[name]

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def __len__(self) -> int:
        return len(self._params)

    def names(self) -> List[str]:
        return list(self._params)

    def parameter(self, name: str) -> ControlParameter:
        try:
            return self._params[name]
        except KeyError:
            raise ParameterError(f"unknown parameter: {name!r}") from None

    def get(self, name: str) -> float:
        return self.parameter(name).get()

    def set(self, name: str, value: float) -> float:
        """Write a parameter and notify all listeners."""
        stored = self.parameter(name).set(value)
        for listener in list(self._listeners):
            listener(name, stored)
        return stored

    def adjust(self, name: str, steps: int) -> float:
        stored = self.parameter(name).adjust(steps)
        for listener in list(self._listeners):
            listener(name, stored)
        return stored

    def snapshot(self) -> Dict[str, float]:
        """Read every parameter at once (for recording experiment state)."""
        return {name: p.get() for name, p in self._params.items()}

    def add_listener(self, listener: ChangeListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: ChangeListener) -> None:
        self._listeners.remove(listener)
