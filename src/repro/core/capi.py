"""C-flavoured compatibility shims for the paper's API names.

Figure 6 of the paper shows the canonical gscope program using
``gtk_scope_new``, ``gtk_scope_signal_new``,
``gtk_scope_set_polling_mode``, ``gtk_scope_start_polling`` and
``g_io_add_watch``.  These functions let that program be ported almost
line-for-line (see ``examples/quickstart.py``); new code should use the
:class:`~repro.core.scope.Scope` methods directly.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.channel import Channel
from repro.core.scope import Scope
from repro.core.signal import SignalSpec
from repro.eventloop.loop import MainLoop
from repro.eventloop.sources import IOCondition, Pollable

_default_loop: Optional[MainLoop] = None


def g_main_loop(loop: Optional[MainLoop] = None) -> MainLoop:
    """Get or set the process-default main loop (like glib's default
    main context)."""
    global _default_loop
    if loop is not None:
        _default_loop = loop
    if _default_loop is None:
        _default_loop = MainLoop()
    return _default_loop


def gtk_scope_new(
    name: str, width: int = 512, height: int = 256, loop: Optional[MainLoop] = None
) -> Scope:
    """``scope = gtk_scope_new(name, width, height);``"""
    return Scope(name, loop if loop is not None else g_main_loop(), width, height)


def gtk_scope_signal_new(scope: Scope, sig: SignalSpec) -> Channel:
    """``gtk_scope_signal_new(scope, elephants_sig);``"""
    return scope.signal_new(sig)


def gtk_scope_set_polling_mode(scope: Scope, period_ms: float) -> None:
    """``gtk_scope_set_polling_mode(scope, 50);``"""
    scope.set_polling_mode(period_ms)


def gtk_scope_start_polling(scope: Scope) -> None:
    """``gtk_scope_start_polling(scope);``"""
    scope.start_polling()


def gtk_scope_stop_polling(scope: Scope) -> None:
    scope.stop_polling()


G_IO_IN = IOCondition.IN
G_IO_OUT = IOCondition.OUT


def g_io_add_watch(
    channel: Pollable,
    condition: IOCondition,
    callback: Callable[..., Any],
    loop: Optional[MainLoop] = None,
) -> int:
    """``g_io_add_watch(..., G_IO_IN, read_program, fd);``"""
    return (loop if loop is not None else g_main_loop()).io_add_watch(
        channel, condition, callback
    )


def gtk_main(max_iterations: Optional[int] = None, loop: Optional[MainLoop] = None) -> None:
    """``gtk_main(); /* doesn't return */`` — here it returns when the
    loop runs out of sources or hits ``max_iterations``."""
    (loop if loop is not None else g_main_loop()).run(max_iterations=max_iterations)


def gtk_main_quit(loop: Optional[MainLoop] = None) -> None:
    (loop if loop is not None else g_main_loop()).quit()
