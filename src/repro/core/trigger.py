"""Triggers and waveform envelopes — the paper's Future Work, built.

Section 6: "Gscope currently does not have support for repeating
waveforms.  Thus, many oscilloscope features such as triggers that
stabilize repeating waveforms or waveform envelop generation are not
implemented in gscope."  This module implements both so the reproduction
covers the paper's stated extensions:

* :class:`Trigger` — level/edge trigger detection over a trace, used to
  align successive sweeps of a repeating waveform so the display is
  stable (what the trigger knob on a hardware scope does).
* :func:`envelope` — per-column min/max envelope across aligned sweeps,
  showing the variation band of a repeating waveform.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


class Edge(enum.Enum):
    """Which crossing direction arms the trigger."""

    RISING = "rising"
    FALLING = "falling"
    EITHER = "either"


@dataclass(frozen=True)
class TriggerEvent:
    """One trigger firing: sample index and the crossing's direction."""

    index: int
    edge: Edge


class Trigger:
    """Level/edge trigger with hysteresis and holdoff.

    Parameters
    ----------
    level:
        The trigger level in signal units.
    edge:
        Crossing direction that fires the trigger.
    hysteresis:
        The signal must retreat this far past the level before the
        trigger re-arms, suppressing noise-induced double triggers.
    holdoff:
        Minimum samples between firings, like a scope's holdoff knob.
    """

    def __init__(
        self,
        level: float,
        edge: Edge = Edge.RISING,
        hysteresis: float = 0.0,
        holdoff: int = 0,
    ) -> None:
        if hysteresis < 0:
            raise ValueError(f"hysteresis must be non-negative: {hysteresis}")
        if holdoff < 0:
            raise ValueError(f"holdoff must be non-negative: {holdoff}")
        self.level = float(level)
        self.edge = edge
        self.hysteresis = float(hysteresis)
        self.holdoff = int(holdoff)

    def _crossings(self, values: Sequence[float]) -> List[TriggerEvent]:
        events: List[TriggerEvent] = []
        armed_rising = True
        armed_falling = True
        lo = self.level - self.hysteresis
        hi = self.level + self.hysteresis
        last_fire = -(self.holdoff + 1)
        for i in range(1, len(values)):
            prev, cur = values[i - 1], values[i]
            if cur <= lo:
                armed_rising = True
            if cur >= hi:
                armed_falling = True
            fired: Optional[Edge] = None
            if (
                self.edge in (Edge.RISING, Edge.EITHER)
                and armed_rising
                and prev < self.level <= cur
            ):
                fired = Edge.RISING
                armed_rising = False
            elif (
                self.edge in (Edge.FALLING, Edge.EITHER)
                and armed_falling
                and prev > self.level >= cur
            ):
                fired = Edge.FALLING
                armed_falling = False
            if fired is not None and i - last_fire > self.holdoff:
                events.append(TriggerEvent(index=i, edge=fired))
                last_fire = i
        return events

    def find(self, values: Sequence[float]) -> List[TriggerEvent]:
        """All trigger firings over a trace, oldest first."""
        return self._crossings(values)

    def sweeps(
        self, values: Sequence[float], width: int
    ) -> List[List[float]]:
        """Cut the trace into trigger-aligned sweeps of ``width`` samples.

        Each sweep starts at a trigger point; sweeps that would run past
        the end of the trace are discarded (a hardware scope similarly
        only displays complete sweeps).
        """
        if width <= 0:
            raise ValueError(f"sweep width must be positive: {width}")
        sweeps: List[List[float]] = []
        for event in self.find(values):
            if event.index + width <= len(values):
                sweeps.append(list(values[event.index : event.index + width]))
        return sweeps


def envelope(sweeps: Sequence[Sequence[float]]) -> Tuple[List[float], List[float]]:
    """Per-column (min, max) envelope across aligned sweeps.

    All sweeps must share a length.  Returns ``(lower, upper)`` lists of
    that length.  With a single sweep both envelopes equal the sweep.
    """
    if not sweeps:
        raise ValueError("need at least one sweep for an envelope")
    width = len(sweeps[0])
    for i, sweep in enumerate(sweeps):
        if len(sweep) != width:
            raise ValueError(
                f"sweep {i} length {len(sweep)} != expected {width}"
            )
    lower = [min(s[i] for s in sweeps) for i in range(width)]
    upper = [max(s[i] for s in sweeps) for i in range(width)]
    return lower, upper


def stabilised_view(
    values: Sequence[float], trigger: Trigger, width: int
) -> Optional[List[float]]:
    """The most recent complete trigger-aligned sweep, or None.

    This is what a triggered scope actually paints: the latest sweep that
    starts at a trigger point, so a repeating waveform appears frozen.
    """
    sweeps = trigger.sweeps(values, width)
    return sweeps[-1] if sweeps else None
