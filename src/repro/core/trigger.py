"""Triggers and waveform envelopes — the paper's Future Work, built.

Section 6: "Gscope currently does not have support for repeating
waveforms.  Thus, many oscilloscope features such as triggers that
stabilize repeating waveforms or waveform envelop generation are not
implemented in gscope."  This module implements both so the reproduction
covers the paper's stated extensions:

* :class:`Trigger` — level/edge trigger detection over a trace, used to
  align successive sweeps of a repeating waveform so the display is
  stable (what the trigger knob on a hardware scope does).
* :func:`envelope` — per-column min/max envelope across aligned sweeps,
  showing the variation band of a repeating waveform.

Vectorized analysis path
------------------------

:meth:`Trigger.detect` accepts plain sequences, ``np.ndarray`` columns
and :class:`~repro.core.channel.TraceRing` objects (via their
``values_array`` view) without materializing Python lists.  Candidate
crossings and re-arm points are extracted with numpy comparisons over
the whole column; the sequential arm/holdoff state machine then runs
only over the (sparse) crossing candidates, with re-arm lookups done by
binary search.  Results are identical to the scalar reference
(:meth:`Trigger._crossings`), which is retained for the equivalence
suite and benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np


class Edge(enum.Enum):
    """Which crossing direction arms the trigger."""

    RISING = "rising"
    FALLING = "falling"
    EITHER = "either"


@dataclass(frozen=True)
class TriggerEvent:
    """One trigger firing: sample index and the crossing's direction."""

    index: int
    edge: Edge


TraceLike = Union[Sequence[float], np.ndarray]


def _trace_column(values: TraceLike) -> np.ndarray:
    """A float64 column for ``values`` without a Python-list round trip.

    Accepts ndarrays (passed through uncopied when already float64),
    ``TraceRing``/``Channel``-style objects exposing ``values_array``,
    and plain sequences.
    """
    values_array = getattr(values, "values_array", None)
    if values_array is not None:
        values = values_array()
    return np.asarray(values, dtype=np.float64)


def _rearmed_between(rearms: np.ndarray, after: int, upto: int) -> bool:
    """True when a re-arm index exists in ``(after, upto]``."""
    pos = int(np.searchsorted(rearms, after, side="right"))
    return pos < rearms.size and rearms[pos] <= upto


class Trigger:
    """Level/edge trigger with hysteresis and holdoff.

    Parameters
    ----------
    level:
        The trigger level in signal units.
    edge:
        Crossing direction that fires the trigger.
    hysteresis:
        The signal must retreat this far past the level before the
        trigger re-arms, suppressing noise-induced double triggers.
    holdoff:
        Minimum samples between firings, like a scope's holdoff knob.
    """

    def __init__(
        self,
        level: float,
        edge: Edge = Edge.RISING,
        hysteresis: float = 0.0,
        holdoff: int = 0,
    ) -> None:
        if hysteresis < 0:
            raise ValueError(f"hysteresis must be non-negative: {hysteresis}")
        if holdoff < 0:
            raise ValueError(f"holdoff must be non-negative: {holdoff}")
        self.level = float(level)
        self.edge = edge
        self.hysteresis = float(hysteresis)
        self.holdoff = int(holdoff)

    def _crossings(self, values: Sequence[float]) -> List[TriggerEvent]:
        """Scalar reference implementation (one pass, sample by sample).

        Kept as the semantic oracle for the vectorized :meth:`detect`;
        the parity suite pits the two against each other on random
        waveforms.
        """
        events: List[TriggerEvent] = []
        armed_rising = True
        armed_falling = True
        lo = self.level - self.hysteresis
        hi = self.level + self.hysteresis
        last_fire = -(self.holdoff + 1)
        for i in range(1, len(values)):
            prev, cur = values[i - 1], values[i]
            if cur <= lo:
                armed_rising = True
            if cur >= hi:
                armed_falling = True
            fired: Optional[Edge] = None
            if (
                self.edge in (Edge.RISING, Edge.EITHER)
                and armed_rising
                and prev < self.level <= cur
            ):
                fired = Edge.RISING
                armed_rising = False
            elif (
                self.edge in (Edge.FALLING, Edge.EITHER)
                and armed_falling
                and prev > self.level >= cur
            ):
                fired = Edge.FALLING
                armed_falling = False
            if fired is not None and i - last_fire > self.holdoff:
                events.append(TriggerEvent(index=i, edge=fired))
                last_fire = i
        return events

    def detect(self, values: TraceLike) -> List[TriggerEvent]:
        """All trigger firings over a trace, oldest first (vectorized).

        Candidate level crossings are found with whole-column numpy
        comparisons; the arm/holdoff state machine then visits only the
        candidates.  A crossing disarms its edge even when holdoff
        suppresses the event, and re-arming at index ``i`` happens before
        the crossing check at ``i`` — both exactly as in the scalar
        reference.
        """
        v = _trace_column(values)
        if v.ndim != 1:
            raise ValueError(f"trace must be 1-D, got shape {v.shape}")
        if v.size < 2:
            return []
        prev, cur = v[:-1], v[1:]
        level = self.level
        want_rising = self.edge in (Edge.RISING, Edge.EITHER)
        want_falling = self.edge in (Edge.FALLING, Edge.EITHER)

        pieces: List[np.ndarray] = []
        rising_flags: List[np.ndarray] = []
        if want_rising:
            rising = np.nonzero((prev < level) & (level <= cur))[0] + 1
            pieces.append(rising)
            rising_flags.append(np.ones(rising.size, dtype=bool))
        if want_falling:
            falling = np.nonzero((prev > level) & (level >= cur))[0] + 1
            pieces.append(falling)
            rising_flags.append(np.zeros(falling.size, dtype=bool))
        indices = np.concatenate(pieces) if len(pieces) > 1 else pieces[0]
        is_rising = (
            np.concatenate(rising_flags) if len(rising_flags) > 1 else rising_flags[0]
        )
        if indices.size == 0:
            return []
        if len(pieces) > 1:
            order = np.argsort(indices, kind="stable")
            indices = indices[order]
            is_rising = is_rising[order]

        # With zero hysteresis a crossing's own `prev < level` sample is
        # a re-arm, so the trigger is always armed when a crossing
        # arrives and the re-arm search can be skipped entirely.
        check_arming = self.hysteresis > 0.0
        if check_arming:
            rearm_rising = np.nonzero(cur <= self.level - self.hysteresis)[0] + 1
            rearm_falling = np.nonzero(cur >= self.level + self.hysteresis)[0] + 1
        events: List[TriggerEvent] = []
        holdoff = self.holdoff
        last_fire = -(holdoff + 1)
        last_rising_fire = -1  # -1: never fired, machine starts armed
        last_falling_fire = -1
        for k in range(indices.size):
            i = int(indices[k])
            if is_rising[k]:
                if (
                    not check_arming
                    or last_rising_fire < 0
                    or _rearmed_between(rearm_rising, last_rising_fire, i)
                ):
                    last_rising_fire = i
                    if i - last_fire > holdoff:
                        events.append(TriggerEvent(index=i, edge=Edge.RISING))
                        last_fire = i
            else:
                if (
                    not check_arming
                    or last_falling_fire < 0
                    or _rearmed_between(rearm_falling, last_falling_fire, i)
                ):
                    last_falling_fire = i
                    if i - last_fire > holdoff:
                        events.append(TriggerEvent(index=i, edge=Edge.FALLING))
                        last_fire = i
        return events

    def find(self, values: TraceLike) -> List[TriggerEvent]:
        """All trigger firings over a trace, oldest first."""
        return self.detect(values)

    def sweeps(
        self, values: TraceLike, width: int
    ) -> List[Sequence[float]]:
        """Cut the trace into trigger-aligned sweeps of ``width`` samples.

        Each sweep starts at a trigger point; sweeps that would run past
        the end of the trace are discarded (a hardware scope similarly
        only displays complete sweeps).  ``np.ndarray`` input yields
        zero-copy views into the caller's array; ``TraceRing``/``Channel``
        input yields array *snapshots* (the ring's storage is overwritten
        as acquisition continues, so live views would silently mutate);
        plain sequences keep returning lists.
        """
        if width <= 0:
            raise ValueError(f"sweep width must be positive: {width}")
        live_ring = hasattr(values, "values_array")
        as_arrays = live_ring or isinstance(values, np.ndarray)
        v = _trace_column(values)
        out: List[Sequence[float]] = []
        for event in self.detect(v):
            if event.index + width <= v.size:
                sweep = v[event.index : event.index + width]
                if live_ring:
                    sweep = sweep.copy()
                out.append(sweep if as_arrays else sweep.tolist())
        return out


def envelope(
    sweeps: Union[Sequence[Sequence[float]], np.ndarray],
) -> Tuple[Sequence[float], Sequence[float]]:
    """Per-column (min, max) envelope across aligned sweeps.

    All sweeps must share a length.  Returns ``(lower, upper)`` of that
    length.  With a single sweep both envelopes equal the sweep.  A 2-D
    ``np.ndarray`` (or a list of aligned 1-D arrays, as produced by
    :meth:`Trigger.sweeps` on array input) is reduced with vectorized
    column min/max and returns arrays; plain nested sequences keep the
    scalar path and return lists.
    """
    if isinstance(sweeps, np.ndarray) or (
        len(sweeps) > 0 and isinstance(sweeps[0], np.ndarray)
    ):
        try:
            arr = np.asarray(sweeps, dtype=np.float64)
        except ValueError as exc:
            raise ValueError(f"sweeps must share a length: {exc}") from None
        if arr.ndim != 2:
            raise ValueError(f"sweeps must be aligned 1-D rows, got shape {arr.shape}")
        if arr.shape[0] == 0:
            raise ValueError("need at least one sweep for an envelope")
        return arr.min(axis=0), arr.max(axis=0)
    if not sweeps:
        raise ValueError("need at least one sweep for an envelope")
    width = len(sweeps[0])
    for i, sweep in enumerate(sweeps):
        if len(sweep) != width:
            raise ValueError(
                f"sweep {i} length {len(sweep)} != expected {width}"
            )
    lower = [min(s[i] for s in sweeps) for i in range(width)]
    upper = [max(s[i] for s in sweeps) for i in range(width)]
    return lower, upper


def stabilised_view(
    values: TraceLike, trigger: Trigger, width: int
) -> Optional[Sequence[float]]:
    """The most recent complete trigger-aligned sweep, or None.

    This is what a triggered scope actually paints: the latest sweep that
    starts at a trigger point, so a repeating waveform appears frozen.
    """
    sweeps = trigger.sweeps(values, width)
    return sweeps[-1] if sweeps else None
