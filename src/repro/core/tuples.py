"""The textual tuple format (Section 3.3) and record/replay support.

Signals are streamed to gscope, recorded to files and replayed from files
in a single textual format.  Each tuple has three fields::

    time value signal-name

where ``time`` is in milliseconds and must be non-decreasing across
successive tuples of a stream or file.  As a special case, a stream that
carries exactly one signal may omit the name, giving two-field
``time value`` tuples.

Blank lines and lines starting with ``#`` are ignored, which lets
recorded files carry human-readable headers.

The text format remains the *interchange* representation: it is what
old clients stream, what ``recorded_signals.tuples`` files hold, and
what humans read and edit.  High-volume recording and indexed replay
live in the binary segmented store (:mod:`repro.capture`); the two
round-trip losslessly (:func:`format_tuple` renders float64 exactly,
see :func:`repro.capture.export_text` / :func:`repro.capture.import_text`),
so :class:`Recorder` and :class:`Player` double as the text codec for
the same data.
"""

from __future__ import annotations

import io
import math
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Optional, Sequence, Union


@dataclass(frozen=True)
class Tuple3:
    """One parsed tuple: time (ms), value, and optional signal name."""

    time_ms: float
    value: float
    name: Optional[str] = None


class TupleFormatError(ValueError):
    """Raised on malformed tuple text or time-order violations."""


def format_tuple(time_ms: float, value: float, name: Optional[str] = None) -> str:
    """Serialise one tuple to its textual line (no trailing newline).

    Times and values are rendered with ``repr``-level precision trimmed of
    redundant zeros so replay reproduces the recorded values exactly.
    """

    def fmt(x: float) -> str:
        x = float(x)
        # Integer-valued floats render without the ".0" for readability,
        # but only where that stays an exact, compact round-trip: -0.0
        # must keep its sign and huge magnitudes (1e300 has 300 integer
        # digits) must stay in scientific notation.
        if x.is_integer() and abs(x) < 1e16 and not (
            x == 0.0 and math.copysign(1.0, x) < 0
        ):
            return str(int(x))
        return repr(x)

    if name is None:
        return f"{fmt(time_ms)} {fmt(value)}"
    if any(ch.isspace() for ch in name):
        raise TupleFormatError(f"signal name may not contain whitespace: {name!r}")
    return f"{fmt(time_ms)} {fmt(value)} {name}"


def parse_tuple(line: str) -> Optional[Tuple3]:
    """Parse one line; return ``None`` for blanks and ``#`` comments."""
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    parts = text.split()
    if len(parts) not in (2, 3):
        raise TupleFormatError(f"expected 'time value [name]', got {line!r}")
    try:
        time_ms = float(parts[0])
        value = float(parts[1])
    except ValueError as exc:
        raise TupleFormatError(f"non-numeric field in {line!r}") from exc
    name = parts[2] if len(parts) == 3 else None
    return Tuple3(time_ms=time_ms, value=value, name=name)


def parse_stream(lines: Iterable[str]) -> Iterator[Tuple3]:
    """Parse a line iterable, enforcing non-decreasing time order."""
    last_time: Optional[float] = None
    for lineno, line in enumerate(lines, start=1):
        parsed = parse_tuple(line)
        if parsed is None:
            continue
        if last_time is not None and parsed.time_ms < last_time:
            raise TupleFormatError(
                f"line {lineno}: time {parsed.time_ms} goes backwards "
                f"(previous {last_time})"
            )
        last_time = parsed.time_ms
        yield parsed


class Recorder:
    """Records displayed samples to a file in tuple format.

    The scope calls :meth:`record` for every sample it paints; recording
    "the polled data to a file" is a polling-mode feature (Section 3.1).
    The recorder enforces the format's non-decreasing time rule at write
    time so every recorded file is replayable.
    """

    def __init__(self, sink: Union[IO[str], str], single_signal: bool = False) -> None:
        self._owns_sink = isinstance(sink, str)
        self._sink: IO[str] = open(sink, "w") if isinstance(sink, str) else sink
        self.single_signal = single_signal
        self._last_time: Optional[float] = None
        self.count = 0

    def comment(self, text: str) -> None:
        """Write a ``#`` comment line (headers, experiment metadata)."""
        for line in text.splitlines() or [""]:
            self._sink.write(f"# {line}\n")

    def record(self, time_ms: float, value: float, name: Optional[str] = None) -> None:
        """Append one sample tuple."""
        if self._last_time is not None and time_ms < self._last_time:
            raise TupleFormatError(
                f"record time {time_ms} precedes previous {self._last_time}"
            )
        self._last_time = time_ms
        written_name = None if self.single_signal else name
        if not self.single_signal and name is None:
            raise TupleFormatError("multi-signal recording requires a signal name")
        self._sink.write(format_tuple(time_ms, value, written_name) + "\n")
        self.count += 1

    def record_many(
        self,
        times: Sequence[float],
        values: Sequence[float],
        names: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        """Append a batch of sample tuples with a single sink write.

        The batch must be internally time-ordered and must not precede
        the last recorded tuple — the same non-decreasing rule
        :meth:`record` enforces per call, checked once over the batch.
        """
        n = len(times)
        if n == 0:
            return
        if names is None:
            names = [None] * n
        prev = self._last_time
        lines = []
        for time_ms, value, name in zip(times, values, names):
            if prev is not None and time_ms < prev:
                raise TupleFormatError(
                    f"record time {time_ms} precedes previous {prev}"
                )
            prev = time_ms
            written_name = None if self.single_signal else name
            if not self.single_signal and name is None:
                raise TupleFormatError("multi-signal recording requires a signal name")
            lines.append(format_tuple(time_ms, value, written_name))
        self._last_time = prev
        self._sink.write("\n".join(lines) + "\n")
        self.count += n

    def close(self) -> None:
        self._sink.flush()
        if self._owns_sink:
            self._sink.close()

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class Player:
    """Replays a recorded tuple file (playback acquisition mode, §3.1).

    The scope asks the player for all tuples up to the current playback
    time each poll.  Tuples are displayed at the x position implied by
    their timestamp: "if the polling period is 50 ms, then data points in
    the file that are 100 ms apart will be displayed 2 pixels apart"
    (Section 3.3) — the scope does that mapping; the player just delivers
    time-ordered tuples.
    """

    def __init__(
        self,
        source: Union[IO[str], str, Iterable[str]],
        default_name: str = "signal",
    ) -> None:
        if isinstance(source, str):
            with open(source) as fh:
                lines: Iterable[str] = fh.read().splitlines()
        elif isinstance(source, io.IOBase) or hasattr(source, "read"):
            lines = source.read().splitlines()  # type: ignore[union-attr]
        else:
            lines = source
        self.default_name = default_name
        self._tuples: List[Tuple3] = list(parse_stream(lines))
        self._pos = 0

    @classmethod
    def from_capture(cls, source, default_name: str = "signal") -> "Player":
        """Build a player straight from a binary capture store.

        ``source`` is a :class:`~repro.capture.CaptureReader` or a path
        to a capture directory.  Tuples are ordered by timestamp
        (stream order breaking ties), matching what
        :func:`repro.capture.export_text` would emit — the playback
        path works on either representation of the same recording.
        """
        from repro.capture.reader import CaptureReader

        reader = (
            source if isinstance(source, CaptureReader) else CaptureReader(source)
        )
        times, values, ids = reader.sorted_columns()
        names = reader.names
        player = cls([], default_name=default_name)
        player._tuples = [
            Tuple3(time_ms=t, value=v, name=names[i])
            for t, v, i in zip(times.tolist(), values.tolist(), ids.tolist())
        ]
        return player

    def __len__(self) -> int:
        return len(self._tuples)

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._tuples)

    @property
    def names(self) -> List[str]:
        """Distinct signal names present in the recording."""
        seen: List[str] = []
        for t in self._tuples:
            name = t.name or self.default_name
            if name not in seen:
                seen.append(name)
        return seen

    @property
    def duration_ms(self) -> float:
        """Timestamp span of the recording (0 for empty recordings)."""
        if not self._tuples:
            return 0.0
        return self._tuples[-1].time_ms - self._tuples[0].time_ms

    @property
    def start_time_ms(self) -> float:
        return self._tuples[0].time_ms if self._tuples else 0.0

    def advance_to(self, playback_time_ms: float) -> List[Tuple3]:
        """Return all tuples with time <= ``playback_time_ms`` not yet played."""
        out: List[Tuple3] = []
        while self._pos < len(self._tuples) and self._tuples[self._pos].time_ms <= playback_time_ms:
            t = self._tuples[self._pos]
            if t.name is None:
                t = Tuple3(time_ms=t.time_ms, value=t.value, name=self.default_name)
            out.append(t)
            self._pos += 1
        return out

    def rewind(self) -> None:
        """Restart playback from the first tuple."""
        self._pos = 0
