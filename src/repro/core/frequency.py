"""Frequency-domain signal views.

Section 1 lists "time and frequency representation of signals" among
gscope's features and Section 3.1 notes that "polled signals can be
displayed in the time or frequency domain".  The scope samples at a fixed
polling period, so a trace is a uniformly sampled series and a real FFT
gives its spectrum directly; the sampling rate is ``1000 / period_ms`` Hz
and the spectrum extends to the Nyquist frequency, half of that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Spectrum:
    """Magnitude spectrum of a scope trace."""

    freqs_hz: np.ndarray
    magnitudes: np.ndarray
    sample_rate_hz: float

    @property
    def nyquist_hz(self) -> float:
        return self.sample_rate_hz / 2.0

    def peak(self) -> Tuple[float, float]:
        """(frequency, magnitude) of the strongest non-DC component."""
        if len(self.freqs_hz) < 2:
            raise ValueError("spectrum too short to have a non-DC peak")
        idx = 1 + int(np.argmax(self.magnitudes[1:]))
        return float(self.freqs_hz[idx]), float(self.magnitudes[idx])

    def dominant_period_ms(self) -> float:
        """Period of the strongest component, in milliseconds."""
        freq, _ = self.peak()
        if freq <= 0:
            raise ValueError("no oscillating component found")
        return 1000.0 / freq


_WINDOWS = {
    "rect": lambda n: np.ones(n),
    "hann": np.hanning,
    "hamming": np.hamming,
    "blackman": np.blackman,
}


def spectrum(
    values: Sequence[float],
    period_ms: float,
    window: str = "hann",
    detrend: bool = True,
) -> Spectrum:
    """Compute the magnitude spectrum of a uniformly sampled trace.

    Parameters
    ----------
    values:
        Trace samples, one per polling period.
    period_ms:
        The scope polling period (sampling interval) in milliseconds.
    window:
        Taper applied before the FFT: ``rect``, ``hann`` (default),
        ``hamming`` or ``blackman``.  Windowing reduces leakage from the
        finite, unsynchronised capture a scope trace is.
    detrend:
        Remove the mean first so the DC component does not swamp the
        display scale.
    """
    if period_ms <= 0:
        raise ValueError(f"period must be positive: {period_ms}")
    if window not in _WINDOWS:
        raise ValueError(f"unknown window {window!r}; options: {sorted(_WINDOWS)}")
    data = np.asarray(list(values), dtype=float)
    if data.size < 2:
        raise ValueError("need at least two samples for a spectrum")
    if detrend:
        data = data - data.mean()
    taper = _WINDOWS[window](data.size)
    tapered = data * taper
    mags = np.abs(np.fft.rfft(tapered))
    # Normalise so a unit-amplitude sine reports magnitude ~1 regardless
    # of trace length or window choice.
    scale = taper.sum() / 2.0
    if scale > 0:
        mags = mags / scale
    sample_rate_hz = 1000.0 / period_ms
    freqs = np.fft.rfftfreq(data.size, d=period_ms / 1000.0)
    return Spectrum(freqs_hz=freqs, magnitudes=mags, sample_rate_hz=sample_rate_hz)


def band_power(spec: Spectrum, lo_hz: float, hi_hz: float) -> float:
    """Total squared magnitude within ``[lo_hz, hi_hz]``."""
    if hi_hz < lo_hz:
        raise ValueError(f"band is empty: [{lo_hz}, {hi_hz}]")
    mask = (spec.freqs_hz >= lo_hz) & (spec.freqs_hz <= hi_hz)
    return float(np.sum(spec.magnitudes[mask] ** 2))


def top_components(spec: Spectrum, n: int = 3) -> List[Tuple[float, float]]:
    """The ``n`` strongest non-DC (frequency, magnitude) components."""
    if n <= 0:
        return []
    order = np.argsort(spec.magnitudes[1:])[::-1][:n]
    return [
        (float(spec.freqs_hz[i + 1]), float(spec.magnitudes[i + 1])) for i in order
    ]
