"""Frequency-domain signal views.

Section 1 lists "time and frequency representation of signals" among
gscope's features and Section 3.1 notes that "polled signals can be
displayed in the time or frequency domain".  The scope samples at a fixed
polling period, so a trace is a uniformly sampled series and a real FFT
gives its spectrum directly; the sampling rate is ``1000 / period_ms`` Hz
and the spectrum extends to the Nyquist frequency, half of that.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Spectrum:
    """Magnitude spectrum of a scope trace."""

    freqs_hz: np.ndarray
    magnitudes: np.ndarray
    sample_rate_hz: float

    @property
    def nyquist_hz(self) -> float:
        return self.sample_rate_hz / 2.0

    def peak(self) -> Tuple[float, float]:
        """(frequency, magnitude) of the strongest non-DC component."""
        if len(self.freqs_hz) < 2:
            raise ValueError("spectrum too short to have a non-DC peak")
        idx = 1 + int(np.argmax(self.magnitudes[1:]))
        return float(self.freqs_hz[idx]), float(self.magnitudes[idx])

    def dominant_period_ms(self) -> float:
        """Period of the strongest component, in milliseconds."""
        freq, _ = self.peak()
        if freq <= 0:
            raise ValueError("no oscillating component found")
        return 1000.0 / freq


_WINDOWS = {
    "rect": lambda n: np.ones(n),
    "hann": np.hanning,
    "hamming": np.hamming,
    "blackman": np.blackman,
}


@lru_cache(maxsize=128)
def _window(name: str, n: int) -> np.ndarray:
    """The taper array for ``(name, n)``, computed once and frozen.

    A scope repaints the same-length spectrum every refresh; recomputing
    a Hann window per frame cost more than the rFFT it fed.  Cached
    arrays are marked read-only so a caller cannot corrupt the cache.
    """
    taper = np.asarray(_WINDOWS[name](n), dtype=np.float64)
    taper.setflags(write=False)
    return taper


@lru_cache(maxsize=128)
def _window_scale(name: str, n: int) -> float:
    """``taper.sum() / 2`` — the unit-sine normalisation for the window."""
    return float(_window(name, n).sum()) / 2.0


@lru_cache(maxsize=128)
def _rfft_freqs(n: int, d_s: float) -> np.ndarray:
    """Frozen ``rfftfreq`` bins for an ``n``-sample trace at spacing ``d_s``."""
    freqs = np.fft.rfftfreq(n, d=d_s)
    freqs.setflags(write=False)
    return freqs


# Scratch buffers for the detrend+taper product, reused across repeated
# same-length traces so the per-refresh spectrum allocates only the rFFT
# output.  Keyed by length; bounded so pathological length churn cannot
# grow it without limit.
_SCRATCH: Dict[int, np.ndarray] = {}
_SCRATCH_LIMIT = 8


def _scratch(n: int) -> np.ndarray:
    buf = _SCRATCH.get(n)
    if buf is None:
        if len(_SCRATCH) >= _SCRATCH_LIMIT:
            _SCRATCH.clear()
        _SCRATCH[n] = buf = np.empty(n, dtype=np.float64)
    return buf


def spectrum(
    values: Sequence[float],
    period_ms: float,
    window: str = "hann",
    detrend: bool = True,
) -> Spectrum:
    """Compute the magnitude spectrum of a uniformly sampled trace.

    Parameters
    ----------
    values:
        Trace samples, one per polling period.
    period_ms:
        The scope polling period (sampling interval) in milliseconds.
    window:
        Taper applied before the FFT: ``rect``, ``hann`` (default),
        ``hamming`` or ``blackman``.  Windowing reduces leakage from the
        finite, unsynchronised capture a scope trace is.
    detrend:
        Remove the mean first so the DC component does not swamp the
        display scale.
    """
    if period_ms <= 0:
        raise ValueError(f"period must be positive: {period_ms}")
    if window not in _WINDOWS:
        raise ValueError(f"unknown window {window!r}; options: {sorted(_WINDOWS)}")
    values_array = getattr(values, "values_array", None)
    if values_array is not None:
        values = values_array()  # TraceRing / Channel column, no list copy
    elif not hasattr(values, "__len__"):
        values = list(values)  # consume one-shot iterables exactly once
    data = np.asarray(values, dtype=np.float64)
    if data.ndim != 1:
        raise ValueError(f"trace must be 1-D, got shape {data.shape}")
    if data.size < 2:
        raise ValueError("need at least two samples for a spectrum")
    n = data.size
    taper = _window(window, n)
    buf = _scratch(n)
    if detrend:
        np.subtract(data, data.mean(), out=buf)
        np.multiply(buf, taper, out=buf)
    else:
        np.multiply(data, taper, out=buf)
    mags = np.abs(np.fft.rfft(buf))
    # Normalise so a unit-amplitude sine reports magnitude ~1 regardless
    # of trace length or window choice.
    scale = _window_scale(window, n)
    if scale > 0:
        mags /= scale
    sample_rate_hz = 1000.0 / period_ms
    freqs = _rfft_freqs(n, period_ms / 1000.0)
    return Spectrum(freqs_hz=freqs, magnitudes=mags, sample_rate_hz=sample_rate_hz)


def band_power(spec: Spectrum, lo_hz: float, hi_hz: float) -> float:
    """Total squared magnitude within ``[lo_hz, hi_hz]``."""
    if hi_hz < lo_hz:
        raise ValueError(f"band is empty: [{lo_hz}, {hi_hz}]")
    mask = (spec.freqs_hz >= lo_hz) & (spec.freqs_hz <= hi_hz)
    return float(np.sum(spec.magnitudes[mask] ** 2))


def top_components(spec: Spectrum, n: int = 3) -> List[Tuple[float, float]]:
    """The ``n`` strongest non-DC (frequency, magnitude) components."""
    if n <= 0:
        return []
    order = np.argsort(spec.magnitudes[1:])[::-1][:n]
    return [
        (float(spec.freqs_hz[i + 1]), float(spec.magnitudes[i + 1])) for i in order
    ]
