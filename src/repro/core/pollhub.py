"""Poll coalescing: one loop timeout driving many scopes.

The paper's manager runs "multiple scopes" off one GTK main loop; with a
timer source per scope, a dashboard of N scopes costs the loop N timer
entries all firing at the same period.  The hub collapses them: scopes
subscribing with the same period *and the same start instant* share a
single :class:`~repro.eventloop.sources.TimeoutSource`, and the hub fans
each tick (with its Section 4.5 ``lost`` count) out to every subscriber.

Keying groups by ``(period_ms, start_ms)`` rather than period alone is
what keeps the semantics exact: a private timer's first dispatch comes
one full period after :meth:`subscribe`, so only subscribers that start
at the same clock instant can share a phase.  ``ScopeManager.start_all``
starts every scope at one instant, which is precisely the case that used
to cost one timer per scope and now costs one timer per distinct period.

Subscribers within a group are dispatched in subscription order, which
matches the (priority, id) dispatch order their private timers would
have had (same priority, ids in attach order).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.eventloop.loop import MainLoop

PollCallback = Callable[[int], object]
"""Receives the tick's lost-interval count, like a ``timeout_add``
callback, and follows the same glib convention: return truthy to stay
subscribed, falsy to be unsubscribed."""


class PollSubscription:
    """Handle returned by :meth:`PollHub.subscribe`; detach via the hub."""

    __slots__ = ("group", "token", "period_ms")

    def __init__(self, group: "_PollGroup", token: int, period_ms: float) -> None:
        self.group = group
        self.token = token
        self.period_ms = period_ms


class _PollGroup:
    """One shared timer and its subscriber registry."""

    __slots__ = ("hub", "key", "timer_id", "subscribers", "_next_token")

    def __init__(self, hub: "PollHub", key: Tuple[float, float]) -> None:
        self.hub = hub
        self.key = key
        self.subscribers: Dict[int, PollCallback] = {}
        self._next_token = 0
        self.timer_id = hub.loop.timeout_add(key[0], self._on_tick)

    def add(self, callback: PollCallback) -> int:
        token = self._next_token
        self._next_token += 1
        self.subscribers[token] = callback
        return token

    def discard(self, token: int) -> None:
        self.subscribers.pop(token, None)
        if not self.subscribers:
            self.hub.loop.remove(self.timer_id)
            self.hub._groups.pop(self.key, None)

    def _on_tick(self, lost: int) -> bool:
        # Snapshot: a callback may unsubscribe itself or a sibling; the
        # membership check keeps an unsubscribed sibling from ticking.
        for token, callback in list(self.subscribers.items()):
            if token in self.subscribers and not callback(lost):
                self.discard(token)  # glib falsy-return removal
        return bool(self.subscribers)


class PollHub:
    """Per-loop registry of coalesced polling groups."""

    __slots__ = ("loop", "_groups")

    def __init__(self, loop: MainLoop) -> None:
        self.loop = loop
        self._groups: Dict[Tuple[float, float], _PollGroup] = {}

    @classmethod
    def of(cls, loop: MainLoop) -> "PollHub":
        """The loop's hub, created on first use."""
        hub = getattr(loop, "_poll_hub", None)
        if hub is None:
            hub = cls(loop)
            loop._poll_hub = hub  # type: ignore[attr-defined]
        return hub

    def subscribe(self, period_ms: float, callback: PollCallback) -> PollSubscription:
        """Join (or create) the group for ``period_ms`` starting now."""
        key = (float(period_ms), self.loop.clock.now())
        group = self._groups.get(key)
        if group is None:
            group = _PollGroup(self, key)
            self._groups[key] = group
        return PollSubscription(group, group.add(callback), float(period_ms))

    def unsubscribe(self, subscription: PollSubscription) -> None:
        """Leave a group; the shared timer is removed with its last member."""
        subscription.group.discard(subscription.token)

    @property
    def timer_count(self) -> int:
        """Live shared timers — the coalescing win is subscribers minus this."""
        return len(self._groups)

    @property
    def subscriber_count(self) -> int:
        return sum(len(g.subscribers) for g in self._groups.values())
