"""Metric cells: the primitive counters/gauges/histograms.

These are plain data holders with no policy attached — the
self-instrumentation plane (:mod:`repro.obs`) mounts them into a
registry and publishes them, but the cells themselves live here, in
the dependency-free core, because bridged subsystem statistics
(:class:`~repro.net.shard.ShardStats` and friends) are **load-bearing
public API**: they must keep counting even in a build where
``repro.obs`` is never imported.

Hot-path contract: ``Counter.inc`` is one Python integer add on a
``__slots__`` cell; ``Gauge.set`` one float store.  ``Histogram.observe``
is a ``searchsorted`` over a small bounds array — per-batch/per-flush
cost, keep it off per-sample paths.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

DEFAULT_BOUNDS = (0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0)


class Counter:
    """Monotonic event count.  ``inc()`` is one integer add."""

    __slots__ = ("name", "value", "wall")

    kind = "counter"

    def __init__(self, name: str = "", wall: bool = False) -> None:
        self.name = name
        self.value = 0
        self.wall = wall

    def inc(self, n: int = 1) -> None:
        self.value += n

    def read(self) -> float:
        return float(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """Point-in-time level: set directly or computed by a callback.

    A callback gauge (``Gauge(fn=...)``) is evaluated at read/publish
    time, so mounting one costs the instrumented object nothing until
    somebody actually looks.
    """

    __slots__ = ("name", "value", "fn", "wall")

    kind = "gauge"

    def __init__(
        self,
        name: str = "",
        fn: Optional[Callable[[], float]] = None,
        wall: bool = False,
    ) -> None:
        self.name = name
        self.value = 0.0
        self.fn = fn
        self.wall = wall

    def set(self, value: float) -> None:
        self.value = float(value)

    def read(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.read()})"


class Histogram:
    """Fixed-bound histogram with numpy bucket counts.

    Publishes as two counter-like series, ``<name>.count`` and
    ``<name>.sum``; full bucket counts are available via registry
    snapshots for ``repro top``.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "sum", "wall")

    kind = "histogram"

    def __init__(
        self,
        name: str = "",
        bounds: Tuple[float, ...] = DEFAULT_BOUNDS,
        wall: bool = False,
    ) -> None:
        self.name = name
        self.bounds = np.asarray(bounds, dtype=np.float64)
        if self.bounds.ndim != 1 or len(self.bounds) == 0:
            raise ValueError("histogram bounds must be a non-empty 1-D sequence")
        if np.any(np.diff(self.bounds) <= 0):
            raise ValueError("histogram bounds must be strictly increasing")
        # One overflow bucket past the last bound.
        self.buckets = np.zeros(len(self.bounds) + 1, dtype=np.int64)
        self.count = 0
        self.sum = 0.0
        self.wall = wall

    def observe(self, value: float) -> None:
        self.buckets[int(np.searchsorted(self.bounds, value))] += 1
        self.count += 1
        self.sum += value

    def read(self) -> float:
        return float(self.count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count}, sum={self.sum})"


class _NullInstrument:
    """Shared no-op stand-in for every cell kind.

    Disabled-instrumentation sites bind to this singleton so the cost
    of an instrumented line is one no-op method call — and hot loops
    that gate on ``cell is NULL`` pay only a pointer compare.
    """

    __slots__ = ()

    kind = "null"
    name = ""
    wall = False
    value = 0
    count = 0
    sum = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def read(self) -> float:
        return 0.0


NULL = _NullInstrument()
