"""Event aggregation between polling intervals (Section 4.2).

Gscope's polling is discrete-time, but many software signals are
event-driven (packet arrivals, context switches, frame decodes).  Rather
than requiring a poll per event, gscope aggregates the events that arrive
within each polling interval and displays one aggregate value per poll.
The paper lists seven aggregation functions, each illustrated with a
network example:

=============  =====================================================
Maximum        maximum sample, e.g. latency
Minimum        minimum sample, e.g. latency
Sum            sum of sample values, e.g. bytes received
Rate           sum / polling period, e.g. bandwidth in bytes/second
Average        sum / number of events, e.g. bytes per packet
Events         number of events, e.g. number of packets
AnyEvent       did any event occur, e.g. any packet arrived?
=============  =====================================================

An aggregator accumulates via :meth:`Aggregator.add` (or the vectorised
:meth:`Aggregator.add_many`) and is drained once per poll via
:meth:`Aggregator.collect`, which also resets it for the next interval.

All seven functions are expressible over four running scalars — count,
sum, min, max — so the accumulator is allocation-free: adding an event
updates four floats in place instead of appending to a list, which keeps
the per-event overhead flat no matter how many events land in an
interval (the paper's Section 5 low-overhead claim lives or dies on this
path).
"""

from __future__ import annotations

import enum
import math
from typing import Optional, Sequence, Union

import numpy as np

ArrayLike = Union[Sequence[float], np.ndarray]


class AggregateKind(enum.Enum):
    """Selector for the seven aggregation functions of Section 4.2."""

    MAXIMUM = "maximum"
    MINIMUM = "minimum"
    SUM = "sum"
    RATE = "rate"
    AVERAGE = "average"
    EVENTS = "events"
    ANY_EVENT = "any_event"


class Aggregator:
    """Base class: accumulate events, emit one value per polling interval.

    ``collect`` returns ``None`` when no event arrived and the aggregate
    has no natural empty value (max/min/average); the channel then holds
    the previous displayed value, which matches the sample-and-hold
    discipline of Section 4.2.
    """

    __slots__ = ("_count", "_sum", "_min", "_max")

    kind: AggregateKind

    def __init__(self) -> None:
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float = 1.0) -> None:
        """Record one event sample — O(1), zero allocation.

        NaN events poison the running min/max (``v != v`` branch), so a
        corrupt value surfaces at collect time instead of being silently
        ignored by the comparisons.
        """
        v = float(value)
        self._count += 1
        self._sum += v
        if v < self._min or v != v:
            self._min = v
        if v > self._max or v != v:
            self._max = v

    def add_many(self, values: ArrayLike) -> None:
        """Record a batch of event samples with one vectorised pass."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"add_many expects a 1-D batch, got shape {arr.shape}")
        if arr.shape[0] == 0:
            return
        self._count += arr.shape[0]
        self._sum += float(arr.sum())
        lo = float(arr.min())  # ndarray.min/max propagate NaN
        hi = float(arr.max())
        if lo < self._min or lo != lo:
            self._min = lo
        if hi > self._max or hi != hi:
            self._max = hi

    @property
    def pending(self) -> int:
        """Number of events recorded since the last collect."""
        return self._count

    def collect(self, period_ms: float) -> Optional[float]:
        """Return the aggregate over the interval and reset for the next."""
        count, total = self._count, self._sum
        lo, hi = self._min, self._max
        self.reset()
        return self._emit(count, total, lo, hi, period_ms)

    def _emit(
        self, count: int, total: float, lo: float, hi: float, period_ms: float
    ) -> Optional[float]:
        raise NotImplementedError

    def reset(self) -> None:
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def state_dict(self) -> dict:
        """The four running scalars, as plain data (process snapshots)."""
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` capture."""
        self._count = int(state["count"])
        self._sum = float(state["sum"])
        self._min = float(state["min"])
        self._max = float(state["max"])


class _SumCountAggregator(Aggregator):
    """Specialised base for kinds that only need count and sum.

    Skipping the min/max updates keeps the per-event cost below the
    seed's ``list.append`` while staying allocation-free.
    """

    __slots__ = ()

    def add(self, value: float = 1.0) -> None:
        self._count += 1
        self._sum += float(value)

    def add_many(self, values: ArrayLike) -> None:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"add_many expects a 1-D batch, got shape {arr.shape}")
        self._count += arr.shape[0]
        self._sum += float(arr.sum())


class _CountAggregator(Aggregator):
    """Specialised base for kinds that only need the event count."""

    __slots__ = ()

    def add(self, value: float = 1.0) -> None:
        self._count += 1

    def add_many(self, values: ArrayLike) -> None:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"add_many expects a 1-D batch, got shape {arr.shape}")
        self._count += arr.shape[0]


class Maximum(Aggregator):
    """Maximum sample within the interval (e.g. max latency)."""

    __slots__ = ()
    kind = AggregateKind.MAXIMUM

    def _emit(self, count, total, lo, hi, period_ms) -> Optional[float]:
        return hi if count else None


class Minimum(Aggregator):
    """Minimum sample within the interval (e.g. min latency)."""

    __slots__ = ()
    kind = AggregateKind.MINIMUM

    def _emit(self, count, total, lo, hi, period_ms) -> Optional[float]:
        return lo if count else None


class Sum(_SumCountAggregator):
    """Sum of samples within the interval (e.g. bytes received)."""

    __slots__ = ()
    kind = AggregateKind.SUM

    def _emit(self, count, total, lo, hi, period_ms) -> Optional[float]:
        return total


class Rate(_SumCountAggregator):
    """Sum divided by the polling period (e.g. bytes per second).

    The period is supplied in milliseconds; the rate is reported per
    second, matching the paper's bandwidth example.
    """

    __slots__ = ()
    kind = AggregateKind.RATE

    def _emit(self, count, total, lo, hi, period_ms) -> Optional[float]:
        if period_ms <= 0:
            raise ValueError(f"polling period must be positive: {period_ms}")
        return total / (period_ms / 1000.0)


class Average(_SumCountAggregator):
    """Sum divided by the event count (e.g. bytes per packet)."""

    __slots__ = ()
    kind = AggregateKind.AVERAGE

    def _emit(self, count, total, lo, hi, period_ms) -> Optional[float]:
        if not count:
            return None
        return total / count


class Events(_CountAggregator):
    """Number of events in the interval (e.g. number of packets)."""

    __slots__ = ()
    kind = AggregateKind.EVENTS

    def _emit(self, count, total, lo, hi, period_ms) -> Optional[float]:
        return float(count)


class AnyEvent(_CountAggregator):
    """1.0 if any event occurred in the interval, else 0.0."""

    __slots__ = ()
    kind = AggregateKind.ANY_EVENT

    def _emit(self, count, total, lo, hi, period_ms) -> Optional[float]:
        return 1.0 if count else 0.0


_AGGREGATORS = {
    AggregateKind.MAXIMUM: Maximum,
    AggregateKind.MINIMUM: Minimum,
    AggregateKind.SUM: Sum,
    AggregateKind.RATE: Rate,
    AggregateKind.AVERAGE: Average,
    AggregateKind.EVENTS: Events,
    AggregateKind.ANY_EVENT: AnyEvent,
}


def make_aggregator(kind: AggregateKind) -> Aggregator:
    """Instantiate the aggregator for ``kind``."""
    try:
        return _AGGREGATORS[kind]()
    except KeyError:
        raise ValueError(f"unknown aggregate kind: {kind!r}") from None
