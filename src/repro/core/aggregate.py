"""Event aggregation between polling intervals (Section 4.2).

Gscope's polling is discrete-time, but many software signals are
event-driven (packet arrivals, context switches, frame decodes).  Rather
than requiring a poll per event, gscope aggregates the events that arrive
within each polling interval and displays one aggregate value per poll.
The paper lists seven aggregation functions, each illustrated with a
network example:

=============  =====================================================
Maximum        maximum sample, e.g. latency
Minimum        minimum sample, e.g. latency
Sum            sum of sample values, e.g. bytes received
Rate           sum / polling period, e.g. bandwidth in bytes/second
Average        sum / number of events, e.g. bytes per packet
Events         number of events, e.g. number of packets
AnyEvent       did any event occur, e.g. any packet arrived?
=============  =====================================================

An aggregator accumulates via :meth:`Aggregator.add` and is drained once
per poll via :meth:`Aggregator.collect`, which also resets it for the next
interval.
"""

from __future__ import annotations

import enum
from typing import List, Optional


class AggregateKind(enum.Enum):
    """Selector for the seven aggregation functions of Section 4.2."""

    MAXIMUM = "maximum"
    MINIMUM = "minimum"
    SUM = "sum"
    RATE = "rate"
    AVERAGE = "average"
    EVENTS = "events"
    ANY_EVENT = "any_event"


class Aggregator:
    """Base class: accumulate events, emit one value per polling interval.

    ``collect`` returns ``None`` when no event arrived and the aggregate
    has no natural empty value (max/min/average); the channel then holds
    the previous displayed value, which matches the sample-and-hold
    discipline of Section 4.2.
    """

    kind: AggregateKind

    def __init__(self) -> None:
        self._values: List[float] = []

    def add(self, value: float = 1.0) -> None:
        """Record one event sample."""
        self._values.append(float(value))

    @property
    def pending(self) -> int:
        """Number of events recorded since the last collect."""
        return len(self._values)

    def collect(self, period_ms: float) -> Optional[float]:
        """Return the aggregate over the interval and reset for the next."""
        values, self._values = self._values, []
        return self._reduce(values, period_ms)

    def _reduce(self, values: List[float], period_ms: float) -> Optional[float]:
        raise NotImplementedError

    def reset(self) -> None:
        self._values.clear()


class Maximum(Aggregator):
    """Maximum sample within the interval (e.g. max latency)."""

    kind = AggregateKind.MAXIMUM

    def _reduce(self, values: List[float], period_ms: float) -> Optional[float]:
        return max(values) if values else None


class Minimum(Aggregator):
    """Minimum sample within the interval (e.g. min latency)."""

    kind = AggregateKind.MINIMUM

    def _reduce(self, values: List[float], period_ms: float) -> Optional[float]:
        return min(values) if values else None


class Sum(Aggregator):
    """Sum of samples within the interval (e.g. bytes received)."""

    kind = AggregateKind.SUM

    def _reduce(self, values: List[float], period_ms: float) -> Optional[float]:
        return float(sum(values))


class Rate(Aggregator):
    """Sum divided by the polling period (e.g. bytes per second).

    The period is supplied in milliseconds; the rate is reported per
    second, matching the paper's bandwidth example.
    """

    kind = AggregateKind.RATE

    def _reduce(self, values: List[float], period_ms: float) -> Optional[float]:
        if period_ms <= 0:
            raise ValueError(f"polling period must be positive: {period_ms}")
        return float(sum(values)) / (period_ms / 1000.0)


class Average(Aggregator):
    """Sum divided by the event count (e.g. bytes per packet)."""

    kind = AggregateKind.AVERAGE

    def _reduce(self, values: List[float], period_ms: float) -> Optional[float]:
        if not values:
            return None
        return float(sum(values)) / len(values)


class Events(Aggregator):
    """Number of events in the interval (e.g. number of packets)."""

    kind = AggregateKind.EVENTS

    def _reduce(self, values: List[float], period_ms: float) -> Optional[float]:
        return float(len(values))


class AnyEvent(Aggregator):
    """1.0 if any event occurred in the interval, else 0.0."""

    kind = AggregateKind.ANY_EVENT

    def _reduce(self, values: List[float], period_ms: float) -> Optional[float]:
        return 1.0 if values else 0.0


_AGGREGATORS = {
    AggregateKind.MAXIMUM: Maximum,
    AggregateKind.MINIMUM: Minimum,
    AggregateKind.SUM: Sum,
    AggregateKind.RATE: Rate,
    AggregateKind.AVERAGE: Average,
    AggregateKind.EVENTS: Events,
    AggregateKind.ANY_EVENT: AnyEvent,
}


def make_aggregator(kind: AggregateKind) -> Aggregator:
    """Instantiate the aggregator for ``kind``."""
    try:
        return _AGGREGATORS[kind]()
    except KeyError:
        raise ValueError(f"unknown aggregate kind: {kind!r}") from None
