"""Per-signal low-pass filter (Section 3.1).

The paper specifies a one-pole IIR filter::

    y_i = alpha * y_{i-1} + (1 - alpha) * x_i

with ``alpha`` ranging from 0 (default, unfiltered — the output equals the
input) to 1.  At ``alpha == 1`` the filter holds its initial output
forever, so gscope treats it as the heaviest smoothing available.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

try:  # scipy ships in the toolchain image; gate it for lean installs
    from scipy.signal import lfilter as _lfilter
except ImportError:  # pragma: no cover - exercised only without scipy
    _lfilter = None

ArrayLike = Union[Sequence[float], np.ndarray]


class LowPassFilter:
    """Stateful one-pole low-pass filter.

    The first sample initialises the state (``y_0 = x_0``), which avoids
    the startup transient a zero-initialised filter would show — the scope
    displays the signal's real level from the first poll.
    """

    def __init__(self, alpha: float = 0.0) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"filter alpha must be in [0, 1]: {alpha}")
        self.alpha = float(alpha)
        self._y: Optional[float] = None

    def __call__(self, x: float) -> float:
        return self.apply(x)

    def apply(self, x: float) -> float:
        """Filter one sample and return the filtered value."""
        x = float(x)
        if not math.isfinite(x):
            raise ValueError(f"filter input must be finite: {x}")
        if self._y is None or self.alpha == 0.0:
            self._y = x
        else:
            self._y = self.alpha * self._y + (1.0 - self.alpha) * x
        return self._y

    def apply_all(self, xs: Iterable[float]) -> List[float]:
        """Filter a whole sequence, returning the filtered sequence."""
        return [self.apply(x) for x in xs]

    def apply_many(self, xs: ArrayLike) -> np.ndarray:
        """Filter a batch and return the filtered batch as ``float64``.

        Vectorised over the whole batch: the unfiltered (``alpha == 0``)
        and hold (``alpha == 1``) cases are plain array ops, and the
        general one-pole recursion runs through ``scipy.signal.lfilter``
        when scipy is available (a tight C scan) with a Python scan as
        fallback.  State carries across calls exactly as with
        :meth:`apply` called per sample.
        """
        x = np.asarray(xs, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError(f"apply_many expects a 1-D batch, got shape {x.shape}")
        n = x.shape[0]
        if n == 0:
            return x.copy()
        if not np.isfinite(x).all():
            bad = x[~np.isfinite(x)][0]
            raise ValueError(f"filter input must be finite: {bad}")
        a = self.alpha
        if a == 0.0 or (self._y is None and n == 1):
            self._y = float(x[-1])
            return x.copy()
        if a == 1.0:
            y0 = float(x[0]) if self._y is None else self._y
            self._y = y0
            return np.full(n, y0, dtype=np.float64)
        out = np.empty(n, dtype=np.float64)
        if self._y is None:
            out[0] = x[0]  # first sample initialises the state
            y_prev, start = float(x[0]), 1
        else:
            y_prev, start = self._y, 0
        if _lfilter is not None:
            out[start:], _ = _lfilter(
                [1.0 - a], [1.0, -a], x[start:], zi=np.array([a * y_prev])
            )
        else:
            y = y_prev
            for i in range(start, n):
                y = a * y + (1.0 - a) * x[i]
                out[i] = y
        self._y = float(out[-1])
        return out

    @property
    def value(self) -> Optional[float]:
        """Current filter output (None before the first sample)."""
        return self._y

    def reset(self) -> None:
        """Forget all state; the next sample re-initialises the filter."""
        self._y = None

    def state_dict(self) -> dict:
        """Filter coefficients and state as plain data (process snapshots)."""
        return {"alpha": self.alpha, "y": self._y}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` capture."""
        self.alpha = float(state["alpha"])
        y = state["y"]
        self._y = None if y is None else float(y)

    def settling_samples(self, fraction: float = 0.01) -> int:
        """Number of samples for a step input to settle within ``fraction``.

        Useful when choosing ``alpha`` for a given polling period: the
        filter's step response decays as ``alpha**n``.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1): {fraction}")
        if self.alpha == 0.0:
            return 0
        if self.alpha == 1.0:
            raise ValueError("alpha == 1 never settles")
        return max(0, math.ceil(math.log(fraction) / math.log(self.alpha)))
