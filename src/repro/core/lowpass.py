"""Per-signal low-pass filter (Section 3.1).

The paper specifies a one-pole IIR filter::

    y_i = alpha * y_{i-1} + (1 - alpha) * x_i

with ``alpha`` ranging from 0 (default, unfiltered — the output equals the
input) to 1.  At ``alpha == 1`` the filter holds its initial output
forever, so gscope treats it as the heaviest smoothing available.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional


class LowPassFilter:
    """Stateful one-pole low-pass filter.

    The first sample initialises the state (``y_0 = x_0``), which avoids
    the startup transient a zero-initialised filter would show — the scope
    displays the signal's real level from the first poll.
    """

    def __init__(self, alpha: float = 0.0) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"filter alpha must be in [0, 1]: {alpha}")
        self.alpha = float(alpha)
        self._y: Optional[float] = None

    def __call__(self, x: float) -> float:
        return self.apply(x)

    def apply(self, x: float) -> float:
        """Filter one sample and return the filtered value."""
        x = float(x)
        if not math.isfinite(x):
            raise ValueError(f"filter input must be finite: {x}")
        if self._y is None or self.alpha == 0.0:
            self._y = x
        else:
            self._y = self.alpha * self._y + (1.0 - self.alpha) * x
        return self._y

    def apply_all(self, xs: Iterable[float]) -> List[float]:
        """Filter a whole sequence, returning the filtered sequence."""
        return [self.apply(x) for x in xs]

    @property
    def value(self) -> Optional[float]:
        """Current filter output (None before the first sample)."""
        return self._y

    def reset(self) -> None:
        """Forget all state; the next sample re-initialises the filter."""
        self._y = None

    def settling_samples(self, fraction: float = 0.01) -> int:
        """Number of samples for a step input to settle within ``fraction``.

        Useful when choosing ``alpha`` for a given polling period: the
        filter's step response decays as ``alpha**n``.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1): {fraction}")
        if self.alpha == 0.0:
            return 0
        if self.alpha == 1.0:
            raise ValueError("alpha == 1 never settles")
        return max(0, math.ceil(math.log(fraction) / math.log(self.alpha)))
