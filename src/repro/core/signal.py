"""Signal specification — the Python port of ``GtkScopeSig``.

Section 3.1 of the paper defines a signal as a name plus a typed data
source::

    typedef struct {
        char *name;                /* signal name */
        GtkScopeSigData signal;    /* signal data */
        /* color, min, max, line, hidden, filter */
    } GtkScopeSig;

The signal type is one of ``INTEGER``, ``BOOLEAN``, ``SHORT``, ``FLOAT``,
``FUNC`` or ``BUFFER``:

* the four scalar types poll a word of application memory — in C a
  pointer, here a :class:`Cell` (or any object with a ``value``
  attribute);
* ``FUNC`` invokes a user function with two user arguments and uses the
  return value as the sample;
* ``BUFFER`` marks the signal as buffered: samples are pushed with
  timestamps into the scope-wide buffer and displayed after a delay.

The optional fields carry the per-signal display parameters: color,
displayed min/max (for default zoom and bias), line mode, hidden flag and
the low-pass filter coefficient ``alpha`` in [0, 1] (0 = unfiltered).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.aggregate import AggregateKind

SHORT_MIN = -(2**15)
SHORT_MAX = 2**15 - 1


class SignalType(enum.Enum):
    """The ``GtkScopeSigData`` union discriminator (Section 3.1)."""

    INTEGER = "integer"
    BOOLEAN = "boolean"
    SHORT = "short"
    FLOAT = "float"
    FUNC = "func"
    BUFFER = "buffer"

    @property
    def buffered(self) -> bool:
        """Buffered signals read from the scope-wide sample buffer."""
        return self is SignalType.BUFFER


class LineMode(enum.Enum):
    """How a trace is drawn on the canvas (the spec's ``line`` field)."""

    LINE = "line"  # connect successive samples
    POINTS = "points"  # one pixel per sample
    STEP = "step"  # sample-and-hold staircase


class Cell:
    """A mutable word of memory the scope can poll.

    The C library stores ``int *``/``float *`` pointers; Python has no
    pointers, so applications share a :class:`Cell` with the scope and
    assign ``cell.value`` whenever the quantity changes.  Any object with
    a ``value`` attribute works in its place.
    """

    __slots__ = ("value",)

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Cell({self.value!r})"


def _coerce(sig_type: SignalType, raw: Any) -> float:
    """Coerce a polled value the way the C union field widths would."""
    if sig_type is SignalType.BOOLEAN:
        return 1.0 if raw else 0.0
    if sig_type is SignalType.INTEGER:
        return float(int(raw))
    if sig_type is SignalType.SHORT:
        clipped = max(SHORT_MIN, min(SHORT_MAX, int(raw)))
        return float(clipped)
    return float(raw)


@dataclass
class SignalSpec:
    """Python equivalent of ``GtkScopeSig`` (Section 3.1).

    Only ``name`` and the source description are mandatory; everything
    else mirrors the struct's optional fields with the paper's defaults
    (the y ruler runs 0..100, filter defaults to 0 = unfiltered, signals
    start visible).

    ``aggregate`` selects one of the Section 4.2 event-aggregation
    functions for event-driven use: the application reports events via
    :meth:`repro.core.channel.Channel.event` and each poll displays the
    aggregate over the elapsed interval.
    """

    name: str
    type: SignalType = SignalType.FLOAT
    cell: Optional[Any] = None
    func: Optional[Callable[[Any, Any], float]] = None
    arg1: Any = None
    arg2: Any = None
    color: Optional[str] = None
    min: float = 0.0
    max: float = 100.0
    line: LineMode = LineMode.LINE
    hidden: bool = False
    filter: float = 0.0
    aggregate: Optional[AggregateKind] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("signal name must be non-empty")
        if not 0.0 <= self.filter <= 1.0:
            raise ValueError(f"filter alpha must be in [0, 1]: {self.filter}")
        if self.max <= self.min:
            raise ValueError(
                f"signal {self.name!r}: max ({self.max}) must exceed min ({self.min})"
            )
        if self.type is SignalType.FUNC:
            if self.func is None:
                raise ValueError(f"signal {self.name!r}: FUNC type requires func")
        elif self.type is SignalType.BUFFER:
            pass  # data arrives via the scope-wide buffer
        elif self.cell is None and self.aggregate is None:
            raise ValueError(
                f"signal {self.name!r}: scalar type requires a cell to poll"
            )

    def read(self) -> float:
        """Poll the signal source once and return the sample value.

        Valid for unbuffered signals only; ``BUFFER`` signals receive
        their data through :class:`repro.core.buffer.SampleBuffer`.
        """
        if self.type is SignalType.BUFFER:
            raise TypeError(f"signal {self.name!r} is buffered; push samples instead")
        if self.type is SignalType.FUNC:
            assert self.func is not None
            return float(self.func(self.arg1, self.arg2))
        if self.cell is None:
            raise TypeError(f"signal {self.name!r} has no cell to poll")
        return _coerce(self.type, self.cell.value)

    @property
    def span(self) -> float:
        """Displayed value range at default zoom and bias."""
        return self.max - self.min


def memory_signal(
    name: str,
    cell: Any,
    sig_type: SignalType = SignalType.INTEGER,
    **kwargs: Any,
) -> SignalSpec:
    """Build a polled-memory signal (the ``elephants`` example in §3.1)."""
    if sig_type in (SignalType.FUNC, SignalType.BUFFER):
        raise ValueError(f"memory signal cannot have type {sig_type}")
    return SignalSpec(name=name, type=sig_type, cell=cell, **kwargs)


def func_signal(
    name: str,
    func: Callable[[Any, Any], float],
    arg1: Any = None,
    arg2: Any = None,
    **kwargs: Any,
) -> SignalSpec:
    """Build a callback signal (the ``CWND``/``get_cwnd`` example in §3.1)."""
    return SignalSpec(
        name=name, type=SignalType.FUNC, func=func, arg1=arg1, arg2=arg2, **kwargs
    )


def buffer_signal(name: str, **kwargs: Any) -> SignalSpec:
    """Build a buffered signal fed through the scope-wide sample buffer."""
    return SignalSpec(name=name, type=SignalType.BUFFER, **kwargs)
