"""Core gscope library — the paper's primary contribution.

This package is a faithful Python port of the gscope C API described in
Sections 2-4 of the paper:

* :mod:`repro.core.signal` — the ``GtkScopeSig`` signal specification:
  name, data source (polled memory word, callback function, or timestamped
  buffer) and the optional per-signal parameters (color, min, max, line
  mode, hidden, filter).
* :mod:`repro.core.lowpass` — the per-signal low-pass filter
  ``y_i = a*y_{i-1} + (1-a)*x_i`` (Section 3.1).
* :mod:`repro.core.aggregate` — the seven event-aggregation functions of
  Section 4.2 (Maximum, Minimum, Sum, Rate, Average, Events, AnyEvent).
* :mod:`repro.core.buffer` — the scope-wide timestamped sample buffer with
  user-specified display delay and late-drop semantics (Sections 3.1, 4.4).
* :mod:`repro.core.channel` — runtime per-signal state (the library's
  ``GtkScopeSignal`` object).
* :mod:`repro.core.scope` — the scope itself: polling and playback
  acquisition, sampling period, zoom/bias, dynamic signal add/remove,
  lost-timeout compensation, recording.
* :mod:`repro.core.params` — the ``GtkScopeParameter`` control-parameter
  interface (Section 3.2).
* :mod:`repro.core.tuples` — the textual ``time value [name]`` tuple
  format used for streaming, recording and replay (Section 3.3).
* :mod:`repro.core.frequency` — frequency-domain signal views.
* :mod:`repro.core.trigger` — triggers and waveform envelopes (built from
  the paper's Future Work list, Section 6).
* :mod:`repro.core.manager` — multiple scopes on a single main loop.
"""

from repro.core.aggregate import AggregateKind, make_aggregator
from repro.core.buffer import SampleBuffer
from repro.core.channel import Channel
from repro.core.lowpass import LowPassFilter
from repro.core.manager import ScopeManager
from repro.core.params import ControlParameter, ParameterStore
from repro.core.scope import AcquisitionMode, Scope
from repro.core.signal import (
    Cell,
    LineMode,
    SignalSpec,
    SignalType,
    buffer_signal,
    func_signal,
    memory_signal,
)
from repro.core.tuples import Player, Recorder, Tuple3, format_tuple, parse_tuple

__all__ = [
    "AcquisitionMode",
    "AggregateKind",
    "Cell",
    "Channel",
    "ControlParameter",
    "LineMode",
    "LowPassFilter",
    "ParameterStore",
    "Player",
    "Recorder",
    "SampleBuffer",
    "Scope",
    "ScopeManager",
    "SignalSpec",
    "SignalType",
    "Tuple3",
    "buffer_signal",
    "format_tuple",
    "func_signal",
    "make_aggregator",
    "memory_signal",
    "parse_tuple",
]
