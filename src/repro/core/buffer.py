"""The scope-wide timestamped sample buffer (Sections 3.1 and 4.4).

Buffered (``BUFFER``-type) signals decouple data *collection* from data
*display*: the application (or a remote client, via the client-server
library) enqueues ``(time, value, name)`` samples, and the scope drains
the buffer on each poll, displaying each sample once the user-specified
delay has elapsed after the sample's timestamp.

Two rules from the paper govern the buffer:

* **Display delay** — a sample stamped ``t`` becomes displayable at wall
  time ``t + delay`` (Section 3.1: "gscope displays these samples with a
  user-specified delay").
* **Late drop** — "Data arriving at the server after this delay is not
  buffered but dropped immediately" (Section 4.4): a sample whose display
  time has already passed when it is pushed is discarded, because the
  scope has already painted that x position.

Columnar layout
---------------

The buffer is a struct-of-arrays store, not a heap of objects: parallel
``float64`` columns for time and value, an ``int64`` sequence column (the
push-order tie-break) and an interned name-id column.  The active region
``[head, tail)`` of the columns is split into a sorted run
``[head, sorted_end)`` (ordered by ``(time, seq)``) and an unsorted
append tail ``[sorted_end, tail)``.  Producers that push in time order —
the overwhelmingly common case — extend the sorted run directly, so both
:meth:`SampleBuffer.push_many` and :meth:`SampleBuffer.pop_due_arrays`
are O(1) amortised per sample with no per-sample Python objects.
Out-of-order arrivals land in the append tail and are merged with one
vectorised ``lexsort`` at the next pop/peek/evict.

The scalar :meth:`push` / :meth:`pop_due` API is a thin wrapper over the
bulk path and preserves the seed semantics exactly: the same late-drop
comparison (``now > time + delay``), the same oldest-first capacity
eviction, and the same ``(time, seq)`` pop order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[Sequence[float], np.ndarray]

_MIN_ALLOC = 16


@dataclass(frozen=True, order=True)
class Sample:
    """One timestamped sample of a named signal."""

    time_ms: float
    seq: int = field(compare=True)
    name: str = field(compare=False)
    value: float = field(compare=False)


@dataclass
class BufferStats:
    """Counters for buffer behaviour, exposed for tests and benchmarks."""

    pushed: int = 0
    dropped_late: int = 0
    evicted: int = 0
    popped: int = 0

    @property
    def buffered(self) -> int:
        """Samples currently held (accepted minus drained/evicted)."""
        return self.pushed - self.dropped_late - self.evicted - self.popped


class SampleBuffer:
    """Columnar sample store with delay/late-drop semantics.

    Parameters
    ----------
    delay_ms:
        The user-specified display delay.  Larger delays tolerate more
        collection/transmission jitter at the cost of display latency.
    capacity:
        Optional bound on buffered samples; pushing past it drops the
        *oldest* buffered sample first (the scope would have displayed it
        soonest, and fresh data is more valuable on a live display).
    """

    def __init__(self, delay_ms: float = 0.0, capacity: Optional[int] = None) -> None:
        if delay_ms < 0:
            raise ValueError(f"delay must be non-negative: {delay_ms}")
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.delay_ms = float(delay_ms)
        self.capacity = capacity
        alloc = _MIN_ALLOC if capacity is None else min(max(capacity, _MIN_ALLOC), 4096)
        self._times = np.empty(alloc, dtype=np.float64)
        self._values = np.empty(alloc, dtype=np.float64)
        self._seqs = np.empty(alloc, dtype=np.int64)
        self._ids = np.empty(alloc, dtype=np.int64)
        self._head = 0  # start of the active region
        self._sorted_end = 0  # [head, sorted_end) is sorted by (time, seq)
        self._tail = 0  # end of the active region
        self._next_seq = 0
        self._id_of_name: Dict[str, int] = {}
        self._name_of_id: List[str] = []
        self._count_of_id = np.zeros(0, dtype=np.int64)  # buffered per name
        self.stats = BufferStats()

    def __len__(self) -> int:
        return self._tail - self._head

    # ------------------------------------------------------------------
    # Column plumbing
    # ------------------------------------------------------------------
    def _intern(self, name: str) -> int:
        """Map a signal name to its stable small-integer id."""
        name_id = self._id_of_name.get(name)
        if name_id is None:
            name_id = len(self._name_of_id)
            self._id_of_name[name] = name_id
            self._name_of_id.append(name)
            self._count_of_id = np.append(self._count_of_id, 0)
        return name_id

    def _ensure_tail_room(self, n: int) -> None:
        """Make room for ``n`` appends, compacting or growing the columns."""
        alloc = self._times.shape[0]
        if self._tail + n <= alloc:
            return
        active = self._tail - self._head
        if active + n <= alloc and self._head >= alloc // 2:
            new_times, new_values = self._times, self._values
            new_seqs, new_ids = self._seqs, self._ids
        else:
            new_alloc = max(2 * alloc, active + n, _MIN_ALLOC)
            new_times = np.empty(new_alloc, dtype=np.float64)
            new_values = np.empty(new_alloc, dtype=np.float64)
            new_seqs = np.empty(new_alloc, dtype=np.int64)
            new_ids = np.empty(new_alloc, dtype=np.int64)
        sl = slice(self._head, self._tail)
        new_times[:active] = self._times[sl]
        new_values[:active] = self._values[sl]
        new_seqs[:active] = self._seqs[sl]
        new_ids[:active] = self._ids[sl]
        self._times, self._values = new_times, new_values
        self._seqs, self._ids = new_seqs, new_ids
        self._sorted_end -= self._head
        self._head, self._tail = 0, active

    def _consolidate(self) -> None:
        """Merge the unsorted append tail into the sorted run."""
        if self._sorted_end == self._tail:
            return
        sl = slice(self._head, self._tail)
        order = np.lexsort((self._seqs[sl], self._times[sl])) + self._head
        self._times[sl] = self._times[order]
        self._values[sl] = self._values[order]
        self._seqs[sl] = self._seqs[order]
        self._ids[sl] = self._ids[order]
        self._sorted_end = self._tail

    def _evict_oldest(self) -> None:
        """Drop the globally oldest ``(time, seq)`` buffered sample."""
        self._consolidate()
        self._count_of_id[self._ids[self._head]] -= 1
        self._head += 1
        self._sorted_end = max(self._sorted_end, self._head)
        self.stats.evicted += 1

    def _append_block(
        self, name_id: int, times: np.ndarray, values: np.ndarray
    ) -> None:
        """Append already-accepted samples as one columnar block."""
        n = times.shape[0]
        if n == 0:
            return
        self._ensure_tail_room(n)
        start, end = self._tail, self._tail + n
        self._times[start:end] = times
        self._values[start:end] = values
        self._seqs[start:end] = np.arange(
            self._next_seq, self._next_seq + n, dtype=np.int64
        )
        self._ids[start:end] = name_id
        self._next_seq += n
        self._count_of_id[name_id] += n
        # A time-ordered block appended after the sorted run keeps the
        # whole active region sorted — the common fast path.
        in_order = n == 1 or bool(np.all(times[1:] >= times[:-1]))
        if (
            in_order
            and self._sorted_end == self._tail
            and (self._head == self._tail or self._times[self._tail - 1] <= times[0])
        ):
            self._sorted_end = end
        self._tail = end

    # ------------------------------------------------------------------
    # Push (scalar + bulk)
    # ------------------------------------------------------------------
    def push(self, name: str, time_ms: float, value: float, now_ms: float) -> bool:
        """Enqueue a sample; return False if it was dropped as late.

        ``now_ms`` is the current scope clock — the push is late exactly
        when ``now_ms > time_ms + delay_ms``, i.e. the sample's display
        slot has already gone by.
        """
        self.stats.pushed += 1
        time_ms = float(time_ms)
        if now_ms > time_ms + self.delay_ms:
            self.stats.dropped_late += 1
            return False
        if self.capacity is not None and len(self) >= self.capacity:
            self._evict_oldest()
        name_id = self._intern(name)
        self._ensure_tail_room(1)
        i = self._tail
        self._times[i] = time_ms
        self._values[i] = float(value)
        self._seqs[i] = self._next_seq
        self._ids[i] = name_id
        self._next_seq += 1
        self._count_of_id[name_id] += 1
        if self._sorted_end == i and (
            self._head == i or self._times[i - 1] <= time_ms
        ):
            self._sorted_end = i + 1
        self._tail = i + 1
        return True

    def push_many(
        self, name: str, times: ArrayLike, values: ArrayLike, now_ms: float
    ) -> int:
        """Bulk-enqueue one signal's samples; return how many were accepted.

        Semantically identical to calling :meth:`push` per sample (same
        late-drop rule, same eviction order), but the accepted samples are
        appended to the columns as one vectorised block.
        """
        t = np.ascontiguousarray(times, dtype=np.float64)
        v = np.ascontiguousarray(values, dtype=np.float64)
        if t.shape != v.shape or t.ndim != 1:
            raise ValueError(
                f"times and values must be equal-length 1-D: {t.shape} vs {v.shape}"
            )
        n = t.shape[0]
        self.stats.pushed += n
        if n == 0:
            return 0
        # Same predicate as the scalar rule `not (now > t + delay)` —
        # the negated form keeps NaN timestamps on the accept side,
        # exactly as the scalar comparison does.
        keep = ~(t + self.delay_ms < now_ms)
        dropped = n - int(np.count_nonzero(keep))
        self.stats.dropped_late += dropped
        accepted = n - dropped
        if accepted == 0:
            return 0
        if dropped:
            t, v = t[keep], v[keep]
        if self.capacity is not None and len(self) + accepted > self.capacity:
            # Rare bounded-buffer overflow: replay the per-sample
            # evict-then-insert discipline so eviction order matches the
            # scalar path exactly (a pushed sample can itself be evicted
            # by a later sample in the same batch).
            name_id = self._intern(name)
            one_t = np.empty(1, dtype=np.float64)
            one_v = np.empty(1, dtype=np.float64)
            for i in range(accepted):
                if len(self) >= self.capacity:
                    self._evict_oldest()
                one_t[0], one_v[0] = t[i], v[i]
                self._append_block(name_id, one_t.copy(), one_v.copy())
            return accepted
        self._append_block(self._intern(name), t, v)
        return accepted

    # ------------------------------------------------------------------
    # Pop (bulk + scalar wrappers)
    # ------------------------------------------------------------------
    def _due_count(self, now_ms: float) -> int:
        """Consolidate and count leading samples due at ``now_ms``."""
        self._consolidate()
        active = self._times[self._head : self._tail]
        if active.shape[0] == 0:
            return 0
        # Same float comparison as the scalar rule: time + delay <= now.
        return int(np.searchsorted(active + self.delay_ms, now_ms, side="right"))

    def pop_due_arrays(
        self, now_ms: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Remove and return all due samples as ``(times, values, name_ids)``.

        Columns come back in ``(time, seq)`` order — the order the scope
        paints.  The returned arrays are private copies and stay valid
        across later pushes.
        """
        n = self._due_count(now_ms)
        if n == 0:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty.copy(), np.empty(0, dtype=np.int64)
        sl = slice(self._head, self._head + n)
        times = self._times[sl].copy()
        values = self._values[sl].copy()
        ids = self._ids[sl].copy()
        self._count_of_id -= np.bincount(ids, minlength=self._count_of_id.shape[0])
        self._head += n
        self._sorted_end = max(self._sorted_end, self._head)
        self.stats.popped += n
        return times, values, ids

    def pop_due_grouped(
        self, now_ms: float
    ) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """Bulk drain grouped per signal: name → ``(times, values)`` arrays.

        Group order follows each name's first occurrence in the popped
        stream; within a group, samples keep ``(time, seq)`` order.
        """
        times, values, ids = self.pop_due_arrays(now_ms)
        if times.shape[0] == 0:
            return {}
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        bounds = np.flatnonzero(np.diff(sorted_ids)) + 1
        groups = np.split(order, bounds)
        groups.sort(key=lambda g: g[0])  # first-occurrence order
        out: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for g in groups:
            name = self._name_of_id[int(ids[g[0]])]
            out[name] = (times[g], values[g])
        return out

    def pop_due(self, now_ms: float) -> List[Sample]:
        """Remove and return all samples displayable at ``now_ms``.

        A sample is due when ``time_ms + delay_ms <= now_ms``.  Samples
        come back in timestamp order (push order breaks ties), which is
        the order the scope paints them.  This is the object-per-sample
        compatibility wrapper; hot consumers use :meth:`pop_due_arrays`.
        """
        n = self._due_count(now_ms)
        if n == 0:
            return []
        sl = slice(self._head, self._head + n)
        name_of_id = self._name_of_id
        due = [
            Sample(time_ms=t, seq=s, name=name_of_id[i], value=v)
            for t, s, i, v in zip(
                self._times[sl].tolist(),
                self._seqs[sl].tolist(),
                self._ids[sl].tolist(),
                self._values[sl].tolist(),
            )
        ]
        self._count_of_id -= np.bincount(
            self._ids[sl], minlength=self._count_of_id.shape[0]
        )
        self._head += n
        self._sorted_end = max(self._sorted_end, self._head)
        self.stats.popped += n
        return due

    def pop_due_by_name(self, now_ms: float) -> Dict[str, List[Sample]]:
        """Like :meth:`pop_due` but grouped per signal name."""
        grouped: Dict[str, List[Sample]] = {}
        for sample in self.pop_due(now_ms):
            grouped.setdefault(sample.name, []).append(sample)
        return grouped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def peek_next(self) -> Optional[Sample]:
        """The earliest buffered sample, without removing it."""
        if len(self) == 0:
            return None
        self._consolidate()
        i = self._head
        return Sample(
            time_ms=float(self._times[i]),
            seq=int(self._seqs[i]),
            name=self._name_of_id[int(self._ids[i])],
            value=float(self._values[i]),
        )

    def clear(self) -> int:
        """Drop everything buffered; return how many samples were dropped."""
        n = len(self)
        self._head = self._sorted_end = self._tail = 0
        self._count_of_id[:] = 0
        self.stats.evicted += n
        return n

    def set_delay(self, delay_ms: float) -> None:
        """Adjust the display delay (the scope's delay widget)."""
        if delay_ms < 0:
            raise ValueError(f"delay must be non-negative: {delay_ms}")
        self.delay_ms = float(delay_ms)

    def names(self) -> Tuple[str, ...]:
        """Names of signals currently holding buffered samples.

        O(#names): maintained incrementally from per-name counts rather
        than by scanning the buffered samples.
        """
        return tuple(
            sorted(
                name
                for name, name_id in self._id_of_name.items()
                if self._count_of_id[name_id] > 0
            )
        )

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Capture the buffer's observable state as plain data.

        Everything that shapes future behaviour is included: the active
        region's columns (with the sorted/unsorted split preserved), the
        sequence counter, the name intern table and the stats ledger.
        Allocation details (column capacity, head offset) are not state —
        a restored buffer re-packs the active region at offset 0, which
        yields the same pops, evictions and late-drops forever after.
        """
        sl = slice(self._head, self._tail)
        return {
            "delay_ms": self.delay_ms,
            "capacity": self.capacity,
            "times": self._times[sl].copy(),
            "values": self._values[sl].copy(),
            "seqs": self._seqs[sl].copy(),
            "ids": self._ids[sl].copy(),
            "sorted_len": self._sorted_end - self._head,
            "next_seq": self._next_seq,
            "names": list(self._name_of_id),
            "stats": {
                "pushed": self.stats.pushed,
                "dropped_late": self.stats.dropped_late,
                "evicted": self.stats.evicted,
                "popped": self.stats.popped,
            },
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` capture, replacing current contents."""
        times = np.asarray(state["times"], dtype=np.float64)
        n = times.shape[0]
        alloc = max(n, _MIN_ALLOC)
        self.delay_ms = float(state["delay_ms"])  # type: ignore[arg-type]
        self.capacity = state["capacity"]  # type: ignore[assignment]
        self._times = np.empty(alloc, dtype=np.float64)
        self._values = np.empty(alloc, dtype=np.float64)
        self._seqs = np.empty(alloc, dtype=np.int64)
        self._ids = np.empty(alloc, dtype=np.int64)
        self._times[:n] = times
        self._values[:n] = np.asarray(state["values"], dtype=np.float64)
        self._seqs[:n] = np.asarray(state["seqs"], dtype=np.int64)
        self._ids[:n] = np.asarray(state["ids"], dtype=np.int64)
        self._head = 0
        self._sorted_end = int(state["sorted_len"])  # type: ignore[arg-type]
        self._tail = n
        self._next_seq = int(state["next_seq"])  # type: ignore[arg-type]
        names = list(state["names"])  # type: ignore[arg-type]
        self._name_of_id = names
        self._id_of_name = {name: i for i, name in enumerate(names)}
        self._count_of_id = np.bincount(
            self._ids[:n], minlength=len(names)
        ).astype(np.int64)
        stats = dict(state["stats"])  # type: ignore[arg-type]
        self.stats = BufferStats(**stats)
