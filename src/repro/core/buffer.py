"""The scope-wide timestamped sample buffer (Sections 3.1 and 4.4).

Buffered (``BUFFER``-type) signals decouple data *collection* from data
*display*: the application (or a remote client, via the client-server
library) enqueues ``(time, value, name)`` samples, and the scope drains
the buffer on each poll, displaying each sample once the user-specified
delay has elapsed after the sample's timestamp.

Two rules from the paper govern the buffer:

* **Display delay** — a sample stamped ``t`` becomes displayable at wall
  time ``t + delay`` (Section 3.1: "gscope displays these samples with a
  user-specified delay").
* **Late drop** — "Data arriving at the server after this delay is not
  buffered but dropped immediately" (Section 4.4): a sample whose display
  time has already passed when it is pushed is discarded, because the
  scope has already painted that x position.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True, order=True)
class Sample:
    """One timestamped sample of a named signal."""

    time_ms: float
    seq: int = field(compare=True)
    name: str = field(compare=False)
    value: float = field(compare=False)


@dataclass
class BufferStats:
    """Counters for buffer behaviour, exposed for tests and benchmarks."""

    pushed: int = 0
    dropped_late: int = 0
    evicted: int = 0
    popped: int = 0

    @property
    def buffered(self) -> int:
        """Samples currently held (accepted minus drained/evicted)."""
        return self.pushed - self.dropped_late - self.evicted - self.popped


class SampleBuffer:
    """Min-heap of timestamped samples with delay/late-drop semantics.

    Parameters
    ----------
    delay_ms:
        The user-specified display delay.  Larger delays tolerate more
        collection/transmission jitter at the cost of display latency.
    capacity:
        Optional bound on buffered samples; pushing past it drops the
        *oldest* buffered sample first (the scope would have displayed it
        soonest, and fresh data is more valuable on a live display).
    """

    def __init__(self, delay_ms: float = 0.0, capacity: Optional[int] = None) -> None:
        if delay_ms < 0:
            raise ValueError(f"delay must be non-negative: {delay_ms}")
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.delay_ms = float(delay_ms)
        self.capacity = capacity
        self._heap: List[Sample] = []
        self._seq = itertools.count()
        self.stats = BufferStats()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, name: str, time_ms: float, value: float, now_ms: float) -> bool:
        """Enqueue a sample; return False if it was dropped as late.

        ``now_ms`` is the current scope clock — the push is late exactly
        when ``now_ms > time_ms + delay_ms``, i.e. the sample's display
        slot has already gone by.
        """
        self.stats.pushed += 1
        if now_ms > time_ms + self.delay_ms:
            self.stats.dropped_late += 1
            return False
        if self.capacity is not None and len(self._heap) >= self.capacity:
            heapq.heappop(self._heap)
            self.stats.evicted += 1
        heapq.heappush(
            self._heap,
            Sample(time_ms=float(time_ms), seq=next(self._seq), name=name, value=float(value)),
        )
        return True

    def pop_due(self, now_ms: float) -> List[Sample]:
        """Remove and return all samples displayable at ``now_ms``.

        A sample is due when ``time_ms + delay_ms <= now_ms``.  Samples
        come back in timestamp order (push order breaks ties), which is
        the order the scope paints them.
        """
        due: List[Sample] = []
        while self._heap and self._heap[0].time_ms + self.delay_ms <= now_ms:
            due.append(heapq.heappop(self._heap))
        self.stats.popped += len(due)
        return due

    def pop_due_by_name(self, now_ms: float) -> Dict[str, List[Sample]]:
        """Like :meth:`pop_due` but grouped per signal name."""
        grouped: Dict[str, List[Sample]] = {}
        for sample in self.pop_due(now_ms):
            grouped.setdefault(sample.name, []).append(sample)
        return grouped

    def peek_next(self) -> Optional[Sample]:
        """The earliest buffered sample, without removing it."""
        return self._heap[0] if self._heap else None

    def clear(self) -> int:
        """Drop everything buffered; return how many samples were dropped."""
        n = len(self._heap)
        self._heap.clear()
        self.stats.evicted += n
        return n

    def set_delay(self, delay_ms: float) -> None:
        """Adjust the display delay (the scope's delay widget)."""
        if delay_ms < 0:
            raise ValueError(f"delay must be non-negative: {delay_ms}")
        self.delay_ms = float(delay_ms)

    def names(self) -> Tuple[str, ...]:
        """Names of signals currently holding buffered samples."""
        return tuple(sorted({s.name for s in self._heap}))
