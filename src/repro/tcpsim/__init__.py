"""TCP/ECN network simulator — the testbed substitute for Figures 4 & 5.

The paper's headline demo scopes the congestion window of one long-lived
TCP (Figure 4) or ECN (Figure 5) flow while the mxtraf traffic generator
varies the number of competing "elephant" flows across an emulated
wide-area bottleneck (a Linux router running nistnet).  None of that
hardware exists here, so this package provides a discrete-event network
simulator with just enough TCP to reproduce the figures' dynamics:

* :mod:`repro.tcpsim.engine` — event queue and simulated clock.
* :mod:`repro.tcpsim.packet` — segments and ACKs with ECN codepoints.
* :mod:`repro.tcpsim.queuemgmt` — DropTail and RED (with ECN marking).
* :mod:`repro.tcpsim.link` — a delay + bandwidth constrained bottleneck
  (the nistnet role).
* :mod:`repro.tcpsim.tcp` — TCP Reno senders/receivers: slow start,
  congestion avoidance, fast retransmit/recovery, RTO with exponential
  backoff, cwnd collapse to one segment on timeout, and ECN-echo
  handling per RFC 3168's congestion response.
* :mod:`repro.tcpsim.network` — topology assembly (servers → router →
  client).
* :mod:`repro.tcpsim.mxtraf` — the traffic orchestrator: a tunable
  population of elephants whose count can change mid-experiment, plus
  short-lived mice.

The relevant fidelity claim: Figure 4/5's visual difference is *timeout
behaviour* — DropTail loss bursts drive Reno to RTO (cwnd pinned at 1),
while RED+ECN marks instead of dropping, so windows halve smoothly and
never collapse.  Both emerge from this model without tuning constants
into the result.
"""

from repro.tcpsim.engine import Engine
from repro.tcpsim.link import BottleneckLink
from repro.tcpsim.mxtraf import Mxtraf, MxtrafConfig
from repro.tcpsim.network import Network, NetworkConfig
from repro.tcpsim.packet import ECN, Packet
from repro.tcpsim.queuemgmt import DropTailQueue, REDQueue
from repro.tcpsim.tcp import TcpFlow, TcpReceiver
from repro.tcpsim.udp import UdpFlow, UdpSink

__all__ = [
    "BottleneckLink",
    "DropTailQueue",
    "ECN",
    "Engine",
    "Mxtraf",
    "MxtrafConfig",
    "Network",
    "NetworkConfig",
    "Packet",
    "REDQueue",
    "TcpFlow",
    "TcpReceiver",
    "UdpFlow",
    "UdpSink",
]
