"""Queue management: DropTail and RED with ECN marking.

The bottleneck router's queue policy is the single knob that separates
Figure 4 from Figure 5:

* **DropTail** — the plain FIFO of the TCP experiment.  When the queue
  is full, arriving packets drop.  Synchronized drop bursts put multiple
  losses into one Reno window, which (without SACK) frequently forces an
  RTO — the repeated cwnd = 1 collapses Figure 4 shows.
* **RED** (Random Early Detection, Floyd & Jacobson) — the ECN
  experiment's queue.  RED tracks an EWMA of queue length and, between
  ``min_th`` and ``max_th``, marks/drops arriving packets with a
  probability ramp; past ``max_th`` it marks/drops everything.  With
  ``ecn=True``, ECN-capable packets are *CE-marked instead of dropped*,
  so senders reduce their windows without losing data — no loss bursts,
  no timeouts, which is exactly Figure 5's contrast.

The RED implementation follows the 1993 paper's gentle variant:
EWMA ``avg = (1-w)*avg + w*q`` per arrival, idle-time decay, and the
count-based probability correction ``p / (1 - count*p)`` that spreads
marks out evenly.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.tcpsim.packet import Packet


@dataclass
class QueueStats:
    """Counters every queue policy maintains."""

    enqueued: int = 0
    dropped: int = 0
    marked: int = 0

    @property
    def arrivals(self) -> int:
        return self.enqueued + self.dropped


class DropTailQueue:
    """Bounded FIFO; arrivals beyond ``capacity`` packets are dropped."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"queue capacity must be positive: {capacity}")
        self.capacity = int(capacity)
        self._queue: Deque[Packet] = deque()
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, packet: Packet, now_ms: float) -> bool:
        """Admit or drop ``packet``; True when admitted."""
        if len(self._queue) >= self.capacity:
            self.stats.dropped += 1
            return False
        self._queue.append(packet)
        self.stats.enqueued += 1
        return True

    def dequeue(self, now_ms: float) -> Optional[Packet]:
        return self._queue.popleft() if self._queue else None

    @property
    def occupancy(self) -> int:
        return len(self._queue)


class REDQueue:
    """Random Early Detection with optional ECN marking.

    Parameters follow Floyd & Jacobson's notation:

    min_th / max_th:
        Average-queue thresholds (packets).  Below min_th nothing
        happens; between them the mark probability ramps 0 → max_p; at or
        above max_th every arrival is marked (ECN) or dropped.
    max_p:
        Peak of the probability ramp.
    weight:
        EWMA weight ``w_q`` for the average queue estimate.
    ecn:
        When True, ECN-capable packets are CE-marked instead of dropped;
        not-ECT packets still drop (RFC 3168 behaviour).
    capacity:
        Hard physical bound; past it packets drop regardless of ECN.
    rng:
        Random source (inject a seeded ``random.Random`` for
        reproducible experiments).
    """

    def __init__(
        self,
        min_th: float = 5.0,
        max_th: float = 15.0,
        max_p: float = 0.1,
        weight: float = 0.002,
        ecn: bool = False,
        capacity: int = 60,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0 < min_th < max_th:
            raise ValueError(f"need 0 < min_th < max_th, got {min_th}, {max_th}")
        if not 0 < max_p <= 1:
            raise ValueError(f"max_p must be in (0, 1]: {max_p}")
        if not 0 < weight <= 1:
            raise ValueError(f"weight must be in (0, 1]: {weight}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.min_th = float(min_th)
        self.max_th = float(max_th)
        self.max_p = float(max_p)
        self.weight = float(weight)
        self.ecn = ecn
        self.capacity = int(capacity)
        self.rng = rng if rng is not None else random.Random(0)
        self._queue: Deque[Packet] = deque()
        self.avg = 0.0
        self._count = -1  # packets since last mark, -1 = ramp inactive
        self._idle_since: Optional[float] = None
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # RED machinery
    # ------------------------------------------------------------------
    def _update_avg(self, now_ms: float) -> None:
        q = len(self._queue)
        if q == 0 and self._idle_since is not None:
            # Decay the average while the queue was idle, as if small
            # packets had been draining at line rate (approximation:
            # halve per 10 ms idle).
            idle_ms = now_ms - self._idle_since
            self.avg *= 0.5 ** (idle_ms / 10.0)
            self._idle_since = now_ms
        self.avg = (1.0 - self.weight) * self.avg + self.weight * q

    def _mark_probability(self) -> float:
        if self.avg < self.min_th:
            return 0.0
        if self.avg >= self.max_th:
            return 1.0
        ramp = (self.avg - self.min_th) / (self.max_th - self.min_th)
        return ramp * self.max_p

    def _should_mark(self) -> bool:
        p = self._mark_probability()
        if p <= 0.0:
            self._count = -1
            return False
        if p >= 1.0:
            self._count = 0
            return True
        self._count += 1
        # Spread marks uniformly: effective p grows with the count of
        # unmarked arrivals since the last mark.
        effective = p / max(1e-9, 1.0 - self._count * p) if self._count * p < 1 else 1.0
        if self.rng.random() < effective:
            self._count = 0
            return True
        return False

    # ------------------------------------------------------------------
    # Queue interface
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, now_ms: float) -> bool:
        """Admit, mark-and-admit, or drop ``packet``."""
        self._update_avg(now_ms)
        if len(self._queue) >= self.capacity:
            self.stats.dropped += 1
            return False
        if self._should_mark():
            if self.ecn and packet.ecn_capable:
                packet.mark_ce()
                self.stats.marked += 1
            else:
                self.stats.dropped += 1
                return False
        self._queue.append(packet)
        self.stats.enqueued += 1
        return True

    def dequeue(self, now_ms: float) -> Optional[Packet]:
        pkt = self._queue.popleft() if self._queue else None
        if not self._queue:
            self._idle_since = now_ms
        return pkt
