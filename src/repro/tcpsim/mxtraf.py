"""Mxtraf — the network traffic generator, reimplemented.

"With Mxtraf, a small number of hosts can be used to saturate a network
with a tunable mix of TCP and UDP traffic" (Section 2).  The reproduction
covers the part the figures use:

* a population of long-lived **elephant** flows whose count is tunable
  at run time (the experiment switches 8 → 16 "roughly half way through
  the x-axis"),
* optional short-lived **mice** launched at a configurable rate to add
  burstiness,
* gscope integration: an ``elephants`` memory cell (exactly the
  Section 3.1 example), a ``get_cwnd``-style FUNC hook for a chosen
  flow, and event hooks for connection counts — the signals the paper's
  client-server demo correlates.

The elephant count is also exposed as a gscope *control parameter*, so
the Figure 3 window (or any programmatic caller) changes the traffic mix
live — mxtraf's defining trick.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.params import ControlParameter, ParameterStore
from repro.core.signal import Cell
from repro.tcpsim.engine import Engine
from repro.tcpsim.network import Network
from repro.tcpsim.tcp import TcpFlow
from repro.tcpsim.udp import UdpFlow


@dataclass
class MxtrafConfig:
    """Traffic mix parameters."""

    elephants: int = 8
    mice_per_sec: float = 0.0  # arrival rate of short flows
    mouse_segments: int = 20  # size of each short flow
    udp_pkts_per_sec: float = 0.0  # unresponsive CBR load ("UDP traffic")
    start_jitter_ms: float = 200.0  # desynchronise elephant starts
    seed: int = 7


class Mxtraf:
    """Tunable traffic orchestration over a :class:`Network`."""

    def __init__(
        self,
        network: Network,
        config: Optional[MxtrafConfig] = None,
    ) -> None:
        self.network = network
        self.engine: Engine = network.engine
        self.config = config if config is not None else MxtrafConfig()
        self.rng = random.Random(self.config.seed)
        self.elephant_flows: List[TcpFlow] = []
        self.mice_started = 0
        #: gscope-visible cell, as in the paper's `elephants` example.
        self.elephants_cell = Cell(0)
        self._mice_running = False
        self.udp_flow: Optional[UdpFlow] = None
        self.set_elephants(self.config.elephants)
        if self.config.udp_pkts_per_sec > 0:
            self.set_udp_rate(self.config.udp_pkts_per_sec)

    # ------------------------------------------------------------------
    # Elephants (long-lived flows)
    # ------------------------------------------------------------------
    @property
    def elephants(self) -> int:
        return len(self.elephant_flows)

    def set_elephants(self, count: int) -> None:
        """Start or stop elephants to match ``count`` (run-time tunable)."""
        count = int(count)
        if count < 0:
            raise ValueError(f"elephant count must be non-negative: {count}")
        while len(self.elephant_flows) < count:
            flow = self.network.create_flow(
                total_segments=None,
                start_jitter_ms=self.config.start_jitter_ms,
            )
            self.elephant_flows.append(flow)
        while len(self.elephant_flows) > count:
            flow = self.elephant_flows.pop()
            self.network.remove_flow(flow)
        self.elephants_cell.value = len(self.elephant_flows)

    def watched_flow(self, index: int = 0) -> TcpFlow:
        """An (arbitrarily chosen) elephant whose CWND the scope displays."""
        if not self.elephant_flows:
            raise IndexError("no elephants running")
        return self.elephant_flows[index]

    # ------------------------------------------------------------------
    # Mice (short-lived flows)
    # ------------------------------------------------------------------
    def start_mice(self) -> None:
        """Begin Poisson arrivals of short flows."""
        if self.config.mice_per_sec <= 0:
            raise ValueError("mice_per_sec must be positive to start mice")
        if not self._mice_running:
            self._mice_running = True
            self._schedule_next_mouse()

    def stop_mice(self) -> None:
        self._mice_running = False

    def _schedule_next_mouse(self) -> None:
        if not self._mice_running:
            return
        gap_ms = self.rng.expovariate(self.config.mice_per_sec) * 1000.0
        self.engine.after(gap_ms, self._launch_mouse)

    def _launch_mouse(self) -> None:
        if not self._mice_running:
            return
        self.network.create_flow(total_segments=self.config.mouse_segments)
        self.mice_started += 1
        self._schedule_next_mouse()

    # ------------------------------------------------------------------
    # UDP (unresponsive constant-bit-rate load)
    # ------------------------------------------------------------------
    @property
    def udp_rate(self) -> float:
        return self.udp_flow.rate_pkts_per_sec if self.udp_flow else 0.0

    def set_udp_rate(self, rate_pkts_per_sec: float) -> None:
        """Tune the UDP half of the traffic mix; 0 tears it down."""
        if rate_pkts_per_sec < 0:
            raise ValueError(f"rate must be non-negative: {rate_pkts_per_sec}")
        self.config.udp_pkts_per_sec = float(rate_pkts_per_sec)
        if rate_pkts_per_sec == 0:
            if self.udp_flow is not None:
                self.network.remove_udp_flow(self.udp_flow)
                self.udp_flow = None
            return
        if self.udp_flow is None:
            self.udp_flow = self.network.create_udp_flow(rate_pkts_per_sec)
        else:
            self.udp_flow.set_rate(rate_pkts_per_sec)

    # ------------------------------------------------------------------
    # gscope integration
    # ------------------------------------------------------------------
    def control_parameters(self) -> ParameterStore:
        """Expose the traffic mix as a Figure 3 control-parameter window."""
        store = ParameterStore()
        store.add(
            ControlParameter(
                "elephants",
                getter=lambda: float(self.elephants),
                setter=lambda v: self.set_elephants(int(v)),
                minimum=0,
                maximum=128,
                step=1,
                description="number of long-lived flows",
            )
        )
        store.add(
            ControlParameter(
                "mice_per_sec",
                getter=lambda: self.config.mice_per_sec,
                setter=self._set_mice_rate,
                minimum=0,
                maximum=1000,
                step=1,
                description="short-flow arrival rate",
            )
        )
        store.add(
            ControlParameter(
                "udp_pkts_per_sec",
                getter=lambda: self.udp_rate,
                setter=self.set_udp_rate,
                minimum=0,
                maximum=100_000,
                step=50,
                description="unresponsive CBR load",
            )
        )
        return store

    def _set_mice_rate(self, rate: float) -> None:
        self.config.mice_per_sec = float(rate)
        if rate <= 0:
            self.stop_mice()
        elif not self._mice_running:
            self.start_mice()

    def get_cwnd(self, flow: Optional[TcpFlow] = None, *_: object) -> float:
        """FUNC-signal hook matching the paper's ``get_cwnd(fd)`` usage."""
        target = flow if flow is not None else self.watched_flow()
        return target.cwnd
