"""Packets: TCP segments and ACKs with ECN codepoints.

The model is segment-granular: every data packet is one MSS (1500 bytes
by default) and sequence numbers count segments, not bytes.  That keeps
window arithmetic transparent while preserving the dynamics the figures
depend on (cwnd growth/halving/collapse happen in units of segments in
real stacks too).

ECN follows RFC 3168's shape: ECN-capable packets carry ``ECT``; a
congested RED queue remarks them ``CE``; the receiver echoes ``CE`` back
to the sender in the ACK's ``ece`` flag until the sender's window
reduction is acknowledged (the CWR handshake is abstracted to
once-per-window semantics inside the sender).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

DEFAULT_MSS_BYTES = 1500

_packet_ids = itertools.count(1)


class ECN(enum.Enum):
    """ECN codepoint carried by a data packet."""

    NOT_ECT = "not-ect"  # sender not ECN-capable (plain TCP)
    ECT = "ect"  # ECN-capable transport
    CE = "ce"  # congestion experienced (marked by the router)


@dataclass(slots=True)
class Packet:
    """One data segment in flight."""

    flow_id: int
    seq: int  # segment number, 0-based
    size_bytes: int = DEFAULT_MSS_BYTES
    ecn: ECN = ECN.NOT_ECT
    retransmit: bool = False
    sent_at_ms: float = 0.0
    uid: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def ecn_capable(self) -> bool:
        return self.ecn is not ECN.NOT_ECT

    def mark_ce(self) -> None:
        """Router marks congestion instead of dropping (RFC 3168)."""
        if not self.ecn_capable:
            raise ValueError("cannot CE-mark a not-ECT packet; drop it instead")
        self.ecn = ECN.CE


@dataclass(slots=True)
class Ack:
    """Cumulative acknowledgement travelling back to the sender.

    ``sacked`` carries the receiver's out-of-order holdings (SACK
    blocks, flattened to segment numbers and bounded like the 3-block
    TCP option).  Senders that do not negotiate SACK ignore it.
    """

    flow_id: int
    ack_seq: int  # next expected segment number
    ece: bool = False  # ECN-echo: receiver saw a CE mark
    sacked: tuple = ()  # out-of-order segments held by the receiver
    for_retransmit: bool = False
    sent_at_ms: float = 0.0
    uid: int = field(default_factory=lambda: next(_packet_ids))
