"""Topology assembly: servers → bottleneck router → client.

The experiment's shape (Section 2, "A Gscope Example"): a server machine
sends long-lived flows to a client through a Linux router whose nistnet
adds delay and bandwidth constraints.  Here the whole path collapses to:

* per-flow senders (:class:`~repro.tcpsim.tcp.TcpFlow`) feeding
* one :class:`~repro.tcpsim.link.BottleneckLink` (queue + bandwidth +
  forward propagation delay), delivering to
* per-flow receivers whose ACKs return through a
  :class:`~repro.tcpsim.link.DelayLine` (uncongested reverse path).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

from repro.tcpsim.engine import Engine
from repro.tcpsim.link import BottleneckLink, DelayLine
from repro.tcpsim.packet import Ack, Packet
from repro.tcpsim.queuemgmt import DropTailQueue, REDQueue
from repro.tcpsim.tcp import TcpFlow, TcpReceiver
from repro.tcpsim.udp import UdpFlow, UdpSink


@dataclass
class NetworkConfig:
    """Parameters of the emulated wide-area path.

    Defaults model a 10 Mbit/s bottleneck (≈ 833 pkt/s at 1500 B) with a
    100 ms round trip — a plausible 2002 wide-area path and comfortably
    inside the regime where 8-16 competing elephants produce the
    Figure 4/5 dynamics.
    """

    bandwidth_pkts_per_sec: float = 833.0
    prop_delay_ms: float = 40.0  # forward propagation
    ack_delay_ms: float = 50.0  # reverse path total
    queue: str = "droptail"  # "droptail" or "red"
    droptail_capacity: int = 40
    red_min_th: float = 8.0
    red_max_th: float = 24.0
    red_max_p: float = 0.1
    red_weight: float = 0.05
    red_capacity: int = 100
    ecn: bool = False  # flows negotiate ECN (pairs with queue="red")
    sack: bool = False  # flows negotiate SACK (fewer multi-loss RTOs)
    seed: int = 1


class Network:
    """One bottleneck shared by any number of TCP flows."""

    def __init__(self, engine: Engine, config: Optional[NetworkConfig] = None) -> None:
        self.engine = engine
        self.config = config if config is not None else NetworkConfig()
        self.rng = random.Random(self.config.seed)
        self.queue = self._make_queue()
        self.link = BottleneckLink(
            engine,
            self.queue,
            self.config.bandwidth_pkts_per_sec,
            self.config.prop_delay_ms,
            deliver=self._deliver_to_client,
        )
        self.ack_path = DelayLine(engine, self.config.ack_delay_ms, deliver=self._deliver_ack)
        self._flows: Dict[int, TcpFlow] = {}
        self._receivers: Dict[int, TcpReceiver] = {}
        self._udp_flows: Dict[int, UdpFlow] = {}
        self._udp_sinks: Dict[int, UdpSink] = {}
        self._next_flow_id = 1

    def _make_queue(self) -> Union[DropTailQueue, REDQueue]:
        cfg = self.config
        if cfg.queue == "droptail":
            return DropTailQueue(cfg.droptail_capacity)
        if cfg.queue == "red":
            return REDQueue(
                min_th=cfg.red_min_th,
                max_th=cfg.red_max_th,
                max_p=cfg.red_max_p,
                weight=cfg.red_weight,
                ecn=cfg.ecn,
                capacity=cfg.red_capacity,
                rng=random.Random(cfg.seed),
            )
        raise ValueError(f"unknown queue policy: {cfg.queue!r}")

    # ------------------------------------------------------------------
    # Flow lifecycle
    # ------------------------------------------------------------------
    def create_flow(
        self,
        total_segments: Optional[int] = None,
        start_jitter_ms: float = 0.0,
    ) -> TcpFlow:
        """Create, wire and start one flow; returns the sender object."""
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        flow = TcpFlow(
            self.engine,
            flow_id,
            transmit=self.link.send,
            ecn=self.config.ecn,
            total_segments=total_segments,
            sack=self.config.sack,
        )
        self._flows[flow_id] = flow
        self._receivers[flow_id] = TcpReceiver(flow_id)
        if start_jitter_ms > 0:
            self.engine.after(self.rng.uniform(0, start_jitter_ms), flow.start)
        else:
            flow.start()
        return flow

    def remove_flow(self, flow: TcpFlow) -> None:
        flow.stop()
        self._flows.pop(flow.flow_id, None)
        self._receivers.pop(flow.flow_id, None)

    def create_udp_flow(self, rate_pkts_per_sec: float) -> UdpFlow:
        """Start an unresponsive CBR flow (mxtraf's UDP traffic)."""
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        flow = UdpFlow(self.engine, flow_id, self.link.send, rate_pkts_per_sec)
        self._udp_flows[flow_id] = flow
        self._udp_sinks[flow_id] = UdpSink(flow_id)
        flow.start()
        return flow

    def remove_udp_flow(self, flow: UdpFlow) -> None:
        flow.stop()
        self._udp_flows.pop(flow.flow_id, None)
        self._udp_sinks.pop(flow.flow_id, None)

    @property
    def udp_flows(self) -> Dict[int, UdpFlow]:
        return dict(self._udp_flows)

    def udp_sink(self, flow_id: int) -> UdpSink:
        return self._udp_sinks[flow_id]

    def flow(self, flow_id: int) -> TcpFlow:
        return self._flows[flow_id]

    @property
    def flows(self) -> Dict[int, TcpFlow]:
        return dict(self._flows)

    # ------------------------------------------------------------------
    # Delivery plumbing
    # ------------------------------------------------------------------
    def _deliver_to_client(self, packet: Packet) -> None:
        sink = self._udp_sinks.get(packet.flow_id)
        if sink is not None:
            sink.on_packet(packet, self.engine.now)  # UDP: no ACK path
            return
        receiver = self._receivers.get(packet.flow_id)
        if receiver is None:
            return  # flow torn down while the packet was in flight
        ack = receiver.on_packet(packet, self.engine.now)
        self.ack_path.send(ack)

    def _deliver_ack(self, ack: Ack) -> None:
        flow = self._flows.get(ack.flow_id)
        if flow is not None:
            flow.on_ack(ack)

    # ------------------------------------------------------------------
    # Aggregate observables (scope signal sources)
    # ------------------------------------------------------------------
    def total_delivered(self) -> int:
        return sum(r.delivered for r in self._receivers.values())

    def total_udp_delivered(self) -> int:
        return sum(s.received for s in self._udp_sinks.values())

    def total_timeouts(self) -> int:
        return sum(f.stats.timeouts for f in self._flows.values())

    def queue_occupancy(self, *_args: object) -> float:
        """FUNC-signal hook: instantaneous bottleneck queue length."""
        return float(self.queue.occupancy)

    @property
    def rtt_floor_ms(self) -> float:
        """Unloaded round-trip time of the path."""
        return self.link.rtt_floor_ms + self.config.ack_delay_ms
