"""Discrete-event simulation core.

A classic event-queue engine: callbacks scheduled at absolute simulated
times, executed in time order (FIFO among equal times).  The engine can
free-run (:meth:`run_until`) or be *stepped in lockstep with an event
loop* (:meth:`advance_to`), which is how a live scope polls a running
simulation: each scope poll first advances the simulation to the loop's
current virtual time, then samples the signals.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

EventFn = Callable[[], None]


class Engine:
    """Event queue with a simulated millisecond clock."""

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now = float(start_ms)
        self._queue: List[Tuple[float, int, EventFn]] = []
        self._seq = itertools.count()
        self.executed = 0
        self.scheduled = 0

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    def at(self, time_ms: float, fn: EventFn) -> None:
        """Schedule ``fn`` at absolute simulated time ``time_ms``."""
        if time_ms < self._now - 1e-9:
            raise ValueError(
                f"cannot schedule in the past: {time_ms} < now {self._now}"
            )
        heapq.heappush(self._queue, (float(time_ms), next(self._seq), fn))
        self.scheduled += 1

    def after(self, delay_ms: float, fn: EventFn) -> None:
        """Schedule ``fn`` after ``delay_ms`` of simulated time."""
        if delay_ms < 0:
            raise ValueError(f"delay must be non-negative: {delay_ms}")
        self.at(self._now + delay_ms, fn)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when idle."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Execute the single next event; False when the queue is empty."""
        if not self._queue:
            return False
        time_ms, _, fn = heapq.heappop(self._queue)
        self._now = max(self._now, time_ms)
        fn()
        self.executed += 1
        return True

    def advance_to(self, time_ms: float) -> int:
        """Execute all events up to and including ``time_ms``.

        Leaves the clock at exactly ``time_ms`` (events may schedule new
        events inside the window; they execute too).  Returns the number
        of events executed.  This is the lockstep hook for scope polling.
        """
        if time_ms < self._now - 1e-9:
            raise ValueError(f"cannot advance backwards: {time_ms} < {self._now}")
        # Heap-peek early exit: a lockstep tick with no due work costs one
        # comparison, not a pop loop — the common case when the event loop
        # polls faster than the simulation generates events.
        queue = self._queue
        limit = time_ms + 1e-9
        if not queue or queue[0][0] > limit:
            if time_ms > self._now:
                self._now = float(time_ms)
            return 0
        # Inlined pop loop: one heappop per event, no step() call frames
        # or repeated peeks — this is the hot loop of every simulation.
        pop = heapq.heappop
        executed = 0
        try:
            while queue and queue[0][0] <= limit:
                event_time, _, fn = pop(queue)
                if event_time > self._now:
                    self._now = event_time
                fn()
                executed += 1
        finally:
            # Keep the count accurate even when a callback raises.
            self.executed += executed
        self._now = max(self._now, float(time_ms))
        return executed

    def run_until(self, time_ms: float) -> int:
        """Alias of :meth:`advance_to` for free-running simulations."""
        return self.advance_to(time_ms)

    def drive_from(self, loop, period_ms: float = 50.0) -> int:
        """Attach a lockstep driver to ``loop``; returns the source id.

        Every ``period_ms`` the engine advances to the loop's current
        clock time, which is how a live scope polls a running simulation
        (the scope's own poll then samples the freshly advanced signals).
        The tick is driven off the shared event-heap peek inside
        :meth:`advance_to`, so quiet periods cost one comparison instead
        of a scan; detach with ``loop.remove(source_id)`` to stop.
        """

        def _tick(lost: int) -> bool:
            self.advance_to(loop.clock.now())
            return True

        return loop.timeout_add(period_ms, _tick)

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Drain the queue entirely (bounded by ``max_events``)."""
        queue = self._queue
        pop = heapq.heappop
        executed = 0
        try:
            while queue and executed < max_events:
                event_time, _, fn = pop(queue)
                if event_time > self._now:
                    self._now = event_time
                fn()
                executed += 1
        finally:
            self.executed += executed
        return executed

    @property
    def pending(self) -> int:
        return len(self._queue)
