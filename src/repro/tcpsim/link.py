"""The bottleneck link: bandwidth + delay constraints (the nistnet role).

The paper emulates a wide-area path by running nistnet on a Linux router
"to add delay and bandwidth constraints".  Here that is a single
server→client bottleneck: arriving packets pass the queue policy
(DropTail or RED), are serialised at the link bandwidth, then propagate
for a fixed delay before delivery.  The reverse (ACK) path is modelled
as delay-only, matching the experiment where only data traffic congests
the bottleneck.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Union

from repro.tcpsim.engine import Engine
from repro.tcpsim.packet import Ack, Packet
from repro.tcpsim.queuemgmt import DropTailQueue, REDQueue

QueuePolicy = Union[DropTailQueue, REDQueue]
Deliver = Callable[[Packet], None]


class BottleneckLink:
    """Queue → serialiser → propagation pipe for data packets.

    Parameters
    ----------
    engine:
        The simulation engine.
    queue:
        Queue policy instance (owns admission/mark/drop decisions).
    bandwidth_pkts_per_sec:
        Service rate in packets per second (segment-granular model).
    prop_delay_ms:
        One-way propagation delay after serialisation.
    deliver:
        Callback receiving each packet at the far end.
    """

    def __init__(
        self,
        engine: Engine,
        queue: QueuePolicy,
        bandwidth_pkts_per_sec: float,
        prop_delay_ms: float,
        deliver: Optional[Deliver] = None,
    ) -> None:
        if bandwidth_pkts_per_sec <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_pkts_per_sec}")
        if prop_delay_ms < 0:
            raise ValueError(f"propagation delay must be non-negative: {prop_delay_ms}")
        self.engine = engine
        self.queue = queue
        self.service_ms = 1000.0 / bandwidth_pkts_per_sec
        self.prop_delay_ms = float(prop_delay_ms)
        self.deliver = deliver
        self._busy = False
        self.forwarded = 0

    def send(self, packet: Packet) -> bool:
        """Offer a packet to the link; False when the queue dropped it."""
        admitted = self.queue.enqueue(packet, self.engine.now)
        if admitted and not self._busy:
            self._serve_next()
        return admitted

    def _serve_next(self) -> None:
        packet = self.queue.dequeue(self.engine.now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        self.engine.after(self.service_ms, lambda p=packet: self._serialised(p))

    def _serialised(self, packet: Packet) -> None:
        self.forwarded += 1
        if self.deliver is not None:
            self.engine.after(self.prop_delay_ms, lambda p=packet: self.deliver(p))
        self._serve_next()

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def rtt_floor_ms(self) -> float:
        """Minimum RTT contribution of this link (service + propagation)."""
        return self.service_ms + self.prop_delay_ms


class DelayLine:
    """Delay-only pipe for the uncongested reverse (ACK) path."""

    def __init__(
        self,
        engine: Engine,
        delay_ms: float,
        deliver: Optional[Callable[[Ack], None]] = None,
    ) -> None:
        if delay_ms < 0:
            raise ValueError(f"delay must be non-negative: {delay_ms}")
        self.engine = engine
        self.delay_ms = float(delay_ms)
        self.deliver = deliver
        self.forwarded = 0

    def send(self, ack: Ack) -> None:
        self.forwarded += 1
        if self.deliver is not None:
            self.engine.after(self.delay_ms, lambda a=ack: self.deliver(a))
