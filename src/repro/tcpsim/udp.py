"""UDP constant-bit-rate flows.

Mxtraf "can be used to saturate a network with a tunable mix of TCP and
UDP traffic" (Section 2).  The UDP half of that mix is an unresponsive
constant-bit-rate source: it transmits at its configured rate no matter
what the bottleneck does, which is exactly what makes it useful for
stress testing — it steals bandwidth from congestion-controlled flows
and keeps the queue pressurised.

A matching :class:`UdpSink` counts deliveries so experiments can report
UDP loss (the queue drops whatever does not fit).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.tcpsim.engine import Engine
from repro.tcpsim.packet import ECN, Packet


class UdpFlow:
    """Unresponsive constant-bit-rate sender."""

    def __init__(
        self,
        engine: Engine,
        flow_id: int,
        transmit: Callable[[Packet], bool],
        rate_pkts_per_sec: float,
    ) -> None:
        if rate_pkts_per_sec <= 0:
            raise ValueError(f"rate must be positive: {rate_pkts_per_sec}")
        self.engine = engine
        self.flow_id = flow_id
        self.transmit = transmit
        self.rate_pkts_per_sec = float(rate_pkts_per_sec)
        self.next_seq = 0
        self.sent = 0
        self.dropped_at_queue = 0
        self.stopped = False
        self._generation = 0

    @property
    def interval_ms(self) -> float:
        return 1000.0 / self.rate_pkts_per_sec

    def start(self) -> None:
        self._schedule()

    def _schedule(self) -> None:
        generation = self._generation
        self.engine.after(self.interval_ms, lambda: self._tick(generation))

    def _tick(self, generation: int) -> None:
        if self.stopped or generation != self._generation:
            return
        packet = Packet(
            flow_id=self.flow_id,
            seq=self.next_seq,
            ecn=ECN.NOT_ECT,
            sent_at_ms=self.engine.now,
        )
        self.next_seq += 1
        self.sent += 1
        if not self.transmit(packet):
            self.dropped_at_queue += 1
        self._schedule()

    def set_rate(self, rate_pkts_per_sec: float) -> None:
        """Retune the blast rate live (a control parameter natural)."""
        if rate_pkts_per_sec <= 0:
            raise ValueError(f"rate must be positive: {rate_pkts_per_sec}")
        self.rate_pkts_per_sec = float(rate_pkts_per_sec)
        self._generation += 1  # cancel the pending tick's cadence
        self._schedule()

    def stop(self) -> None:
        self.stopped = True
        self._generation += 1


class UdpSink:
    """Counts UDP deliveries at the receiver side."""

    def __init__(self, flow_id: int) -> None:
        self.flow_id = flow_id
        self.received = 0
        self.last_seq: Optional[int] = None

    def on_packet(self, packet: Packet, now_ms: float) -> None:
        if packet.flow_id != self.flow_id:
            raise ValueError(
                f"sink {self.flow_id} got packet for flow {packet.flow_id}"
            )
        self.received += 1
        self.last_seq = packet.seq
