"""TCP Reno/NewReno senders and receivers, with ECN.

This is the part of the substrate Figure 4 and Figure 5 actually
exercise: the congestion window trajectory of a long-lived flow.  The
implementation covers the mechanisms that shape that trajectory:

* slow start and congestion avoidance (cwnd += 1 per ACK below
  ``ssthresh``, += 1/cwnd above),
* fast retransmit on three duplicate ACKs, NewReno fast recovery with
  window inflation and partial-ACK retransmission,
* retransmission timeout with exponential backoff — on RTO the window
  collapses to **one segment** ("Both TCP and ECN reduce the congestion
  window to one upon a timeout", Section 2), which is the signal level
  the paper reads off the scope,
* RFC 6298 RTT estimation (SRTT/RTTVAR, Karn's rule on retransmits),
* ECN (RFC 3168, abstracted): ECN-capable senders mark their packets
  ECT; a CE-marked packet makes the receiver set the ECN-echo flag on
  its ACK; the sender halves its window at most once per window of data
  in response, with no retransmission and no timeout.

Simplifications (documented in DESIGN.md): segment-granular sequence
space, per-packet ACKs (no delayed ACK), unbounded receiver window, and
ECE echoed only on the CE packet's own ACK (the CWR handshake collapses
to once-per-window sender semantics).  None of these change who times
out and who does not, which is the figure's visual.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.tcpsim.engine import Engine
from repro.tcpsim.packet import Ack, ECN, Packet

INITIAL_CWND = 2.0
INITIAL_SSTHRESH = 64.0
MIN_SSTHRESH = 2.0
INITIAL_RTO_MS = 1000.0
MIN_RTO_MS = 200.0
MAX_RTO_MS = 60_000.0


@dataclass
class FlowStats:
    """Counters a scope (or a test) reads off a flow."""

    packets_sent: int = 0
    retransmits: int = 0
    timeouts: int = 0
    fast_retransmits: int = 0
    ecn_reductions: int = 0
    acked_segments: int = 0
    cwnd_history: List[float] = field(default_factory=list)


class TcpReceiver:
    """Cumulative-ACK receiver with out-of-order buffering."""

    def __init__(self, flow_id: int) -> None:
        self.flow_id = flow_id
        self.expected_seq = 0
        self._buffered: set = set()
        self.delivered = 0  # in-order segments handed to the application
        self.dup_receives = 0

    def on_packet(self, packet: Packet, now_ms: float) -> Ack:
        """Process one arriving segment and produce its ACK."""
        if packet.flow_id != self.flow_id:
            raise ValueError(
                f"receiver {self.flow_id} got packet for flow {packet.flow_id}"
            )
        ece = packet.ecn is ECN.CE
        if packet.seq == self.expected_seq:
            self.expected_seq += 1
            self.delivered += 1
            while self.expected_seq in self._buffered:
                self._buffered.discard(self.expected_seq)
                self.expected_seq += 1
                self.delivered += 1
        elif packet.seq > self.expected_seq:
            self._buffered.add(packet.seq)
        else:
            self.dup_receives += 1  # spurious retransmit of delivered data
        # Advertise out-of-order holdings, bounded the way the 3-block
        # SACK option is in practice (enough blocks to cover ~64 holes).
        sacked = tuple(sorted(self._buffered))[:64]
        return Ack(
            flow_id=self.flow_id,
            ack_seq=self.expected_seq,
            ece=ece,
            sacked=sacked,
            for_retransmit=packet.retransmit,
            sent_at_ms=now_ms,
        )


class TcpFlow:
    """A NewReno sender driving one long-lived (or bounded) transfer.

    Parameters
    ----------
    engine:
        Simulation engine (time source and timer scheduler).
    flow_id:
        Identity carried by every packet.
    transmit:
        Callback that puts a packet onto the network (the bottleneck
        link's ``send``).
    ecn:
        Whether this sender negotiates ECN (ECT-marks its data).
    total_segments:
        Data bound; ``None`` means an elephant (infinite source).
    awnd:
        Receiver's advertised window in segments.  The 2002-era Linux
        default of 64 KB is about 43 MSS; we default to 64 segments.
        This caps slow-start overshoot the way a real receiver does.
    sack:
        Enable selective acknowledgements.  During fast recovery a SACK
        sender repairs *every* reported hole (one per arriving ACK)
        instead of NewReno's one-hole-per-RTT partial-ACK crawl, which
        is what keeps multi-loss windows from degenerating into RTOs —
        the paper's Section 2 anecdote about timeouts traced to "an
        interaction with the SACK implementation" is about exactly this
        machinery.
    """

    def __init__(
        self,
        engine: Engine,
        flow_id: int,
        transmit: Callable[[Packet], None],
        ecn: bool = False,
        total_segments: Optional[int] = None,
        awnd: float = 64.0,
        sack: bool = False,
    ) -> None:
        if awnd < 1:
            raise ValueError(f"advertised window must be >= 1 segment: {awnd}")
        self.engine = engine
        self.flow_id = flow_id
        self.transmit = transmit
        self.ecn = ecn
        self.total_segments = total_segments
        self.awnd = float(awnd)
        self.sack = sack
        self._sacked: set = set()  # receiver-reported out-of-order seqs
        self._rtx_done: set = set()  # holes already repaired this recovery

        self.cwnd = INITIAL_CWND
        self.ssthresh = INITIAL_SSTHRESH
        self.snd_una = 0  # oldest unacknowledged segment
        self.next_seq = 0  # next segment to (re)send
        self.high_seq = 0  # highest segment ever sent + 1
        self.dupacks = 0
        self.in_recovery = False
        self.recover_seq = 0  # NewReno recovery point
        self.ece_recover_seq = 0  # once-per-window ECN reduction gate
        self.stopped = False

        # RFC 6298 estimator state.
        self.srtt_ms: Optional[float] = None
        self.rttvar_ms: Optional[float] = None
        self.rto_ms = INITIAL_RTO_MS
        self._rtt_seq: Optional[int] = None
        self._rtt_sent_at = 0.0
        self._rtt_tainted = False  # Karn: retransmission voids the sample

        self._timer_generation = 0
        self._timer_armed = False
        self.stats = FlowStats()

    # ------------------------------------------------------------------
    # Data availability
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        return self.next_seq - self.snd_una

    @property
    def finished(self) -> bool:
        return (
            self.total_segments is not None and self.snd_una >= self.total_segments
        )

    def _has_data(self) -> bool:
        if self.stopped or self.finished:
            return False
        if self.total_segments is None:
            return True
        return self.next_seq < self.total_segments

    @property
    def in_loss_recovery(self) -> bool:
        """Retransmitting the pre-timeout window (go-back-N phase)."""
        return self.next_seq < self.high_seq

    def stop(self) -> None:
        """Tear the flow down (mxtraf removing an elephant)."""
        self.stopped = True
        self._cancel_timer()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin transmitting (call once after wiring the topology)."""
        self.try_send()

    def _effective_window(self) -> float:
        # Window inflation during fast recovery is folded into cwnd
        # directly (cwnd += 1 per extra dupack); the receiver's
        # advertised window caps the result, as in a real stack.
        return max(1.0, min(self.cwnd, self.awnd))

    def _send_segment(self, seq: int, retransmit: bool) -> None:
        packet = Packet(
            flow_id=self.flow_id,
            seq=seq,
            ecn=ECN.ECT if (self.ecn and not retransmit) else ECN.NOT_ECT,
            retransmit=retransmit,
            sent_at_ms=self.engine.now,
        )
        self.stats.packets_sent += 1
        if retransmit:
            self.stats.retransmits += 1
            self._rtt_tainted = True
        elif self._rtt_seq is None:
            self._rtt_seq = seq
            self._rtt_sent_at = self.engine.now
            self._rtt_tainted = False
        self.transmit(packet)
        self._arm_timer()

    def try_send(self) -> int:
        """Send as many segments as the window allows; returns count.

        During post-timeout loss recovery ``next_seq`` sits below
        ``high_seq`` and the segments sent here are go-back-N
        retransmissions of the lost window; otherwise they are new data.
        """
        if self.sack and self.in_recovery:
            # SACK recovery transmits only hole repairs (driven from the
            # ACK path); injecting new data on top of an unrepaired loss
            # window just refills the queue that caused the losses.
            return 0
        sent = 0
        while self._has_data() and self.inflight < self._effective_window():
            retransmit = self.next_seq < self.high_seq
            self._send_segment(self.next_seq, retransmit=retransmit)
            self.next_seq += 1
            self.high_seq = max(self.high_seq, self.next_seq)
            sent += 1
        return sent

    # ------------------------------------------------------------------
    # Receiving ACKs
    # ------------------------------------------------------------------
    def on_ack(self, ack: Ack) -> None:
        if self.stopped:
            return
        if ack.flow_id != self.flow_id:
            raise ValueError(f"flow {self.flow_id} got ack for {ack.flow_id}")

        if ack.ece:
            self._on_ecn_echo()
        if self.sack:
            self._sacked = set(ack.sacked)

        if ack.ack_seq > self.snd_una:
            self._on_new_ack(ack.ack_seq)
        elif ack.ack_seq == self.snd_una and self.inflight > 0:
            self._on_dupack()
        self.try_send()

    def _on_new_ack(self, ack_seq: int) -> None:
        newly_acked = ack_seq - self.snd_una
        self.stats.acked_segments += newly_acked
        self._maybe_sample_rtt(ack_seq)
        self.snd_una = ack_seq
        # The receiver may have buffered out-of-order data past our
        # go-back-N pointer; never retransmit below the cumulative ACK.
        self.next_seq = max(self.next_seq, self.snd_una)
        self.dupacks = 0

        if self.in_recovery:
            if ack_seq >= self.recover_seq:
                # Full ACK: recovery complete, deflate to ssthresh.
                self.in_recovery = False
                self.cwnd = self.ssthresh
                self._rtx_done.clear()
            elif self.sack:
                # SACK: a partial ACK pins snd_una as a certain hole —
                # retransmit it now (unless a scoreboard repair already
                # has it in flight), then let dupack-driven repairs
                # handle the rest of the scoreboard.
                if self.snd_una not in self._rtx_done:
                    self._rtx_done.add(self.snd_una)
                    self._send_segment(self.snd_una, retransmit=True)
                else:
                    self._repair_next_hole()
                self.cwnd = max(1.0, self.cwnd - newly_acked + 1)
            else:
                # Partial ACK (NewReno): the next hole is lost too;
                # retransmit it immediately and stay in recovery.
                self._send_segment(self.snd_una, retransmit=True)
                self.cwnd = max(1.0, self.cwnd - newly_acked + 1)
        elif self.cwnd < self.ssthresh:
            self.cwnd += newly_acked  # slow start
        else:
            self.cwnd += newly_acked / self.cwnd  # congestion avoidance

        if self.inflight > 0 or self._has_data():
            self._arm_timer(restart=True)
        else:
            self._cancel_timer()

    def _repair_next_hole(self) -> bool:
        """SACK loss recovery: retransmit the lowest hole the receiver
        has not reported holding; at most one per incoming ACK, which is
        the packet-conservation pacing real SACK recovery uses.

        A segment only counts as a hole when SACKed data exists *above*
        it (the scoreboard rule) — otherwise its ACK may simply still be
        in flight and retransmitting it would be spurious.
        """
        if not self._sacked:
            return False
        scan_end = min(self.recover_seq, max(self._sacked), self.snd_una + 256)
        for seq in range(self.snd_una, scan_end):
            if seq not in self._sacked and seq not in self._rtx_done:
                self._rtx_done.add(seq)
                self._send_segment(seq, retransmit=True)
                return True
        return False

    def _on_dupack(self) -> None:
        self.dupacks += 1
        if self.in_recovery:
            if self.sack:
                # SACK recovery is packet-conserving: each dupack means
                # one packet left the network, so repair one hole — no
                # window inflation and no new data (see try_send).
                self._repair_next_hole()
            else:
                self.cwnd += 1.0  # NewReno window inflation per dupack
        elif self.dupacks == 3 and self.snd_una >= self.recover_seq:
            # The recover_seq guard stops spurious re-entry while ACKs
            # from a previous loss event are still draining (NewReno).
            self.stats.fast_retransmits += 1
            self.ssthresh = max(self.inflight / 2.0, MIN_SSTHRESH)
            self.in_recovery = True
            self.recover_seq = self.high_seq
            self.cwnd = self.ssthresh + 3.0
            self._rtx_done = {self.snd_una}
            self._send_segment(self.snd_una, retransmit=True)
            # Per RFC 6298 the RTO timer is NOT restarted here: it only
            # restarts on ACKs of new data.  A recovery that stalls (the
            # retransmission lost, or dupacks dried up) therefore still
            # times out — which is precisely the behaviour Figure 4
            # visualises.

    def _on_ecn_echo(self) -> None:
        """RFC 3168 congestion response: at most one halving per window."""
        if self.snd_una < self.ece_recover_seq or self.in_recovery:
            return
        self.stats.ecn_reductions += 1
        self.ssthresh = max(self.cwnd / 2.0, MIN_SSTHRESH)
        self.cwnd = self.ssthresh
        self.ece_recover_seq = self.high_seq

    # ------------------------------------------------------------------
    # RTT estimation (RFC 6298)
    # ------------------------------------------------------------------
    def _maybe_sample_rtt(self, ack_seq: int) -> None:
        if self._rtt_seq is None or ack_seq <= self._rtt_seq:
            return
        if not self._rtt_tainted:
            sample = self.engine.now - self._rtt_sent_at
            if self.srtt_ms is None:
                self.srtt_ms = sample
                self.rttvar_ms = sample / 2.0
            else:
                assert self.rttvar_ms is not None
                self.rttvar_ms = 0.75 * self.rttvar_ms + 0.25 * abs(self.srtt_ms - sample)
                self.srtt_ms = 0.875 * self.srtt_ms + 0.125 * sample
            self.rto_ms = min(
                MAX_RTO_MS,
                max(MIN_RTO_MS, self.srtt_ms + max(1.0, 4.0 * self.rttvar_ms)),
            )
        self._rtt_seq = None

    # ------------------------------------------------------------------
    # Retransmission timer
    # ------------------------------------------------------------------
    def _arm_timer(self, restart: bool = False) -> None:
        if self._timer_armed and not restart:
            return
        self._timer_generation += 1
        self._timer_armed = True
        generation = self._timer_generation
        self.engine.after(self.rto_ms, lambda: self._on_timer(generation))

    def _cancel_timer(self) -> None:
        self._timer_generation += 1
        self._timer_armed = False

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation or self.stopped:
            return
        self._timer_armed = False
        if self.inflight == 0:
            return
        # Retransmission timeout: the event the paper's figures hinge on.
        self.stats.timeouts += 1
        self.ssthresh = max(self.inflight / 2.0, MIN_SSTHRESH)
        self.cwnd = 1.0
        self.dupacks = 0
        self.in_recovery = False
        self.recover_seq = self.high_seq
        self.rto_ms = min(MAX_RTO_MS, self.rto_ms * 2.0)  # exponential backoff
        self._rtt_seq = None  # Karn: no sample across a timeout
        self._rtx_done.clear()
        # Go-back-N: rewind the send pointer so the whole lost window is
        # retransmitted under slow start (what a real stack's
        # retransmission queue walk amounts to).
        self.next_seq = self.snd_una
        self.try_send()

    # ------------------------------------------------------------------
    # Scope integration
    # ------------------------------------------------------------------
    def get_cwnd(self, *_args: object) -> float:
        """FUNC-signal hook, mirroring the paper's ``get_cwnd(fd)``."""
        return self.cwnd

    def record_cwnd(self) -> None:
        self.stats.cwnd_history.append(self.cwnd)
