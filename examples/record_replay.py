#!/usr/bin/env python3
"""Record and replay: the tuple format in action (Sections 3.1/3.3).

First a live polling run records two signals to a tuple file; then a
second scope replays the file in playback mode.  The replay demonstrates
the Section 3.3 pixel-spacing rule: the recording was made at a 25 ms
period but is replayed at 50 ms, so recorded points sit 2 px apart on a
1 px/period display... and the same file re-replayed at 25 ms lines the
points back up 1 px apart.
"""

import io
import math

from repro.core.scope import Scope
from repro.core.signal import func_signal
from repro.core.tuples import Player, Recorder
from repro.eventloop.loop import MainLoop
from repro.gui.render import ascii_render, write_ppm
from repro.gui.scope_widget import ScopeWidget


def record() -> str:
    """Live run: a sine and its rectified copy, recorded to tuples."""
    loop = MainLoop()
    scope = Scope("recorder", loop, width=400, height=100, period_ms=25)
    scope.signal_new(
        func_signal(
            "sine",
            lambda *_: 50 + 45 * math.sin(loop.clock.now() / 250.0),
            color="green",
        )
    )
    scope.signal_new(
        func_signal(
            "rect",
            lambda *_: 50 + 45 * abs(math.sin(loop.clock.now() / 250.0)),
            color="red",
        )
    )
    sink = io.StringIO()
    recorder = Recorder(sink)
    recorder.comment("recorded by examples/record_replay.py")
    scope.record_to(recorder)
    scope.set_polling_mode(25)
    scope.start_polling()
    loop.run_until(10_000)
    scope.record_to(None)
    print(f"recorded {recorder.count} tuples over 10 s at 25 ms period")
    return sink.getvalue()


def replay(data: str, period_ms: float, out_file: str) -> None:
    loop = MainLoop()
    scope = Scope(f"replay @{period_ms:g}ms", loop, width=400, height=100)
    scope.set_playback_mode(Player(io.StringIO(data)), period_ms=period_ms)
    scope.start_polling()
    loop.run_until(11_000)
    sine_points = len(scope.channel("sine").trace)
    print(f"replayed at {period_ms:g} ms: {sine_points} sine points")
    widget = ScopeWidget(scope)
    canvas = widget.render()
    print(ascii_render(canvas, max_width=100, max_height=20))
    write_ppm(canvas, out_file)
    print(f"wrote {out_file}")


def main() -> None:
    data = record()
    with open("recorded_signals.tuples", "w") as fh:
        fh.write(data)
    print("wrote recorded_signals.tuples")
    replay(data, 50.0, "replay_50ms.ppm")  # points 2 px apart
    replay(data, 25.0, "replay_25ms.ppm")  # points 1 px apart


if __name__ == "__main__":
    main()
