#!/usr/bin/env python3
"""Record and replay on the columnar capture store (Sections 3.1/3.3).

A live polling run pushes two buffered signals through a manager with a
``CaptureWriter`` tap attached, producing a segmented binary store in
``recorded_signals.capture/``.  The store is then used three ways:

* a ``ReplaySource`` re-drives a fresh manager at rate 1 — the replayed
  traces match the live run exactly;
* the O(log n) index seeks to the 5-second mark and replays the rest at
  2x speed;
* the store exports to the classic ``recorded_signals.tuples`` text
  file, which the Section 3.3 ``Player`` replays in playback mode at
  two periods, demonstrating the pixel-spacing rule: points recorded
  25 ms apart sit 1 px apart at a 25 ms period and 2 px apart at 50 ms.
"""

import math
import shutil

import numpy as np

from repro.capture import CaptureReader, CaptureWriter, ReplaySource, export_text
from repro.core.manager import ScopeManager
from repro.core.scope import Scope
from repro.core.signal import buffer_signal
from repro.core.tuples import Player
from repro.eventloop.loop import MainLoop
from repro.gui.render import ascii_render, write_ppm
from repro.gui.scope_widget import ScopeWidget

CAPTURE_DIR = "recorded_signals.capture"
PERIOD_MS = 25.0
RUN_MS = 10_000.0


def build_rig(loop):
    """A manager and scope carrying the sine/rect buffered signals."""
    manager = ScopeManager(loop)
    scope = manager.scope_new(
        "recorder", width=400, height=100, period_ms=PERIOD_MS, delay_ms=50.0
    )
    scope.signal_new(buffer_signal("sine", color="green"))
    scope.signal_new(buffer_signal("rect", color="red"))
    scope.start_polling()
    return manager, scope


def record() -> None:
    """Live run: push sample batches through a tapped manager."""
    loop = MainLoop()
    manager, scope = build_rig(loop)
    # Captures are append-once; a re-run replaces the previous one.
    shutil.rmtree(CAPTURE_DIR, ignore_errors=True)
    writer = CaptureWriter(CAPTURE_DIR, segment_samples=4096)
    manager.add_tap(writer)

    def feed(_lost) -> bool:
        now = loop.clock.now()
        times = np.array([now])
        phase = now / 250.0
        manager.push_samples("sine", times, np.array([50 + 45 * math.sin(phase)]))
        manager.push_samples("rect", times, np.array([50 + 45 * abs(math.sin(phase))]))
        return True

    loop.timeout_add(PERIOD_MS, feed)
    loop.run_until(RUN_MS)
    writer.close()
    print(
        f"captured {writer.samples_written} samples into "
        f"{writer.segments_written} segments "
        f"({writer.bytes_written / writer.samples_written:.1f} B/sample), "
        f"sine trace {len(scope.channel('sine').trace)} points"
    )


def replay_exact() -> None:
    """Re-drive a fresh manager on the capture's own timeline."""
    loop = MainLoop()
    manager, scope = build_rig(loop)
    source = ReplaySource(CaptureReader(CAPTURE_DIR), manager)
    loop.attach(source)
    loop.run_until(RUN_MS)
    print(
        f"replayed {source.delivered_samples} samples at rate 1: "
        f"sine trace {len(scope.channel('sine').trace)} points, "
        f"late drops {scope.buffer.stats.dropped_late}"
    )


def replay_seek_2x() -> None:
    """Seek to the 5 s mark, replay the remainder at double speed."""
    loop = MainLoop()
    manager, scope = build_rig(loop)
    reader = CaptureReader(CAPTURE_DIR)
    source = ReplaySource(reader, manager, rate=2.0, start_at=0.0)
    loop.attach(source)
    position = source.seek(5_000.0)
    loop.run_until(RUN_MS)
    print(
        f"seek(5000) landed at segment {position.segment} block "
        f"{position.block}; replayed {source.delivered_samples} samples "
        f"at 2x in {loop.clock.now():.0f} virtual ms"
    )


def export() -> str:
    """The same store as a Section 3.3 text tuple file."""
    count = export_text(CaptureReader(CAPTURE_DIR), "recorded_signals.tuples")
    print(f"wrote recorded_signals.tuples ({count} tuples)")
    with open("recorded_signals.tuples") as fh:
        return fh.read()


def replay_text(data: str, period_ms: float, out_file: str) -> None:
    """Playback-mode replay of the exported text (pixel-spacing rule)."""
    import io

    loop = MainLoop()
    scope = Scope(f"replay @{period_ms:g}ms", loop, width=400, height=100)
    scope.set_playback_mode(Player(io.StringIO(data)), period_ms=period_ms)
    scope.start_polling()
    loop.run_until(RUN_MS + 1_000.0)
    sine_points = len(scope.channel("sine").trace)
    print(f"replayed at {period_ms:g} ms: {sine_points} sine points")
    widget = ScopeWidget(scope)
    canvas = widget.render()
    print(ascii_render(canvas, max_width=100, max_height=20))
    write_ppm(canvas, out_file)
    print(f"wrote {out_file}")


def main() -> None:
    record()
    replay_exact()
    replay_seek_2x()
    data = export()
    replay_text(data, 50.0, "replay_50ms.ppm")  # points 2 px apart
    replay_text(data, 25.0, "replay_25ms.ppm")  # points 1 px apart


if __name__ == "__main__":
    main()
