#!/usr/bin/env python3
"""Derived signals: one query, two execution modes, identical answers.

A live run pushes two raw signals — a sawtoothing queue depth and a
monotone byte counter — through a tapped manager.  A ``LiveQuery``
consumes the same columnar batches the ``CaptureWriter`` records and
pushes four *derived* signals back into the manager, where the scope
displays them like any other signal (and the capture records them too):

.. code-block:: text

    smooth = ewma(queue, 0.85)        # Section 3.1 one-pole smoothing
    tput   = rate(bytes_in)           # counter -> bytes/second
    busy   = queue > 60               # indicator band
    spikes = edges(queue, 60, rising) # trigger-style crossing marks

The same query then re-runs offline over the capture store — and the
derived columns come back **byte-identical** to what streamed live,
which is the whole point: analyses of recorded runs are re-runnable
and exact, never approximately re-derived.
"""

import shutil

import numpy as np

from repro.capture import CaptureReader, CaptureWriter
from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.gui.render import ascii_render, write_ppm
from repro.gui.scope_widget import ScopeWidget
from repro.query import LiveQuery, compile_query, execute

CAPTURE_DIR = "derived_signals.capture"
PERIOD_MS = 25.0
RUN_MS = 10_000.0

QUERY = """
smooth = ewma(queue, 0.85)
tput   = rate(bytes_in)
busy   = queue > 60
spikes = edges(queue, 60, rising)
"""


def live_run(plan):
    """Push raw signals; the query derives four more, live."""
    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new(
        "derived", width=400, height=120, period_ms=PERIOD_MS, delay_ms=50.0
    )
    scope.signal_new(buffer_signal("queue", color="green"))
    scope.signal_new(buffer_signal("bytes_in", color="gray", hidden=True))
    scope.signal_new(buffer_signal("smooth", color="yellow"))
    scope.signal_new(buffer_signal("tput", color="cyan", max=400_000.0))
    scope.signal_new(buffer_signal("busy", color="red", max=1.5))
    scope.signal_new(buffer_signal("spikes", color="magenta", min=-1.5, max=1.5))
    scope.start_polling()

    shutil.rmtree(CAPTURE_DIR, ignore_errors=True)
    writer = CaptureWriter(CAPTURE_DIR, segment_samples=4096)
    manager.add_tap(writer)  # records raw *and* derived pushes
    live = LiveQuery(plan, manager)
    streamed = {name: 0 for name in plan.output_names}
    live.on_output(lambda name, t, v: streamed.__setitem__(
        name, streamed[name] + t.shape[0]
    ))

    counter = {"bytes": 0.0}

    def feed(_lost) -> bool:
        now = loop.clock.now()
        # Deterministic sawtooth + ripple, and a bursty byte counter.
        depth = (now % 2000.0) / 20.0 + 10.0 * np.sin(now / 90.0) + 20.0
        counter["bytes"] += 1500.0 * (3.0 + 2.0 * np.sin(now / 400.0))
        times = np.array([now])
        manager.push_samples("queue", times, np.array([depth]))
        manager.push_samples("bytes_in", times, np.array([counter["bytes"]]))
        return True

    loop.timeout_add(PERIOD_MS, feed)
    loop.run_until(RUN_MS)
    live.finish()
    writer.close()
    for name in plan.output_names:
        print(f"live derived {name}: {streamed[name]} samples")

    widget = ScopeWidget(scope)
    canvas = widget.render()
    print(ascii_render(canvas, max_width=100, max_height=20))
    write_ppm(canvas, "derived_signals.ppm")
    print("wrote derived_signals.ppm")


def offline_rerun(plan):
    """Re-run the query over the capture; verify bit-exact agreement."""
    with CaptureReader(CAPTURE_DIR) as reader:
        derived = execute(reader, plan)
        recorded = {
            name: reader.read_signal(name) for name in plan.output_names
        }
        identical = all(
            derived[name][0].tobytes() == recorded[name][0].tobytes()
            and derived[name][1].tobytes() == recorded[name][1].tobytes()
            for name in plan.output_names
        )
        for name, (times, values) in derived.items():
            span = (
                f"[{values.min():.3g}, {values.max():.3g}]"
                if values.shape[0]
                else "(empty)"
            )
            print(f"offline {name}: {times.shape[0]} samples, range {span}")
    print(f"offline rerun byte-identical to live derived traces: {identical}")
    assert identical, "offline execution diverged from the live derived traces"


def main() -> None:
    plan = compile_query(QUERY)
    live_run(plan)
    offline_rerun(plan)


if __name__ == "__main__":
    main()
