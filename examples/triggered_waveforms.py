#!/usr/bin/env python3
"""Triggers and waveform envelopes — the paper's Future Work, running.

Section 6 lists "triggers that stabilize repeating waveforms or
waveform envelop generation" as unimplemented oscilloscope features.
Both are built in this reproduction.  The demo scopes a noisy repeating
waveform (a sawtooth with jitter, like a periodic scheduler's lag
signal); the raw trace drifts across the screen, but the trigger-aligned
view is stable, and the min/max envelope across sweeps shows the jitter
band — exactly what the hardware-scope features are for.
"""

import random

from repro.core.scope import Scope
from repro.core.signal import func_signal
from repro.core.trigger import Edge, Trigger, envelope, stabilised_view
from repro.eventloop.loop import MainLoop
from repro.gui.canvas import Canvas
from repro.gui.geometry import ValueTransform
from repro.gui.render import ascii_render, write_ppm

PERIOD_MS = 10.0
WAVE_PERIOD_SAMPLES = 40


def main() -> None:
    loop = MainLoop()
    rng = random.Random(5)
    scope = Scope("repeating waveform", loop, width=400, height=100,
                  period_ms=PERIOD_MS)

    def sawtooth(*_):
        phase = (loop.clock.now() / PERIOD_MS) % WAVE_PERIOD_SAMPLES
        return phase / WAVE_PERIOD_SAMPLES * 80.0 + rng.uniform(0, 8.0)

    scope.signal_new(func_signal("saw", sawtooth, min=0, max=100, color="green"))
    scope.set_polling_mode(PERIOD_MS)
    scope.start_polling()
    loop.run_until(30_000)

    values = scope.channel("saw").values()
    trigger = Trigger(level=40.0, edge=Edge.RISING, hysteresis=5.0,
                      holdoff=WAVE_PERIOD_SAMPLES // 2)

    # A stable triggered view: the latest sweep aligned at the trigger.
    view = stabilised_view(values, trigger, width=WAVE_PERIOD_SAMPLES)
    sweeps = trigger.sweeps(values, width=WAVE_PERIOD_SAMPLES)
    lower, upper = envelope(sweeps[-20:])

    widths = sorted(u - l for l, u in zip(lower, upper))
    print(f"trace points: {len(values)}, trigger firings: "
          f"{len(trigger.find(values))}, sweeps captured: {len(sweeps)}")
    print(f"stable view starts at {view[0]:.1f}; envelope band: "
          f"median {widths[len(widths) // 2]:.1f} units (amplitude jitter), "
          f"max {widths[-1]:.1f} at the sawtooth reset (edge jitter)")

    # Draw the envelope band with the latest sweep on top.
    canvas = Canvas(WAVE_PERIOD_SAMPLES * 8, 120)
    transform = ValueTransform(vmin=0, vmax=100, height=120)
    for i in range(WAVE_PERIOD_SAMPLES):
        x = i * 8 + 4
        y_lo = transform.to_row(lower[i])
        y_hi = transform.to_row(upper[i])
        canvas.vline(x, y_hi, y_lo, (60, 60, 60))  # jitter band
        canvas.set_pixel(x, transform.to_row(view[i]), (64, 160, 43))
    print(ascii_render(canvas, max_width=100, max_height=20))
    write_ppm(canvas, "triggered_envelope.ppm")
    print("wrote triggered_envelope.ppm")


if __name__ == "__main__":
    main()
