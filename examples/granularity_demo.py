#!/usr/bin/env python3
"""Polling granularity and lost timeouts, made visible (Section 4.5).

Three scopes watch the same 4 Hz sine wave:

* ``fine``   — ideal clock, 5 ms polling: the reference rendering.
* ``coarse`` — a 10 ms kernel tick (2002 Linux): asking for 5 ms still
  yields 100 Hz, so the trace has half the samples. "gscope ... is
  currently limited to this polling interval and has a maximum
  frequency of 100 Hz."
* ``loaded`` — the same coarse kernel plus heavy scheduling latency:
  polls are lost outright, but gscope "keeps track of lost timeouts and
  advances the scope refresh appropriately", so the waveform keeps its
  true period instead of stretching.
"""

import math
import random

from repro.core.scope import Scope
from repro.core.signal import func_signal
from repro.eventloop.clock import KernelTimerModel, VirtualClock
from repro.eventloop.loop import MainLoop
from repro.gui.render import ascii_render, write_ppm
from repro.gui.scope_widget import ScopeWidget

REQUESTED_PERIOD_MS = 5.0
RUN_MS = 4_000.0


def run_scope(name, clock):
    loop = MainLoop(clock=clock)
    scope = Scope(name, loop, width=400, height=80,
                  period_ms=REQUESTED_PERIOD_MS)
    scope.signal_new(
        func_signal(
            "sine",
            lambda *_: 50 + 45 * math.sin(2 * math.pi * 4.0 * loop.clock.now() / 1000.0),
            min=0,
            max=100,
            color="green",
        )
    )
    scope.start_polling()
    loop.run_until(RUN_MS)
    return scope


def main() -> None:
    rng = random.Random(17)

    scopes = {
        "fine (ideal clock)": run_scope("fine", VirtualClock()),
        "coarse (10ms kernel tick)": run_scope(
            "coarse", KernelTimerModel(VirtualClock(), tick_ms=10.0)
        ),
        "loaded (tick + latency)": run_scope(
            "loaded",
            KernelTimerModel(
                VirtualClock(),
                tick_ms=10.0,
                latency=lambda t: rng.choice([0.0, 0.0, 0.0, 35.0]),
            ),
        ),
    }

    for label, scope in scopes.items():
        rate = scope.polls / (RUN_MS / 1000.0)
        print(
            f"{label}: requested {1000 / REQUESTED_PERIOD_MS:.0f} Hz, achieved "
            f"{rate:.1f} Hz, lost timeouts {scope.lost_timeouts}, "
            f"column (time axis) {scope.column}"
        )
        widget = ScopeWidget(scope)
        canvas = widget.render()
        print(ascii_render(canvas, max_width=100, max_height=14))
        out = f"granularity_{scope.name}.ppm"
        write_ppm(canvas, out)
        print(f"wrote {out}\n")

    loaded = scopes["loaded (tick + latency)"]
    expected = RUN_MS / REQUESTED_PERIOD_MS
    print(
        f"time-axis check: loaded scope column {loaded.column} vs "
        f"{expected:.0f} ideal periods — lost polls were compensated."
    )


if __name__ == "__main__":
    main()
