#!/usr/bin/env python3
"""Distributed visualization: remote clients feeding one scope (§4.4).

"Currently, we use the gscope client-server library in the mxtraf
network traffic generator.  The gscope client-server library allows
visualizing and correlating client, server and network behavior
(connections per second, connection errors per second, network
throughput, latency, etc.) within a single scope."

Three simulated machines run mxtraf roles and push BUFFER samples as
binary columnar frames over latency-afflicted links to one scope server
(the text tuple format remains available as ``mode="text"`` for old
servers):

* the traffic *server* host reports throughput (an event-rate quantity),
* the traffic *client* host reports per-connection latency,
* the *router* host reports bottleneck queue occupancy.

The scope displays all three with a 150 ms delay; samples older than the
delay when they arrive are dropped (shown in the drop counters).
"""

from repro.core.aggregate import AggregateKind
from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.gui.render import ascii_render, write_ppm
from repro.gui.scope_widget import ScopeWidget
from repro.net import ScopeClient, ScopeServer, memory_pair
from repro.tcpsim import Engine, Mxtraf, MxtrafConfig, Network, NetworkConfig

DELAY_MS = 150.0


def main() -> None:
    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new(
        "mxtraf distributed", width=500, height=140, period_ms=50, delay_ms=DELAY_MS
    )
    scope.signal_new(buffer_signal("throughput", min=0, max=1000, color="green"))
    scope.signal_new(buffer_signal("latency", min=0, max=400, color="red"))
    scope.signal_new(buffer_signal("queue", min=0, max=50, color="yellow"))
    scope.set_polling_mode(50)
    scope.start_polling()
    server = ScopeServer(loop, manager)

    # Three remote machines, different link latencies to the server.
    clients = {}
    for host, latency in (("traffic-server", 30), ("traffic-client", 60), ("router", 5)):
        near, far = memory_pair(loop.clock, latency_ms=latency, labels=(host, "server"))
        server.add_client(far)
        clients[host] = ScopeClient(near, loop, mode="binary")

    # The actual network being monitored.
    engine = Engine()
    network = Network(engine, NetworkConfig(queue="droptail"))
    mxtraf = Mxtraf(network, MxtrafConfig(elephants=8))
    last_delivered = [0]

    # Lockstep driver: the simulation catches up to loop time before each
    # monitor tick below (attach order fixes dispatch order at equal
    # priority, so the advance always runs first).
    engine.drive_from(loop, period_ms=50)

    def monitor(_lost) -> bool:
        now = loop.clock.now()
        delivered = network.total_delivered()
        clients["traffic-server"].send_sample(
            "throughput", (delivered - last_delivered[0]) * 20.0
        )  # pkts/s over the 50 ms window
        last_delivered[0] = delivered
        watched = mxtraf.watched_flow()
        rtt = watched.srtt_ms if watched.srtt_ms is not None else 0.0
        clients["traffic-client"].send_sample("latency", rtt)
        clients["router"].send_sample("queue", network.queue_occupancy())
        return True

    loop.timeout_add(50, monitor)

    def more_elephants(_lost) -> bool:
        mxtraf.set_elephants(16)
        return False

    loop.timeout_add(10_000, more_elephants)

    loop.run_until(20_000)

    totals = server.totals()
    modes = [state.mode for state in server.clients]
    print(f"server receive totals: {totals}")
    print(f"negotiated wire modes: {modes} ({totals['frames']} frames, "
          f"{totals['bytes_received']} bytes)")
    print(f"scope buffer: {scope.buffer.stats}")
    for name in ("throughput", "latency", "queue"):
        channel = scope.channel(name)
        values = channel.values()
        print(f"  {name:10s} points={len(values):4d} last={values[-1]:8.1f}")

    widget = ScopeWidget(scope)
    canvas = widget.render()
    print(ascii_render(canvas, max_width=100, max_height=24))
    write_ppm(canvas, "distributed_mxtraf.ppm")
    print("wrote distributed_mxtraf.ppm")


if __name__ == "__main__":
    main()
