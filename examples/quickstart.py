#!/usr/bin/env python3
"""Quickstart: a line-for-line port of the paper's Figure 6 program.

The original C fragment::

    scope = gtk_scope_new(name, width, height);
    gtk_scope_signal_new(scope, elephants_sig);
    gtk_scope_set_polling_mode(scope, 50);        /* 50 ms */
    gtk_scope_start_polling(scope);
    g_io_add_watch(..., G_IO_IN, read_program, fd);
    gtk_main();                                   /* doesn't return */

``read_program`` runs whenever the control connection has data and
updates the ``elephants`` variable, which the scope polls every 50 ms.
Here the "control connection" is an in-memory transport fed by a
simulated remote controller, and gtk_main is bounded so the script
terminates.
"""

from repro.core.capi import (
    G_IO_IN,
    g_io_add_watch,
    g_main_loop,
    gtk_main_quit,
    gtk_scope_new,
    gtk_scope_set_polling_mode,
    gtk_scope_signal_new,
    gtk_scope_start_polling,
)
from repro.core.signal import Cell, SignalType, memory_signal
from repro.eventloop.loop import MainLoop
from repro.gui.render import ascii_render, write_ppm
from repro.gui.scope_widget import ScopeWidget
from repro.net.transport import memory_pair


def main() -> None:
    loop = g_main_loop(MainLoop())  # fresh default loop (virtual clock)

    # int elephants;  -- the word of memory the scope polls.
    elephants = Cell(0)
    elephants_sig = memory_signal(
        "elephants", elephants, SignalType.INTEGER, min=0, max=40, color="green"
    )

    scope = gtk_scope_new("mxtraf control", width=400, height=120)
    gtk_scope_signal_new(scope, elephants_sig)
    gtk_scope_set_polling_mode(scope, 50)  # sampling period: 50 ms
    gtk_scope_start_polling(scope)

    # The control channel: a remote peer tells us how many elephants to
    # run.  fd_client plays the remote end, fd_server is our socket.
    fd_client, fd_server = memory_pair(loop.clock)

    def read_program(channel, _condition) -> bool:
        """Figure 6's I/O callback: non-blocking read, update state."""
        data = channel.recv()
        for token in data.split():
            elephants.value = int(token)
        return True

    g_io_add_watch(fd_server, G_IO_IN, read_program)

    # A simulated remote controller: every 2 s it doubles the flows.
    schedule = iter([2, 4, 8, 16, 32])

    def controller(_lost) -> bool:
        try:
            fd_client.send(f"{next(schedule)} ".encode())
            return True
        except StopIteration:
            gtk_main_quit()
            return False

    loop.timeout_add(2000, controller)

    # gtk_main(): run until the controller quits us (bounded for CI).
    loop.run_until(13_000)

    print(f"polls: {scope.polls}, final elephants: {scope.value_of('elephants')}")
    widget = ScopeWidget(scope)
    canvas = widget.render()
    print(ascii_render(canvas, max_width=100, max_height=24))
    write_ppm(canvas, "quickstart_scope.ppm")
    print("wrote quickstart_scope.ppm")


if __name__ == "__main__":
    main()
