#!/usr/bin/env python3
"""Scoping a software phase-lock loop (Section 1's control example).

The PLL tracks a reference oscillator; at t=6s the reference frequency
steps from 5 Hz to 7 Hz and the scope shows the classic transient: the
phase error spikes, the loop re-acquires, the lock indicator drops and
returns.  A low-pass filtered copy of the phase error (the GtkScopeSig
``filter`` parameter, alpha=0.9) is displayed alongside the raw one, and
after the run the trace's frequency-domain view confirms the tracked
frequency — gscope's "time and frequency representation of signals".
"""

import math

from repro.control import PhaseLockLoop, PLLConfig
from repro.control.pll import ReferenceOscillator
from repro.core.frequency import spectrum
from repro.core.scope import Scope
from repro.core.signal import func_signal
from repro.eventloop.loop import MainLoop
from repro.gui.render import ascii_render, write_ppm
from repro.gui.scope_widget import ScopeWidget

SAMPLE_MS = 10.0  # the paper's finest polling granularity (100 Hz)


def main() -> None:
    loop = MainLoop()
    reference = ReferenceOscillator(freq_hz=5.0)
    pll = PhaseLockLoop(PLLConfig(nominal_freq_hz=5.0))

    scope = Scope("software PLL", loop, width=500, height=140, period_ms=SAMPLE_MS)
    scope.signal_new(
        func_signal(
            "phase_error",
            lambda *_: pll.phase_error,
            min=-math.pi,
            max=math.pi,
            color="green",
        )
    )
    scope.signal_new(
        func_signal(
            "phase_error_lp",
            lambda *_: pll.phase_error,
            min=-math.pi,
            max=math.pi,
            color="cyan",
            filter=0.9,  # the Section 3.1 low-pass filter
        )
    )
    scope.signal_new(
        func_signal("freq_est", pll.get_freq_estimate, min=0, max=10, color="red")
    )
    scope.signal_new(
        func_signal("locked", pll.get_lock, min=0, max=1.2, color="yellow")
    )
    scope.set_polling_mode(SAMPLE_MS)
    scope.start_polling()

    # The control loop itself runs at the sample rate.
    def control_step(_lost) -> bool:
        phase = reference.advance(SAMPLE_MS / 1000.0)
        pll.step(phase, SAMPLE_MS / 1000.0)
        return True

    loop.timeout_add(SAMPLE_MS, control_step)

    def frequency_step(_lost) -> bool:
        reference.set_frequency(7.0)
        return False

    loop.timeout_add(6000, frequency_step)

    loop.run_until(12_000)

    print(f"locked: {pll.locked}, freq estimate: {pll.freq_estimate_hz:.2f} Hz "
          f"(reference: {reference.freq_hz} Hz)")

    # Frequency-domain view of the NCO output proxy: a sine at the
    # estimated frequency sampled by the scope trace.
    trace = scope.channel("freq_est").values()
    spec = spectrum(trace[-512:], SAMPLE_MS)
    print(f"spectrum peak: {spec.peak()[0]:.2f} Hz over {spec.nyquist_hz:.0f} Hz span")

    widget = ScopeWidget(scope)
    canvas = widget.render()
    print(ascii_render(canvas, max_width=100, max_height=24))
    write_ppm(canvas, "pll_scope.ppm")
    print("wrote pll_scope.ppm")


if __name__ == "__main__":
    main()
