#!/usr/bin/env python3
"""Scoping a quality-adaptive streaming player (the paper's media demo).

The signals are the ones Section 1 motivates: "network bandwidth ...
fill levels of buffers in a pipeline".  The player adapts its encoding
quality to a fading network; the scope shows bandwidth, the network
buffer fill level, the chosen quality level, and an event-aggregated
display miss-rate (the Section 4.2 Events aggregator).  The player's
adaptation thresholds are exposed as Figure 3-style control parameters
and tightened mid-run through the parameter window.
"""

from repro.core.aggregate import AggregateKind
from repro.core.params import ControlParameter, ParameterStore
from repro.core.scope import Scope
from repro.core.signal import SignalSpec, SignalType, func_signal
from repro.eventloop.loop import MainLoop
from repro.gui.render import ascii_render, write_ppm
from repro.gui.scope_widget import ScopeWidget
from repro.gui.windows import ControlParametersWindow
from repro.media import AdaptivePlayer, PlayerConfig

TICK_MS = 100.0


def main() -> None:
    loop = MainLoop()
    player = AdaptivePlayer(PlayerConfig())

    scope = Scope("adaptive player", loop, width=500, height=140, period_ms=TICK_MS)
    scope.signal_new(
        func_signal("bandwidth", player.get_bandwidth, min=0, max=4000, color="green")
    )
    scope.signal_new(
        func_signal("buffer_fill", player.get_buffer_fill, min=0, max=100, color="red")
    )
    scope.signal_new(
        func_signal("quality", player.get_quality_level, min=0, max=5, color="yellow")
    )
    # Event-driven signal: one event per missed display deadline,
    # aggregated per polling interval with the Events function.
    scope.signal_new(
        SignalSpec(
            name="misses",
            type=SignalType.FLOAT,
            aggregate=AggregateKind.EVENTS,
            min=0,
            max=10,
            color="magenta",
        )
    )
    scope.set_polling_mode(TICK_MS)
    scope.start_polling()

    # Control parameters (Figure 3): the adaptation thresholds.
    params = ParameterStore()
    params.add(
        ControlParameter(
            "upgrade_fill",
            getter=lambda: player.config.upgrade_fill,
            setter=lambda v: setattr(player.config, "upgrade_fill", v),
            minimum=0,
            maximum=100,
        )
    )
    params.add(
        ControlParameter(
            "downgrade_fill",
            getter=lambda: player.config.downgrade_fill,
            setter=lambda v: setattr(player.config, "downgrade_fill", v),
            minimum=0,
            maximum=100,
        )
    )
    window = ControlParametersWindow(params, title="player parameters")

    misses_before = [0]

    def player_tick(_lost) -> bool:
        player.tick(TICK_MS / 1000.0)
        new_misses = player.pipeline.display_misses - misses_before[0]
        for _ in range(int(new_misses)):
            scope.event("misses")
        misses_before[0] = player.pipeline.display_misses
        return True

    loop.timeout_add(TICK_MS, player_tick)

    # Mid-run, tighten the adaptation through the parameter window —
    # "modification of system behavior in real-time".
    def tighten(_lost) -> bool:
        window.set("upgrade_fill", 80)
        window.set("downgrade_fill", 40)
        return False

    loop.timeout_add(20_000, tighten)

    loop.run_until(40_000)

    stats = player.pipeline.stats()
    print(f"quality changes: {player.quality_changes}, final level: {player.level}")
    print(f"displayed: {stats['displayed']:.0f} frames, "
          f"misses: {stats['display_misses']:.0f}, "
          f"network drops: {stats['network_drops']:.0f}")
    print("control parameters now:", window.rows())

    widget = ScopeWidget(scope)
    canvas = widget.render()
    print(ascii_render(canvas, max_width=100, max_height=24))
    write_ppm(canvas, "media_player.ppm")
    print("wrote media_player.ppm")


if __name__ == "__main__":
    main()
