#!/usr/bin/env python3
"""The paper's headline demo: TCP vs ECN under congestion (Figures 4/5).

Recreates Section 2's experiment end to end:

* an emulated wide-area path (bandwidth + delay constrained bottleneck —
  the nistnet role),
* mxtraf generating long-lived "elephant" flows, doubled from 8 to 16
  roughly half way through the x-axis,
* a scope displaying two signals: ``elephants`` (a polled memory cell)
  and ``CWND`` of one arbitrarily chosen elephant (a FUNC signal, the
  paper's ``get_cwnd``),

once with a DropTail bottleneck and plain TCP (Figure 4), once with a
RED+ECN bottleneck and ECN flows (Figure 5).  The claim to check
visually: the TCP trace hits the CWND=1 floor several times (timeouts);
the ECN trace never does.
"""

from repro.core.signal import SignalType, func_signal, memory_signal
from repro.core.scope import Scope
from repro.eventloop.loop import MainLoop
from repro.gui.render import ascii_render, write_ppm
from repro.gui.scope_widget import ScopeWidget
from repro.tcpsim import Engine, Mxtraf, MxtrafConfig, Network, NetworkConfig


def run_experiment(queue: str, ecn: bool, title: str, out_file: str) -> None:
    loop = MainLoop()
    engine = Engine()
    network = Network(engine, NetworkConfig(queue=queue, ecn=ecn))
    mxtraf = Mxtraf(network, MxtrafConfig(elephants=8))
    watched = mxtraf.watched_flow()

    scope = Scope(title, loop, width=600, height=150, period_ms=50)
    scope.signal_new(
        memory_signal(
            "elephants",
            mxtraf.elephants_cell,
            SignalType.INTEGER,
            min=0,
            max=40,
            color="yellow",
        )
    )
    scope.signal_new(
        func_signal("CWND", watched.get_cwnd, min=0, max=40, color="green")
    )
    scope.set_polling_mode(50)
    # Lockstep: attached before polling starts so at every shared 50 ms
    # deadline the simulation advances to now *before* the scope samples
    # it (equal priority dispatches in attach order).
    engine.drive_from(loop, period_ms=50)
    scope.start_polling()

    # Double the elephants half way through the 30 s run.
    def double_elephants(_lost) -> bool:
        mxtraf.set_elephants(16)
        return False

    loop.timeout_add(15_000, double_elephants)

    loop.run_until(30_000)

    print(f"=== {title} ===")
    print(
        f"watched flow: timeouts={watched.stats.timeouts} "
        f"fast_rtx={watched.stats.fast_retransmits} "
        f"ecn_reductions={watched.stats.ecn_reductions}"
    )
    print(f"all flows:    timeouts={network.total_timeouts()}")
    trace = scope.channel("CWND").values()
    print(f"CWND min={min(trace):.1f} max={max(trace):.1f}")

    widget = ScopeWidget(scope)
    canvas = widget.render()
    print(ascii_render(canvas, max_width=110, max_height=26))
    write_ppm(canvas, out_file)
    print(f"wrote {out_file}\n")


def main() -> None:
    run_experiment("droptail", False, "TCP behavior (Figure 4)", "figure4_tcp.ppm")
    run_experiment("red", True, "ECN behavior (Figure 5)", "figure5_ecn.ppm")


if __name__ == "__main__":
    main()
