#!/usr/bin/env python3
"""Scoping the proportion-period CPU scheduler (Section 4.2's example).

"We use gscope to view dynamically changing process proportions as
assigned by a real-rate proportion-period scheduler.  These proportions
are assigned at the granularity of the process period and we set the
scope polling period to be same as the process period."

The demo runs three real-rate processes (a video decoder, an audio
mixer and a batch job), scopes their assigned proportions with the
polling period equal to the scheduling period, then stresses the
allocator twice: the video process's rate doubles mid-run, and a fourth
process arrives late — exercising gscope's dynamic signal addition.
"""

from repro.core.scope import Scope
from repro.core.signal import func_signal
from repro.eventloop.loop import MainLoop
from repro.gui.render import ascii_render, write_ppm
from repro.gui.scope_widget import ScopeWidget
from repro.sched import ProportionAllocator, SchedulerConfig, SimProcess

PERIOD_MS = 50.0


def proportion_signal(allocator: ProportionAllocator, name: str, color: str):
    """Proportion as a FUNC signal, scaled to the 0..100 y-ruler."""
    return func_signal(
        name,
        lambda *_: 100.0 * allocator.proportion_of(name),
        min=0,
        max=100,
        color=color,
    )


def main() -> None:
    loop = MainLoop()
    allocator = ProportionAllocator(SchedulerConfig(period_ms=PERIOD_MS))
    allocator.add(SimProcess("video", desired_rate=30.0, work_factor=100.0))
    allocator.add(SimProcess("audio", desired_rate=50.0, work_factor=400.0))
    allocator.add(SimProcess("batch", desired_rate=10.0, work_factor=50.0))

    scope = Scope("proportion-period scheduler", loop, width=400, height=120,
                  period_ms=PERIOD_MS)
    for name, color in (("video", "green"), ("audio", "red"), ("batch", "blue")):
        scope.signal_new(proportion_signal(allocator, name, color))
    scope.set_polling_mode(PERIOD_MS)
    scope.start_polling()

    # The scheduler runs at the same period the scope polls (the paper's
    # point: no phase alignment needed, the proportion holds in between).
    def schedule(_lost) -> bool:
        allocator.run_period()
        return True

    loop.timeout_add(PERIOD_MS, schedule)

    # Disturbance 1: the video scene gets twice as complex at t=5s.
    def complicate(_lost) -> bool:
        allocator.process("video").rate_change(60.0)
        return False

    loop.timeout_add(5000, complicate)

    # Disturbance 2: a new process arrives at t=10s; its proportion
    # signal is added to the running scope (dynamic signal addition).
    def arrive(_lost) -> bool:
        allocator.add(SimProcess("capture", desired_rate=25.0, work_factor=80.0))
        scope.signal_new(proportion_signal(allocator, "capture", "magenta"))
        return False

    loop.timeout_add(10_000, arrive)

    loop.run_until(15_000)

    print("assigned proportions after 15s:")
    for process in allocator.processes:
        assigned = allocator.proportion_of(process.name)
        print(
            f"  {process.name:8s} assigned={assigned:5.2f} "
            f"ideal={process.ideal_proportion:5.2f} fill={process.queue_fill:4.2f}"
        )
    print(f"total assigned: {allocator.total_assigned:.2f} "
          f"(squeezed {allocator.squeezes} of {allocator.periods} periods)")

    widget = ScopeWidget(scope)
    canvas = widget.render()
    print(ascii_render(canvas, max_width=100, max_height=24))
    write_ppm(canvas, "scheduler_scope.ppm")
    print("wrote scheduler_scope.ppm")


if __name__ == "__main__":
    main()
