"""F1 — Figure 1: the GtkScope widget.

The paper's Figure 1 is a screenshot of the scope widget displaying two
signals with zoom/bias/period/delay controls and per-signal rows.  The
benchmark regenerates that widget headlessly and times a full render
pass (the cost of one display refresh, which in the C library happens
on the GTK idle path every polling period).
"""

import math

from conftest import report

from repro.core.scope import Scope
from repro.core.signal import Cell, SignalType, func_signal, memory_signal
from repro.eventloop.loop import MainLoop
from repro.gui.scope_widget import ScopeWidget


def build_figure1_scope():
    loop = MainLoop()
    scope = Scope("GtkScope", loop, width=512, height=160, period_ms=50)
    elephants = Cell(8)
    scope.signal_new(
        memory_signal(
            "elephants", elephants, SignalType.INTEGER, min=0, max=40, color="yellow"
        )
    )
    scope.signal_new(
        func_signal(
            "CWND",
            lambda *_: 20 + 15 * math.sin(loop.clock.now() / 400.0),
            min=0,
            max=40,
            color="green",
        )
    )
    scope.channel("CWND").toggle_value_readout()  # the pressed Value button
    scope.start_polling()
    loop.run_for(30_000)
    elephants.value = 16
    loop.run_for(10_000)
    return scope


def test_fig1_widget_render(benchmark):
    scope = build_figure1_scope()
    widget = ScopeWidget(scope)

    canvas = benchmark(widget.render)

    green = canvas.count_pixels((64, 160, 43))
    yellow = canvas.count_pixels((230, 190, 20))
    assert green > 100, "CWND trace missing"
    assert yellow > 100, "elephants trace missing"
    report(
        "F1: GtkScope widget (Figure 1)",
        [
            ("paper artifact", "screenshot: canvas + zoom/bias/period/delay + signal rows"),
            ("canvas", f"{canvas.width}x{canvas.height} px"),
            ("signals shown", ", ".join(scope.signal_names)),
            ("CWND trace pixels", green),
            ("elephants trace pixels", yellow),
            ("value readout", scope.value_of("CWND")),
            ("polls displayed", scope.polls),
        ],
    )
