"""X8 — hot-path throughput: columnar pipeline vs the seed object path.

The paper's Section 5 is an overhead evaluation: gscope must stay out of
the way of the software it visualizes.  This benchmark measures the
acquisition hot path in samples/second — buffer ingest, buffer drain,
event aggregation and trace append — comparing the columnar
struct-of-arrays pipeline against the seed's per-object implementation
(heap of frozen dataclasses, list-append aggregators, deque of
TracePoints), reproduced verbatim below as the baseline.

Acceptance: >= 5x samples/sec on the 1M-sample ingest+drain run.
"""

import heapq
import itertools
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np
import pytest
from conftest import report

from repro.core.aggregate import AggregateKind, make_aggregator
from repro.core.buffer import SampleBuffer
from repro.core.channel import Channel
from repro.core.signal import buffer_signal

N = 1_000_000
BATCH = 65_536


# ----------------------------------------------------------------------
# The seed per-object implementations, kept verbatim as the baseline.
# ----------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class _SeedSample:
    time_ms: float
    seq: int = field(compare=True)
    name: str = field(compare=False)
    value: float = field(compare=False)


class _SeedBuffer:
    """The seed SampleBuffer: a heap of frozen dataclass samples."""

    def __init__(self, delay_ms=0.0):
        self.delay_ms = delay_ms
        self._heap = []
        self._seq = itertools.count()

    def push(self, name, time_ms, value, now_ms):
        if now_ms > time_ms + self.delay_ms:
            return False
        heapq.heappush(
            self._heap,
            _SeedSample(time_ms=float(time_ms), seq=next(self._seq), name=name, value=float(value)),
        )
        return True

    def pop_due(self, now_ms):
        due = []
        while self._heap and self._heap[0].time_ms + self.delay_ms <= now_ms:
            due.append(heapq.heappop(self._heap))
        return due


class _SeedAggregator:
    """The seed list-append accumulator (Sum shape)."""

    def __init__(self):
        self._values = []

    def add(self, value=1.0):
        self._values.append(float(value))

    def collect(self, period_ms):
        values, self._values = self._values, []
        return float(sum(values))


@dataclass(frozen=True)
class _SeedTracePoint:
    time_ms: float
    raw: float
    value: float


def _rate(n, seconds):
    return f"{n / seconds / 1e6:.2f} M samples/s ({seconds:.3f} s)"


def test_ingest_drain_1m():
    """1M-sample ingest+drain: columnar bulk path vs seed heap path."""
    times = np.arange(N, dtype=np.float64) * 0.01
    values = np.sin(times)

    t0 = time.perf_counter()
    seed_buf = _SeedBuffer(delay_ms=0.0)
    tl, vl = times.tolist(), values.tolist()
    for i in range(N):
        seed_buf.push("sig", tl[i], vl[i], 0.0)
    seed_popped = 0
    while True:
        due = seed_buf.pop_due(1e18)
        seed_popped += len(due)
        if not due:
            break
    seed_s = time.perf_counter() - t0
    assert seed_popped == N

    t0 = time.perf_counter()
    col_buf = SampleBuffer(delay_ms=0.0)
    for i in range(0, N, BATCH):
        col_buf.push_many("sig", times[i : i + BATCH], values[i : i + BATCH], 0.0)
    col_popped = 0
    while len(col_buf):
        t, v, ids = col_buf.pop_due_arrays(1e18)
        col_popped += t.shape[0]
    col_s = time.perf_counter() - t0
    assert col_popped == N
    assert col_buf.stats.pushed == N and col_buf.stats.popped == N

    speedup = seed_s / col_s
    report(
        "X8a: 1M-sample buffer ingest+drain",
        [
            ("seed per-object path", _rate(N, seed_s)),
            ("columnar batch path", _rate(N, col_s)),
            ("speedup", f"{speedup:.1f}x (acceptance: >= 5x)"),
        ],
    )
    assert speedup >= 5.0, f"columnar path only {speedup:.1f}x faster"


def test_aggregation_1m_events():
    """1M event adds: O(1) scalar accumulators and vectorised add_many."""
    events = np.abs(np.sin(np.arange(N))) * 1500.0
    events_list = events.tolist()

    t0 = time.perf_counter()
    seed_agg = _SeedAggregator()
    add = seed_agg.add
    for v in events_list:
        add(v)
    seed_total = seed_agg.collect(50.0)
    seed_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    scalar_agg = make_aggregator(AggregateKind.SUM)
    add = scalar_agg.add
    for v in events_list:
        add(v)
    scalar_total = scalar_agg.collect(50.0)
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batch_agg = make_aggregator(AggregateKind.SUM)
    for i in range(0, N, BATCH):
        batch_agg.add_many(events[i : i + BATCH])
    batch_total = batch_agg.collect(50.0)
    batch_s = time.perf_counter() - t0

    assert scalar_total == seed_total
    assert batch_total == pytest.approx(seed_total, rel=1e-9)
    report(
        "X8b: 1M event aggregation (SUM)",
        [
            ("seed list-append", _rate(N, seed_s)),
            ("scalar accumulators", _rate(N, scalar_s)),
            ("vectorised add_many", _rate(N, batch_s)),
            ("add_many speedup", f"{seed_s / batch_s:.1f}x"),
        ],
    )
    assert batch_s < seed_s


def test_trace_append_1m():
    """1M trace appends: deque-of-objects vs TraceRing batch extend."""
    times = np.arange(N, dtype=np.float64)
    values = np.cos(times * 0.001)
    tl, vl = times.tolist(), values.tolist()

    t0 = time.perf_counter()
    seed_trace = deque(maxlen=4096)
    for i in range(N):
        seed_trace.append(_SeedTracePoint(time_ms=tl[i], raw=vl[i], value=vl[i]))
    seed_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    channel = Channel(buffer_signal("sig"), capacity=4096)
    for i in range(0, N, BATCH):
        channel.accept_samples(times[i : i + BATCH], values[i : i + BATCH])
    col_s = time.perf_counter() - t0

    assert len(channel.trace) == 4096
    assert channel.trace.last_raw() == seed_trace[-1].raw
    report(
        "X8c: 1M trace appends (capacity 4096)",
        [
            ("seed deque of TracePoints", _rate(N, seed_s)),
            ("TraceRing batch extend", _rate(N, col_s)),
            ("speedup", f"{seed_s / col_s:.1f}x"),
        ],
    )
    assert col_s < seed_s


def test_scope_pipeline_drain():
    """End-to-end: push_samples -> pop_due_grouped -> accept_samples."""
    n = 500_000
    times = np.arange(n, dtype=np.float64) * 0.01
    values = np.sin(times)

    t0 = time.perf_counter()
    buf = SampleBuffer(delay_ms=0.0)
    channel = Channel(buffer_signal("sig"), capacity=8192)
    for i in range(0, n, BATCH):
        buf.push_many("sig", times[i : i + BATCH], values[i : i + BATCH], 0.0)
    drained = 0
    while len(buf):
        for name, (t, v) in buf.pop_due_grouped(1e18).items():
            channel.accept_samples(t, v)
            drained += t.shape[0]
    col_s = time.perf_counter() - t0

    assert drained == n
    assert channel.samples == n
    report(
        "X8d: end-to-end columnar pipeline (push -> drain -> trace)",
        [
            ("samples", n),
            ("throughput", _rate(n, col_s)),
        ],
    )
