"""X15 — self-instrumentation overhead: the scope must not perturb itself.

The paper's Section 5 argument — gscope must stay out of the way of the
software it observes — applies doubly to the scope's *own* telemetry:
an observability plane that slows the pipeline it measures reports on a
system that no longer exists.  Three measurements:

* **X15a — ingest overhead**: the X8-style 1M-sample columnar ingest
  run, fully instrumented (registry mounted, event-loop profiler on,
  publisher live, tracer installed) versus bare.  Acceptance:
  instrumented throughput >= 95% of uninstrumented.
* **X15b — publisher tick cost**: one publish pass over 1k dirty
  instruments, in instruments/second (the scrape is off the hot path;
  this bounds how often it can run).
* **X15c — trace collector throughput**: spans/second through the
  ring collector (bounds how fine-grained spans can get before the
  collector itself becomes the workload).

Ratios are best-seconds over best-seconds across attempts: scheduler
noise only ever *slows* a run, so each side's minimum is its cleanest
estimate and their quotient is the faithful overhead.
"""

import os
import time

import numpy as np
import pytest
from conftest import report

from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.obs.metrics import MetricsPublisher, MetricsRegistry
from repro.obs.trace import TraceCollector, install_tracer, uninstall_tracer

N = 1_000_000
BATCH = 65_536  # the X8 ingest batch size
PUBLISH_EVERY = 4  # batches between manual publisher passes
INSTRUMENTS = 1_000
SPANS = 200_000

pytestmark = [
    pytest.mark.benchmark,
    pytest.mark.obs,
    pytest.mark.skipif(
        not os.environ.get("REPRO_BENCH"),
        reason="benchmarks are opt-in: set REPRO_BENCH=1",
    ),
]


def _rig():
    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("bench", delay_ms=1e12)
    scope.signal_new(buffer_signal("pkts"))
    return loop, manager


def _batches(total: int, batch: int):
    rng = np.random.default_rng(0)
    out = []
    t = 0.0
    for _ in range(total // batch):
        times = t + np.arange(batch, dtype=np.float64)
        out.append((times, rng.poisson(8.0, batch).astype(np.float64)))
        t += batch
    return out


def bench_ingest(instrumented: bool, total: int = N) -> dict:
    """X15a: tight columnar ingest, with or without the obs plane."""
    loop, manager = _rig()
    batches = _batches(total, BATCH)
    publisher = None
    if instrumented:
        registry = MetricsRegistry()
        assert loop.observe(registry)
        publisher = MetricsPublisher(loop, manager, registry, period_ms=50.0)
        assert publisher.active
        ingested = registry.counter("bench.batches")
        assert install_tracer(TraceCollector(loop.clock))
    try:
        t0 = time.perf_counter()
        if instrumented:
            for i, (times, values) in enumerate(batches):
                manager.push_samples("pkts", times, values)
                ingested.inc()
                if i % PUBLISH_EVERY == 0:
                    publisher.publish(times[-1])
        else:
            for times, values in batches:
                manager.push_samples("pkts", times, values)
        seconds = time.perf_counter() - t0
    finally:
        if instrumented:
            uninstall_tracer()
    samples = len(batches) * BATCH
    return {
        "samples": samples,
        "seconds": seconds,
        "rate_per_sec": samples / seconds,
    }


def ingest_overhead(attempts: int = 7) -> dict:
    """Best-seconds ratio: instrumented throughput over bare throughput.

    Attempts are interleaved (bare, instrumented, bare, ...) after one
    untimed warm-up of each, so slow machine-level drift — frequency
    scaling, cache state, a noisy neighbour — lands on both sides
    instead of biasing whichever variant ran last.  Each side's minimum
    is its cleanest estimate (noise only ever slows a run).
    """
    bench_ingest(False, total=BATCH * 2)
    bench_ingest(True, total=BATCH * 2)
    bare = instr = None
    for _ in range(attempts):
        b = bench_ingest(False)
        i = bench_ingest(True)
        if bare is None or b["seconds"] < bare["seconds"]:
            bare = b
        if instr is None or i["seconds"] < instr["seconds"]:
            instr = i
    return {
        "samples": bare["samples"],
        "bare": bare,
        "instrumented": instr,
        "ratio": bare["seconds"] / instr["seconds"],
    }


def bench_publisher(instruments: int = INSTRUMENTS, passes: int = 50) -> dict:
    """X15b: publish passes over ``instruments`` all-dirty counters."""
    loop, manager = _rig()
    registry = MetricsRegistry()
    cells = [registry.counter(f"bench.c{i:04d}") for i in range(instruments)]
    publisher = MetricsPublisher(loop, manager, registry, period_ms=50.0)
    t0 = time.perf_counter()
    for p in range(passes):
        for cell in cells:  # dirty every instrument so nothing suppresses
            cell.inc()
        publisher.publish(float(p))
    seconds = time.perf_counter() - t0
    return {
        "instruments": instruments,
        "passes": passes,
        "seconds": seconds,
        "rate_per_sec": instruments * passes / seconds,
        "tick_ms": seconds / passes * 1e3,
    }


def bench_tracer(spans: int = SPANS) -> dict:
    """X15c: span open/close throughput through the ring collector."""
    loop, _ = _rig()
    collector = TraceCollector(loop.clock, capacity=1 << 12)
    span = collector.span
    t0 = time.perf_counter()
    for _ in range(spans):
        with span("bench"):
            pass
    seconds = time.perf_counter() - t0
    assert collector.finished == spans
    return {
        "spans": spans,
        "seconds": seconds,
        "rate_per_sec": spans / seconds,
    }


def test_x15a_ingest_overhead():
    result = ingest_overhead()
    report(
        "X15a self-instrumentation ingest overhead (1M samples)",
        [
            ("bare", f"{result['bare']['rate_per_sec']:,.0f} samples/s"),
            (
                "instrumented",
                f"{result['instrumented']['rate_per_sec']:,.0f} samples/s",
            ),
            ("ratio", f"{result['ratio']:.3f} (acceptance >= 0.95)"),
        ],
    )
    assert result["ratio"] >= 0.95


def test_x15b_publisher_cost():
    result = bench_publisher()
    report(
        "X15b publisher pass at 1k dirty instruments",
        [
            ("instruments", f"{result['instruments']:,}"),
            ("tick", f"{result['tick_ms']:.2f} ms"),
            ("rate", f"{result['rate_per_sec']:,.0f} instruments/s"),
        ],
    )
    # A scrape pass must be far cheaper than its 50 ms cadence.
    assert result["tick_ms"] < 50.0


def test_x15c_tracer_throughput():
    result = bench_tracer()
    report(
        "X15c trace collector span throughput",
        [
            ("spans", f"{result['spans']:,}"),
            ("rate", f"{result['rate_per_sec']:,.0f} spans/s"),
        ],
    )
    # Well above any realistic span emission rate (one per batch, not
    # one per sample).
    assert result["rate_per_sec"] > 100_000


def run_suite() -> dict:
    return {
        "benchmark": "obs",
        "ingest_overhead": ingest_overhead(),
        "publisher": bench_publisher(),
        "tracer": bench_tracer(),
    }


if __name__ == "__main__":
    import json

    print(json.dumps(run_suite(), indent=2))
