"""X12 — derived-signal query engine: batch and incremental throughput.

Derived signals only compound the system's scale if querying costs less
than acquiring: the capture store writes ~15M samples/s and the binary
wire ingests ~10M/s, so re-deriving signals from a recorded run must
run at the same order of magnitude.  Three measurements over a
two-signal store (samples split evenly between ``a`` and ``b``):

* **X12a `arith`** — the 2-op arithmetic query ``a - 0.5*b``
  end-to-end over a :class:`~repro.capture.reader.CaptureReader`
  (``columns_for`` read + time-aligning join + arithmetic), 1M samples.
  Acceptance: **≥ 5M samples/s**.
* **X12b `pipeline`** — a deeper mixed pipeline (join, one-pole ewma,
  rate, windowed sum) over the same store.
* **X12c `incremental`** — the same arithmetic query fed as a live tap
  in 1k-sample batches through :class:`~repro.query.live.LiveQuery`
  (no manager round-trip), whole store.

Run stand-alone for machine-readable JSON (``--json PATH`` writes it,
otherwise it lands on stdout)::

    PYTHONPATH=src python benchmarks/bench_query.py [--quick] [--json out.json]

or through pytest for the acceptance assertions::

    PYTHONPATH=src python -m pytest benchmarks/bench_query.py -q -s
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

import numpy as np
from conftest import report

from repro.capture import CaptureReader, CaptureWriter
from repro.query import LiveQuery, compile_query, execute

ACCEPTANCE_ARITH_RATE = 5_000_000.0
TOTAL_SAMPLES = 1_000_000
QUICK_SAMPLES = 200_000
BATCH = 1_000

ARITH_QUERY = "a - 0.5*b"
PIPELINE_QUERY = (
    "d = a - 0.5*b; "
    "smooth = ewma(d, 0.9); "
    "slope = rate(a); "
    "per_win = sum_over(b, 5)"
)


def build_store(path: Path, total: int, batch: int = BATCH) -> None:
    """Write ``total`` samples alternating between signals a and b."""
    rng = np.random.default_rng(7)
    values = rng.standard_normal(batch)
    writer = CaptureWriter(path)
    now = 0.0
    sent = 0
    index = 0
    while sent < total:
        n = min(batch, total - sent)
        now += 1.0
        times = np.linspace(now - 1.0, now, n, endpoint=False)
        writer.on_push("a" if index % 2 == 0 else "b", times, values[:n], now)
        sent += n
        index += 1
    writer.close()


def bench_batch(total: int, query: str = ARITH_QUERY) -> Dict[str, float]:
    """End-to-end batch query over a capture store: read + execute."""
    root = Path(tempfile.mkdtemp(prefix="bench_query_"))
    try:
        build_store(root / "store", total)
        plan = compile_query(query)
        # Warm the numpy ufunc/import paths so the measurement reflects
        # steady-state engine throughput, not first-touch costs.
        warm = np.arange(1024, dtype=np.float64)
        execute({"a": (warm, warm), "b": (warm + 0.5, warm)}, plan)
        with CaptureReader(root / "store") as reader:
            t0 = time.perf_counter()
            results = execute(reader, plan)
            elapsed = time.perf_counter() - t0
        out_samples = sum(t.shape[0] for t, _ in results.values())
        return {
            "samples": total,
            "derived_samples": out_samples,
            "outputs": len(results),
            "seconds": elapsed,
            "rate_per_sec": total / elapsed,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def bench_incremental(
    total: int, batch: int = BATCH, query: str = ARITH_QUERY
) -> Dict[str, float]:
    """The same query consumed as a live tap in ``batch``-sized pushes."""
    root = Path(tempfile.mkdtemp(prefix="bench_query_"))
    try:
        build_store(root / "store", total)
        with CaptureReader(root / "store") as reader:
            # Copies: block columns are views into the reader's mapping.
            blocks = [
                (block.name, block.times.copy(), block.values.copy())
                for _, block in reader.iter_blocks()
            ]
        live = LiveQuery(query)
        derived = 0

        def count(name, times, values) -> None:
            nonlocal derived
            derived += times.shape[0]

        live.on_output(count)
        t0 = time.perf_counter()
        for name, times, values in blocks:
            live(name, times, values, 0.0)
        live.finish()
        elapsed = time.perf_counter() - t0
        return {
            "samples": total,
            "derived_samples": derived,
            "batches": len(blocks),
            "seconds": elapsed,
            "rate_per_sec": total / elapsed,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def run_suite(total: int) -> dict:
    arith = bench_batch(total)
    pipeline = bench_batch(total, PIPELINE_QUERY)
    incremental = bench_incremental(total)
    return {
        "benchmark": "query",
        "acceptance": {"min_arith_rate_per_sec": ACCEPTANCE_ARITH_RATE},
        "arith": arith,
        "pipeline": pipeline,
        "incremental": incremental,
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_batch_arith_throughput():
    result = bench_batch(TOTAL_SAMPLES)
    report(
        f"X12a: batch 2-op arithmetic query ({result['samples']} samples)",
        [
            ("query", ARITH_QUERY),
            ("rate", f"{result['rate_per_sec']:,.0f} samples/s "
                     f"(acceptance >= {ACCEPTANCE_ARITH_RATE:,.0f})"),
            ("derived", f"{result['derived_samples']}"),
        ],
    )
    assert result["rate_per_sec"] >= ACCEPTANCE_ARITH_RATE


def test_batch_pipeline_throughput():
    result = bench_batch(TOTAL_SAMPLES, PIPELINE_QUERY)
    report(
        f"X12b: batch mixed pipeline ({result['samples']} samples, "
        f"{result['outputs']} outputs)",
        [("rate", f"{result['rate_per_sec']:,.0f} samples/s"),
         ("derived", f"{result['derived_samples']}")],
    )
    assert result["rate_per_sec"] > 0


def test_incremental_throughput():
    result = bench_incremental(QUICK_SAMPLES)
    report(
        f"X12c: incremental tap feed ({result['samples']} samples, "
        f"batches of {BATCH})",
        [("rate", f"{result['rate_per_sec']:,.0f} samples/s"),
         ("derived", f"{result['derived_samples']}")],
    )
    assert result["rate_per_sec"] > 0


# ----------------------------------------------------------------------
# stand-alone JSON mode
# ----------------------------------------------------------------------
def main(argv) -> int:
    quick = "--quick" in argv
    out_path: Optional[str] = None
    if "--json" in argv:
        out_path = argv[argv.index("--json") + 1]
    total = QUICK_SAMPLES if quick else TOTAL_SAMPLES
    result = run_suite(total)
    result["mode"] = "quick" if quick else "full"
    text = json.dumps(result, indent=2)
    if out_path:
        with open(out_path, "w") as fh:
            fh.write(text + "\n")
    print(text)
    return 0 if result["arith"]["rate_per_sec"] >= ACCEPTANCE_ARITH_RATE else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
