"""X12 — derived-signal query engine: batch and incremental throughput.

Derived signals only compound the system's scale if querying costs less
than acquiring: the capture store writes ~15M samples/s and the binary
wire ingests ~10M/s, so re-deriving signals from a recorded run must
run at the same order of magnitude.  Three measurements over a
two-signal store (samples split evenly between ``a`` and ``b``):

* **X12a `arith`** — the 2-op arithmetic query ``a - 0.5*b``
  end-to-end over a :class:`~repro.capture.reader.CaptureReader`
  (``columns_for`` read + time-aligning join + arithmetic), 1M samples.
  Acceptance: **≥ 5M samples/s**.
* **X12b `pipeline`** — a deeper mixed pipeline (join, one-pole ewma,
  rate, windowed sum) over the same store.
* **X12c `incremental`** — the same arithmetic query fed as a live tap
  in 1k-sample batches through :class:`~repro.query.live.LiveQuery`
  (no manager round-trip), whole store.
* **X12d `fused_map` / `fused_state`** — single-signal operator chains
  that the fusion pass collapses into one kernel: a pure elementwise
  chain (``clip(2*a - 1, -2.5, 2.5)``) and a stateful one
  (``clip(ewma(2*a + 1, 0.9), -5, 5)``).  These isolate the fused
  single-pass path: no join, so the rate is the kernel plus the
  zero-copy read path and nothing else.
* **X12e `fanout`** — the continuous-query service's subscriber
  scaling: N raw wire sessions (1/10/100/1k) SUBSCRIBE to the *same*
  derived view on one server, a driving client streams the source
  signal, and the wall time of the whole ingest+derive+fan-out run is
  measured per N.  The server evaluates the shared plan **once** and
  ships each derived frame as one encode per distinct wire id with the
  bytes shared by reference across transmit queues, so the marginal
  subscriber costs a queue append.  Subscribers are raw injected
  endpoints (no client-side decoders) — the measurement is the
  server-side multiplexing cost, which is what the acceptance bounds.
  Acceptance: **1k subscribers < 2x the 1-subscriber wall time**.

Batch measurements are best-of-:data:`ATTEMPTS` with a **fresh reader
per attempt** — payload CRC verification is paid every time (the
per-reader cache never carries over), while first-touch costs (shared
object loads, page cache) wash out.

Run stand-alone for machine-readable JSON (``--json PATH`` writes it,
otherwise it lands on stdout)::

    PYTHONPATH=src python benchmarks/bench_query.py [--quick] [--json out.json]

or through pytest for the acceptance assertions::

    PYTHONPATH=src python -m pytest benchmarks/bench_query.py -q -s
"""

from __future__ import annotations

import gc
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np
from conftest import report

from repro.capture import CaptureReader, CaptureWriter
from repro.query import LiveQuery, compile_query, execute

ACCEPTANCE_ARITH_RATE = 5_000_000.0
TOTAL_SAMPLES = 1_000_000
QUICK_SAMPLES = 200_000
BATCH = 1_000
ATTEMPTS = 5

ARITH_QUERY = "a - 0.5*b"
PIPELINE_QUERY = (
    "d = a - 0.5*b; "
    "smooth = ewma(d, 0.9); "
    "slope = rate(a); "
    "per_win = sum_over(b, 5)"
)
#: X12d: chains the fusion pass collapses to a single kernel each.
FUSED_MAP_QUERY = "clip(2*a - 1, -2.5, 2.5)"
FUSED_STATE_QUERY = "clip(ewma(2*a + 1, 0.9), -5, 5)"
#: X12e: the shared derived view every subscriber watches.  Batches are
#: the wire's bulk-transfer size (10k samples/frame, the regime the 10M/s
#: ingest figure is quoted at): the fan-out's per-batch per-subscriber
#: cost is one shared-bytes enqueue, so bulk frames are what the <2x
#: marginal-subscriber claim is about — at tiny frames per-batch Python
#: overhead dominates any transport.
FANOUT_QUERY = "smooth = ewma(src, 0.9)"
FANOUT_SAMPLES = 2_000_000
FANOUT_BATCH = 20_000
ACCEPTANCE_FANOUT_RATIO = 2.0


def build_store(
    path: Path,
    total: int,
    batch: int = BATCH,
    signals: tuple = ("a", "b"),
) -> None:
    """Write ``total`` samples, blocks cycling through ``signals``."""
    rng = np.random.default_rng(7)
    values = rng.standard_normal(batch)
    writer = CaptureWriter(path)
    now = 0.0
    sent = 0
    index = 0
    while sent < total:
        n = min(batch, total - sent)
        now += 1.0
        times = np.linspace(now - 1.0, now, n, endpoint=False)
        writer.on_push(signals[index % len(signals)], times, values[:n], now)
        sent += n
        index += 1
    writer.close()


def bench_batch(
    total: int,
    query: str = ARITH_QUERY,
    signals: tuple = ("a", "b"),
) -> Dict[str, float]:
    """End-to-end batch query over a capture store: read + execute.

    Best of :data:`ATTEMPTS` runs, each over a **fresh** reader so the
    payload CRC pass is inside every measurement (the per-reader
    verification cache never carries between attempts).
    """
    root = Path(tempfile.mkdtemp(prefix="bench_query_"))
    try:
        build_store(root / "store", total, signals=signals)
        # Flush the freshly written store before timing: on small
        # machines the kernel's asynchronous writeback of those dirty
        # pages otherwise lands *inside* the measurement.
        os.sync()
        plan = compile_query(query)
        # Warm the numpy ufunc/import paths and native kernel builds so
        # the measurement reflects steady-state engine throughput.
        warm = np.arange(1024, dtype=np.float64)
        execute(
            {name: (warm + i, warm) for i, name in enumerate(signals)}, plan
        )
        best = float("inf")
        results: Dict = {}
        for _ in range(ATTEMPTS):
            with CaptureReader(root / "store") as reader:
                t0 = time.perf_counter()
                results = execute(reader, plan)
                elapsed = time.perf_counter() - t0
            best = min(best, elapsed)
        out_samples = sum(t.shape[0] for t, _ in results.values())
        return {
            "samples": total,
            "derived_samples": out_samples,
            "outputs": len(results),
            "seconds": best,
            "rate_per_sec": total / best,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def bench_incremental(
    total: int, batch: int = BATCH, query: str = ARITH_QUERY
) -> Dict[str, float]:
    """The same query consumed as a live tap in ``batch``-sized pushes."""
    root = Path(tempfile.mkdtemp(prefix="bench_query_"))
    try:
        build_store(root / "store", total)
        with CaptureReader(root / "store") as reader:
            # Copies: block columns are views into the reader's mapping.
            blocks = [
                (block.name, block.times.copy(), block.values.copy())
                for _, block in reader.iter_blocks()
            ]
        live = LiveQuery(query)
        derived = 0

        def count(name, times, values) -> None:
            nonlocal derived
            derived += times.shape[0]

        live.on_output(count)
        t0 = time.perf_counter()
        for name, times, values in blocks:
            live(name, times, values, 0.0)
        live.finish()
        elapsed = time.perf_counter() - t0
        return {
            "samples": total,
            "derived_samples": derived,
            "batches": len(blocks),
            "seconds": elapsed,
            "rate_per_sec": total / elapsed,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def bench_fanout(
    subscribers: int,
    total: int = FANOUT_SAMPLES,
    batch: int = FANOUT_BATCH,
) -> Dict[str, float]:
    """X12e: one shared derived view fanned to N wire subscribers.

    Subscribers are raw injected sessions — HELLO + QUERY + SUBSCRIBE
    bytes, never read back — so the measured wall time is the server's
    ingest + single shared evaluation + encode-once fan-out, not N
    client-side decoders.  The driving client's frames are pre-encoded
    outside the timing for the same reason.
    """
    from repro.core.manager import ScopeManager
    from repro.core.signal import buffer_signal
    from repro.eventloop.loop import MainLoop
    from repro.net import ScopeServer, memory_pair
    from repro.net.protocol import (
        encode_binary_samples,
        encode_hello,
        encode_name_def,
        encode_query,
    )

    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("rig", delay_ms=1e12)
    scope.signal_new(buffer_signal("src"))
    server = ScopeServer(loop, manager)

    preamble = (
        encode_hello(2)
        + encode_query({"op": "query", "id": "q", "text": FANOUT_QUERY})
        + encode_query({"op": "subscribe", "id": "q"})
    )
    for _ in range(subscribers):
        near, far = memory_pair(loop.clock)
        server.add_client(far)
        near.send(preamble)
    loop.run_for(50.0)
    assert server.queries.stats()["subscribers"] == subscribers
    assert len(server.queries.shared_queries()) == 1  # one evaluation

    source, far = memory_pair(loop.clock)
    server.add_client(far)
    source.send(encode_hello(2) + encode_name_def(0, "src"))
    loop.run_for(10.0)

    rng = np.random.default_rng(12)
    frames = []
    now = 100.0
    sent = 0
    while sent < total:
        n = min(batch, total - sent)
        times = np.linspace(now, now + 1.0, n, endpoint=False)
        frames.append(encode_binary_samples(0, times, rng.standard_normal(n)))
        now += 1.0
        sent += n

    # Collect the previous rig's cyclic garbage (loop/sources/links)
    # now, not inside the timed window.
    gc.collect()
    t0 = time.perf_counter()
    for frame in frames:
        source.send(frame)
        loop.run_for(1.0)
    elapsed = time.perf_counter() - t0
    fanned = server.queries.stats()["samples_fanned"]
    assert fanned == total * subscribers
    return {
        "subscribers": subscribers,
        "samples": total,
        "fanned_samples": fanned,
        "seconds": elapsed,
        "rate_per_sec": total / elapsed,
    }


def fanout_ratio(attempts: int = 3) -> Tuple[list, float]:
    """Paired 1-vs-1000-subscriber runs; returns (runs, best ratio).

    Scheduling noise on a shared machine only ever *inflates* one side
    of a wall-clock pair, so the minimum ratio across paired attempts
    is the faithful estimate of the marginal-subscriber cost — the
    same reasoning as best-of-N for a single rate.
    """
    runs = []
    best = float("inf")
    for _ in range(attempts):
        single = bench_fanout(1)
        many = bench_fanout(1000)
        runs.append((single, many))
        best = min(best, many["seconds"] / single["seconds"])
    return runs, best


def run_suite(total: int) -> dict:
    from repro.core import native

    arith = bench_batch(total)
    pipeline = bench_batch(total, PIPELINE_QUERY)
    incremental = bench_incremental(total)
    fused_map = bench_batch(total, FUSED_MAP_QUERY, signals=("a",))
    fused_state = bench_batch(total, FUSED_STATE_QUERY, signals=("a",))
    fanout = {str(n): bench_fanout(n) for n in (1, 10, 100, 1000)}
    _, fanout["ratio_1k_vs_1"] = fanout_ratio(attempts=2)
    return {
        "benchmark": "query",
        "backend": native.mode(),
        "acceptance": {
            "min_arith_rate_per_sec": ACCEPTANCE_ARITH_RATE,
            "max_fanout_1k_ratio": ACCEPTANCE_FANOUT_RATIO,
        },
        "arith": arith,
        "pipeline": pipeline,
        "incremental": incremental,
        "fused_map": fused_map,
        "fused_state": fused_state,
        "fanout": fanout,
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_batch_arith_throughput():
    result = bench_batch(TOTAL_SAMPLES)
    report(
        f"X12a: batch 2-op arithmetic query ({result['samples']} samples)",
        [
            ("query", ARITH_QUERY),
            ("rate", f"{result['rate_per_sec']:,.0f} samples/s "
                     f"(acceptance >= {ACCEPTANCE_ARITH_RATE:,.0f})"),
            ("derived", f"{result['derived_samples']}"),
        ],
    )
    assert result["rate_per_sec"] >= ACCEPTANCE_ARITH_RATE


def test_batch_pipeline_throughput():
    result = bench_batch(TOTAL_SAMPLES, PIPELINE_QUERY)
    report(
        f"X12b: batch mixed pipeline ({result['samples']} samples, "
        f"{result['outputs']} outputs)",
        [("rate", f"{result['rate_per_sec']:,.0f} samples/s"),
         ("derived", f"{result['derived_samples']}")],
    )
    assert result["rate_per_sec"] > 0


def test_incremental_throughput():
    result = bench_incremental(QUICK_SAMPLES)
    report(
        f"X12c: incremental tap feed ({result['samples']} samples, "
        f"batches of {BATCH})",
        [("rate", f"{result['rate_per_sec']:,.0f} samples/s"),
         ("derived", f"{result['derived_samples']}")],
    )
    assert result["rate_per_sec"] > 0


def test_fused_elementwise_throughput():
    from repro.core import native

    result = bench_batch(TOTAL_SAMPLES, FUSED_MAP_QUERY, signals=("a",))
    report(
        f"X12d: fused elementwise chain ({result['samples']} samples, "
        f"backend {native.mode()})",
        [("query", FUSED_MAP_QUERY),
         ("rate", f"{result['rate_per_sec']:,.0f} samples/s"),
         ("derived", f"{result['derived_samples']}")],
    )
    assert result["rate_per_sec"] > 0


def test_fused_stateful_throughput():
    from repro.core import native

    result = bench_batch(TOTAL_SAMPLES, FUSED_STATE_QUERY, signals=("a",))
    report(
        f"X12d: fused stateful chain ({result['samples']} samples, "
        f"backend {native.mode()})",
        [("query", FUSED_STATE_QUERY),
         ("rate", f"{result['rate_per_sec']:,.0f} samples/s"),
         ("derived", f"{result['derived_samples']}")],
    )
    assert result["rate_per_sec"] > 0


def test_fanout_subscriber_scaling():
    results = {n: bench_fanout(n) for n in (10, 100)}
    runs, ratio = fanout_ratio()
    base = min(single["seconds"] for single, _ in runs)
    results[1] = min((s for s, _ in runs), key=lambda r: r["seconds"])
    results[1000] = min((m for _, m in runs), key=lambda r: r["seconds"])
    report(
        f"X12e: subscriber fan-out, one shared view "
        f"({FANOUT_SAMPLES} samples, {FANOUT_BATCH}/frame)",
        [("query", FANOUT_QUERY)]
        + [
            (f"{n} subs", f"{r['seconds']*1e3:8.1f} ms  "
                          f"({r['seconds']/base:4.2f}x, "
                          f"{r['fanned_samples']:>13,} fanned)")
            for n, r in sorted(results.items())
        ]
        + [("1k ratio", f"{ratio:.2f}x paired best-of-{len(runs)} "
                        f"(acceptance < {ACCEPTANCE_FANOUT_RATIO:.1f}x)")],
    )
    assert ratio < ACCEPTANCE_FANOUT_RATIO


# ----------------------------------------------------------------------
# stand-alone JSON mode
# ----------------------------------------------------------------------
def main(argv) -> int:
    quick = "--quick" in argv
    out_path: Optional[str] = None
    if "--json" in argv:
        out_path = argv[argv.index("--json") + 1]
    total = QUICK_SAMPLES if quick else TOTAL_SAMPLES
    result = run_suite(total)
    result["mode"] = "quick" if quick else "full"
    text = json.dumps(result, indent=2)
    if out_path:
        with open(out_path, "w") as fh:
            fh.write(text + "\n")
    print(text)
    return 0 if result["arith"]["rate_per_sec"] >= ACCEPTANCE_ARITH_RATE else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
