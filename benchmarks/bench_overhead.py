"""E1 — Section 4.6: scope CPU overhead vs polling period.

The paper: "The gscope CPU overhead on a 600 MHz Pentium III processor
is less than two percent while polling at 10 ms granularity ... and less
than one percent at 50 ms granularity."  Method: a low-priority tight
loop counts iterations; overhead = 1 - loaded/idle.

We reproduce the method exactly (the load loop is an idle source on the
same single-threaded main loop).  Absolute percentages differ from a
2002 Pentium III, but the shape must hold: overhead at 10 ms exceeds
overhead at 50 ms, and both are small single-digit percentages.
"""

from conftest import report

from repro.core.scope import Scope
from repro.core.signal import Cell, memory_signal
from repro.workload.loadgen import measure_overhead

# More signals than the paper's "several" are polled so the signal
# rises above this host's measurement noise floor (a 2026 machine is
# ~50x faster than a 600 MHz Pentium III; the per-poll cost that read
# as 2 % there reads as well under 0.5 % here).
SIGNALS = 64
DURATION_MS = 500.0


def scope_setup(period_ms: float):
    def attach(loop):
        scope = Scope("overhead", loop, period_ms=period_ms)
        for i in range(SIGNALS):
            scope.signal_new(memory_signal(f"sig{i}", Cell(i)))
        scope.start_polling()

    return attach


def run_experiment():
    at_10ms = measure_overhead(
        scope_setup(10.0), duration_ms=DURATION_MS, repeats=5
    )
    at_50ms = measure_overhead(
        scope_setup(50.0), duration_ms=DURATION_MS, repeats=5
    )
    return at_10ms, at_50ms


def test_overhead_vs_polling_period(benchmark):
    at_10ms, at_50ms = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    # Shape: faster polling costs more CPU (allowing for timer noise).
    assert at_10ms.overhead_fraction > at_50ms.overhead_fraction - 0.005
    # Both stay far below gross: polling a handful of signals is cheap.
    assert at_10ms.overhead_percent < 25.0
    assert at_50ms.overhead_percent < 10.0

    report(
        "E1: scope CPU overhead (Section 4.6)",
        [
            ("paper @10ms", "< 2 % (600 MHz Pentium III)"),
            ("measured @10ms", f"{at_10ms.overhead_percent:.2f} %"),
            ("paper @50ms", "< 1 %"),
            ("measured @50ms", f"{at_50ms.overhead_percent:.2f} %"),
            ("shape check", "overhead(10ms) > overhead(50ms)"),
            ("idle iterations", at_10ms.idle_iterations),
            ("signals polled", SIGNALS),
        ],
    )
