"""X13 — failover costs: restart replay catch-up and ring rebalance.

Two numbers the fault-tolerance design pays for its guarantees:

* **X13a — recovery time.**  A supervised shard restart re-drives the
  shard's entire WAL through a fresh manager, so recovery cost is
  replay throughput: wall-clock per restart as a function of WAL size,
  and the samples/second the catch-up path sustains.  (Detection is
  bounded separately and in *virtual* time — ``(miss_threshold + 1)``
  monitor intervals — so the wall-clock cost of failover is all replay.)
* **X13b — rebalance cost.**  Consistent hashing buys minimal data
  movement at membership changes: adding one shard to N remaps ~1/N of
  the namespace where ``hash mod N`` remaps ~(N-1)/N.  We measure the
  actual moved fraction and the wall cost of rebuilding the ring and
  re-routing a large namespace.
"""

from __future__ import annotations

import tempfile
import time
from typing import Dict

import numpy as np

from conftest import report

from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.net import ShardSupervisor
from repro.net.shard import HashRing

HEARTBEAT_MS = 50.0
PUSH_BATCH = 256


def _factory(manager, shard_id):
    # Huge delay: ingest-only, so the numbers measure replay, not drops.
    scope = manager.scope_new(f"scope-{shard_id}", period_ms=50, delay_ms=1e15)
    scope.signal_new(buffer_signal("metric"))


def bench_recovery(total_samples: int, shards: int = 1) -> Dict[str, float]:
    """X13a: crash one shard after ``total_samples`` and time the restart."""
    with tempfile.TemporaryDirectory() as wal_root:
        loop = MainLoop()
        sup = ShardSupervisor(
            loop,
            wal_root,
            shards=shards,
            scope_factory=_factory,
            heartbeat_ms=HEARTBEAT_MS,
            auto_start=False,
        )
        rng = np.random.default_rng(7)
        pushed = 0
        while pushed < total_samples:
            now = loop.clock.now() + 10.0
            loop.clock.wait_until(now)
            times = np.sort(rng.uniform(now - 10.0, now, PUSH_BATCH))
            sup.push_samples("metric", times, rng.standard_normal(PUSH_BATCH))
            pushed += PUSH_BATCH
        home = sup.shard_of("metric")
        sup.crash_shard(home)
        t0 = time.perf_counter()
        host = sup.restart_shard(home)
        elapsed = time.perf_counter() - t0
        replayed = host.stats.replayed_samples
        sup.close()
        assert replayed == pushed, (replayed, pushed)
        return {
            "samples": float(replayed),
            "restart_seconds": elapsed,
            "rate_per_sec": replayed / elapsed if elapsed > 0 else float("inf"),
        }


def bench_rebalance(n_shards: int, keys: int = 20_000) -> Dict[str, float]:
    """X13b: moved fraction + wall cost of adding shard N to a ring of N."""
    names = [f"sig-{i:06d}" for i in range(keys)]
    ring = HashRing(range(n_shards))
    before = [ring.locate(name) for name in names]
    t0 = time.perf_counter()
    ring.add(n_shards)
    rebuild_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    after = [ring.locate(name) for name in names]
    locate_seconds = time.perf_counter() - t0
    moved = sum(1 for a, b in zip(before, after) if a != b)
    naive_moved = sum(
        1 for i, name in enumerate(names) if i % n_shards != i % (n_shards + 1)
    )
    return {
        "keys": float(keys),
        "moved_fraction": moved / keys,
        "mod_n_moved_fraction": naive_moved / keys,
        "rebuild_seconds": rebuild_seconds,
        "locates_per_sec": keys / locate_seconds if locate_seconds > 0 else float("inf"),
    }


def test_recovery_scales_with_wal_size(benchmark):
    results = benchmark.pedantic(
        lambda: {n: bench_recovery(n) for n in (10_000, 50_000, 200_000)},
        rounds=1,
        iterations=1,
    )
    rows = []
    for n, r in sorted(results.items()):
        rows.append(
            (
                f"{n:>7d} samples",
                f"restart {r['restart_seconds'] * 1e3:8.1f} ms  "
                f"({r['rate_per_sec'] / 1e6:5.2f} M samples/s replay)",
            )
        )
    report("X13a recovery time vs WAL size", rows)
    # Replay must be a bulk path, not per-sample interpretation.
    assert results[200_000]["rate_per_sec"] > 100_000


def test_rebalance_moves_about_1_over_n(benchmark):
    results = benchmark.pedantic(
        lambda: {n: bench_rebalance(n) for n in (4, 8, 16)},
        rounds=1,
        iterations=1,
    )
    rows = []
    for n, r in sorted(results.items()):
        rows.append(
            (
                f"N={n:<2d} -> {n + 1}",
                f"ring moves {r['moved_fraction']:6.1%}  vs  mod-N "
                f"{r['mod_n_moved_fraction']:6.1%}  "
                f"(rebuild {r['rebuild_seconds'] * 1e3:.1f} ms, "
                f"{r['locates_per_sec'] / 1e3:.0f}k locates/s)",
            )
        )
    report("X13b rebalance cost: consistent hash vs mod-N", rows)
    for n, r in results.items():
        assert r["moved_fraction"] <= 1.5 / n
        assert r["mod_n_moved_fraction"] > 0.5  # what mod-N would shuffle
