"""F5 — Figure 5: ECN behaviour under the identical workload.

Same topology and elephant schedule as Figure 4, but the bottleneck runs
RED with ECN marking and the flows negotiate ECN.  The paper's claim:
"The graphs show that while ECN does not hit this value [CWND = 1], TCP
hits it several times" — i.e. ECN avoids timeouts entirely because
congestion is signalled by marks, not drops.

This is also the DropTail-vs-RED+ECN ablation called out in DESIGN.md:
only the queue policy and ECN negotiation differ between F4 and F5.
"""

from conftest import report

from bench_fig4_tcp import run_figure, shape_stats


def test_fig5_ecn_behaviour(benchmark):
    scope, network, watched = benchmark.pedantic(
        lambda: run_figure("red", ecn=True), rounds=1, iterations=1
    )
    stats = shape_stats(scope)

    # Paper shape 1: the ECN trace never reaches CWND == 1.
    assert stats["min"] > 1.0
    assert stats["dips_to_one"] == 0
    assert watched.stats.timeouts == 0
    assert network.total_timeouts() == 0
    # Congestion is handled by mark-driven halvings instead.
    assert watched.stats.ecn_reductions > 0
    # Paper shape 2 holds here too: more flows, smaller per-flow window.
    assert stats["mean_16_flows"] < stats["mean_8_flows"]

    report(
        "F5: ECN behaviour (Figure 5) — elephants 8 -> 16 at t=15s",
        [
            ("paper claim", "ECN never hits CWND=1 (no timeouts)"),
            ("measured min CWND", stats["min"]),
            ("dips to CWND=1", stats["dips_to_one"]),
            ("watched-flow timeouts", watched.stats.timeouts),
            ("all-flow timeouts", network.total_timeouts()),
            ("ECN window reductions", watched.stats.ecn_reductions),
            ("router CE marks", network.queue.stats.marked),
            ("mean CWND @8 flows", f"{stats['mean_8_flows']:.1f}"),
            ("mean CWND @16 flows", f"{stats['mean_16_flows']:.1f}"),
        ],
    )
