"""Scheduler performance regression gate (opt-in).

Runs the quick-mode dispatch benchmark at 1k timer sources and fails if
throughput falls below a committed floor.  The floor is deliberately
~10x under the rate a healthy build posts on a developer container, so
only a genuine algorithmic regression (say, the O(log n) dispatch path
quietly decaying back to a scan) trips it — CI jitter does not.

Opt-in, so tier-1 stays fast:

* as a pytest marker::

    REPRO_BENCH=1 PYTHONPATH=src python -m pytest benchmarks/check_regression.py -q

  (without ``REPRO_BENCH=1`` the test is skipped; it also carries the
  ``benchmark`` marker so ``-m "not benchmark"`` deselects it wholesale)

* as a script, for CI pipelines that want the JSON::

    PYTHONPATH=src python benchmarks/check_regression.py
"""

from __future__ import annotations

import json
import os
import sys
import time

import pytest

from bench_eventloop import ACCEPTANCE_SOURCES, bench_dispatch
from repro.eventloop.loop import MainLoop

# Committed floor: dispatches/second at 1k attached timer sources.  A
# healthy indexed loop posts ~300-550k/s; the seed scan loop posted ~5k/s.
DISPATCH_FLOOR_1K = 50_000.0
QUICK_TARGET_DISPATCHES = 1_000
ATTEMPTS = 3  # best-of-N damps scheduler noise on shared machines

pytestmark = [
    pytest.mark.benchmark,
    pytest.mark.skipif(
        not os.environ.get("REPRO_BENCH"),
        reason="perf regression gate is opt-in: set REPRO_BENCH=1",
    ),
]


def measure_best() -> dict:
    best: dict = {"rate_per_sec": 0.0}
    for _ in range(ATTEMPTS):
        result = bench_dispatch(MainLoop, ACCEPTANCE_SOURCES, QUICK_TARGET_DISPATCHES)
        if result["rate_per_sec"] > best["rate_per_sec"]:
            best = result
    return best


def test_dispatch_throughput_floor():
    best = measure_best()
    assert best["rate_per_sec"] >= DISPATCH_FLOOR_1K, (
        f"dispatch throughput at {ACCEPTANCE_SOURCES} sources regressed: "
        f"{best['rate_per_sec']:.0f}/s < floor {DISPATCH_FLOOR_1K:.0f}/s"
    )


def main() -> int:
    t0 = time.perf_counter()
    best = measure_best()
    passed = best["rate_per_sec"] >= DISPATCH_FLOOR_1K
    print(
        json.dumps(
            {
                "gate": "eventloop-dispatch-1k",
                "floor_per_sec": DISPATCH_FLOOR_1K,
                "measured_per_sec": best["rate_per_sec"],
                "dispatches": best["dispatches"],
                "attempts": ATTEMPTS,
                "wall_seconds": time.perf_counter() - t0,
                "passed": passed,
            },
            indent=2,
        )
    )
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
